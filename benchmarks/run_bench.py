#!/usr/bin/env python
"""Standalone engine benchmark runner (no pytest dependency).

Times a handful of representative simulation scenarios and writes a
machine-readable ``BENCH_engine.json`` at the repo root so successive
PRs can track the performance trajectory of the synchronous engine.

Scenarios are pure data: each entry below is a serialized
:class:`repro.api.Scenario` dict (protocol, engine, adversary spec,
delay model, limits), so adding a benchmark case means adding a dict -
the same dict ``python -m repro run --scenario`` accepts.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny sizes
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/bench.json

Exits nonzero if any scenario crashes or produces an incomplete run, so
a smoke invocation can be wired into CI / the test suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Scenario  # noqa: E402
from repro.sim.columnar import HAVE_NUMPY  # noqa: E402

SMOKE_SCENARIOS = [
    {
        "name": "A_small",
        "protocol": "A",
        "n": 64,
        "t": 8,
        "adversary": "random:4,max_action_index=10",
        "seed": 1,
    },
    {
        "name": "C_exponential_rounds_small",
        "protocol": "C",
        "n": 16,
        "t": 4,
        "adversary": "kill-active:3,actions_before_kill=2",
        "seed": 1,
    },
    {
        "name": "D_small",
        "protocol": "D",
        "n": 64,
        "t": 8,
        "adversary": "random:3,max_action_index=10",
        "seed": 1,
    },
    {
        "name": "D_large_t_small",
        "protocol": "D",
        "n": 128,
        "t": 16,
        "adversary": "random:4,max_action_index=10",
        "seed": 1,
    },
    {
        "name": "A_async_small",
        "protocol": "A-async",
        "engine": "async",
        "n": 64,
        "t": 8,
        "delay": "uniform:0.5,4.0",
        "crash_times": {pid: 4.0 + 7.0 * pid for pid in range(2)},
        "seed": 1,
    },
    {
        "name": "D_dynamic_small",
        "protocol": "D-dynamic",
        "n": 64,
        "t": 8,
        "seed": 1,
        "options": {"schedule": "arrivals:0x32,12x32", "cycle_length": 12},
    },
    {
        # Smoke-sized stand-in for D_n4096_t1024: large-t agreement
        # broadcasts exercising the packed Broadcast commit path.
        "name": "D_broadcast_smoke",
        "protocol": "D",
        "n": 256,
        "t": 64,
        "adversary": "random:4,max_action_index=15",
        "seed": 1,
    },
    {
        # Crash-recover path: checkpoint restores, rejoin heap, stale
        # phase replay - tracks what recovery support costs the engine.
        "name": "D_recovery_smoke",
        "protocol": "D-recovery",
        "n": 64,
        "t": 8,
        "adversary": "crash-recover:3,repair_delay=5,max_action_index=15",
        "seed": 1,
    },
    {
        # Columnar (numpy) delivery fast path at smoke size: same shape
        # as D_broadcast_smoke but with fastpath pinned on, so CI proves
        # the columnar store runs (fastpath="on" raises without numpy).
        "name": "D_columnar_smoke",
        "protocol": "D",
        "n": 256,
        "t": 64,
        "adversary": "random:4,max_action_index=15",
        "seed": 1,
        "fastpath": "on",
    },
]

FULL_SCENARIOS = [
    {
        "name": "A_n4096_t64",
        "protocol": "A",
        "n": 4096,
        "t": 64,
        "adversary": "random:32,max_action_index=25",
        "seed": 1,
    },
    {
        "name": "C_exponential_rounds",
        "protocol": "C",
        "n": 64,
        "t": 16,
        "adversary": "kill-active:15,actions_before_kill=2",
        "seed": 1,
    },
    {
        "name": "D_n4096_t64",
        "protocol": "D",
        "n": 4096,
        "t": 64,
        "adversary": "random:20,max_action_index=30",
        "seed": 1,
    },
    {
        "name": "A_n4096_t4096",
        "protocol": "A",
        "n": 4096,
        "t": 4096,
        "adversary": "random:1024,max_action_index=25",
        "seed": 1,
    },
    {
        # The bitset tentpole scenario: t^2 agreement messages per
        # round, each folding an n-unit outstanding set.
        "name": "D_n8192_t256",
        "protocol": "D",
        "n": 8192,
        "t": 256,
        "adversary": "random:64,max_action_index=40",
        "seed": 1,
    },
    {
        "name": "A_async_n4096_t64",
        "protocol": "A-async",
        "engine": "async",
        "n": 4096,
        "t": 64,
        "delay": "uniform:0.5,4.0",
        "crash_times": {pid: 4.0 + 7.0 * pid for pid in range(16)},
        "seed": 1,
    },
    {
        # Dynamic arrivals (schedule spec): periodic agreement over a
        # workload that trickles in as three bursts.
        "name": "D_dynamic_n2048_t64",
        "protocol": "D-dynamic",
        "n": 2048,
        "t": 64,
        "seed": 1,
        "options": {"schedule": "arrivals:0x1024,40x512,80x512", "cycle_length": 20},
    },
    {
        # Crash-recover at scale: repeated checkpoint restores and stale
        # phase replays on top of the D agreement machinery.
        "name": "D_recovery_n2048_t64",
        "protocol": "D-recovery",
        "n": 2048,
        "t": 64,
        "adversary": "crash-recover:16,repair_delay=8,max_action_index=30",
        "seed": 1,
    },
    {
        # The lazy-broadcast tentpole scenario: Theta(t) = 1024-recipient
        # agreement broadcasts every phase round (~8M message copies),
        # committed as shared-payload Broadcast objects end to end.
        # Default fastpath ("auto") - the columnar path when numpy is
        # importable; the pinned variants below track both paths.
        "name": "D_n4096_t1024",
        "protocol": "D",
        "n": 4096,
        "t": 1024,
        "adversary": "random:8,max_action_index=30",
        "seed": 1,
    },
    {
        # Columnar-path tentpole, pinned on: vectorized commit/drain and
        # word-parallel agreement folds.  Identical metrics to the "off"
        # row is part of the contract (the fuzz harness pins it).
        "name": "D_n4096_t1024_fastpath_on",
        "protocol": "D",
        "n": 4096,
        "t": 1024,
        "adversary": "random:8,max_action_index=30",
        "seed": 1,
        "fastpath": "on",
    },
    {
        # Pure-python baseline, pinned off: the denominator for the
        # columnar speedup headline in docs/perf.md.
        "name": "D_n4096_t1024_fastpath_off",
        "protocol": "D",
        "n": 4096,
        "t": 1024,
        "adversary": "random:8,max_action_index=30",
        "seed": 1,
        "fastpath": "off",
    },
]


def _scenarios(smoke: bool):
    """(name, Scenario) pairs built from the data tables above."""
    return [
        (spec["name"], Scenario.from_dict(spec))
        for spec in (SMOKE_SCENARIOS if smoke else FULL_SCENARIOS)
    ]


def run(smoke: bool, repeat: int, out_path: Path) -> int:
    results = []
    failures = 0
    for name, scenario in _scenarios(smoke):
        if scenario.fastpath == "on" and not HAVE_NUMPY:
            # Pinned-columnar rows need the optional numpy extra; their
            # absence is an environment fact, not a perf regression.
            print(f"{name}: SKIPPED (fastpath='on' requires numpy)")
            results.append({"name": name, "skipped": "numpy not installed"})
            continue
        timings = []
        result = None
        try:
            for _ in range(repeat):
                start = time.perf_counter()
                result = scenario.run()
                timings.append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - crash reporting path
            print(f"{name}: FAILED ({type(exc).__name__}: {exc})")
            failures += 1
            results.append({"name": name, "error": f"{type(exc).__name__}: {exc}"})
            continue
        if not result.completed:
            print(f"{name}: run did not complete all work units")
            failures += 1
        best = min(timings)
        row = {
            "name": name,
            "seconds_best": round(best, 6),
            "seconds_all": [round(s, 6) for s in timings],
            "work": result.metrics.work_total,
            "messages": result.metrics.messages_total,
            "virtual_rounds": float(result.metrics.retire_round),
            "completed": result.completed,
            "scenario": scenario.to_dict(),
        }
        results.append(row)
        print(
            f"{name}: {best:.3f}s  work={row['work']} messages={row['messages']} "
            f"virtual_rounds={row['virtual_rounds']:.3g}"
        )
    payload = {
        "suite": "engine",
        "smoke": smoke,
        "repeat": repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny scenario sizes (for CI smoke runs)"
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timing repetitions per scenario"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args(argv)
    return run(args.smoke, max(1, args.repeat), args.out)


if __name__ == "__main__":
    raise SystemExit(main())
