#!/usr/bin/env python
"""Standalone engine benchmark runner (no pytest dependency).

Times a handful of representative simulation scenarios and writes a
machine-readable ``BENCH_engine.json`` at the repo root so successive
PRs can track the performance trajectory of the synchronous engine.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny sizes
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/bench.json

Exits nonzero if any scenario crashes or produces an incomplete run, so
a smoke invocation can be wired into CI / the test suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.protocol_a_async import build_async_protocol_a  # noqa: E402
from repro.core.registry import run_protocol  # noqa: E402
from repro.sim.adversary import KillActive, RandomCrashes  # noqa: E402
from repro.sim.async_engine import AsyncEngine, uniform_delays  # noqa: E402
from repro.work.tracker import WorkTracker  # noqa: E402


def _run_async_a(n: int, t: int, crashes: int, seed: int):
    """Async Protocol A under the batched-delivery event loop."""
    processes = build_async_protocol_a(n, t)
    crash_times = {pid: 4.0 + 7.0 * pid for pid in range(crashes)}
    engine = AsyncEngine(
        processes,
        tracker=WorkTracker(n),
        seed=seed,
        crash_times=crash_times,
        delay_model=uniform_delays(),
    )
    return engine.run()


def _scenarios(smoke: bool):
    """(name, callable) pairs; callables return a RunResult.

    The full set mirrors ``bench_engine_scaling.py`` plus a large-``t``
    scenario (t = 4096) that exercises the event-indexed scheduler where
    the seed engine's per-round O(t) rescans used to dominate, a
    large-``t`` Protocol D scenario where the bitset agreement fold
    replaces the former O(t^2 n) per-phase-round set churn, and an async
    Protocol A scenario on the batched-delivery event loop.
    """
    if smoke:
        return [
            (
                "A_small",
                lambda: run_protocol(
                    "A", 64, 8, adversary=RandomCrashes(4, max_action_index=10), seed=1
                ),
            ),
            (
                "C_exponential_rounds_small",
                lambda: run_protocol(
                    "C", 16, 4, adversary=KillActive(3, actions_before_kill=2), seed=1
                ),
            ),
            (
                "D_small",
                lambda: run_protocol(
                    "D", 64, 8, adversary=RandomCrashes(3, max_action_index=10), seed=1
                ),
            ),
            (
                "D_large_t_small",
                lambda: run_protocol(
                    "D", 128, 16, adversary=RandomCrashes(4, max_action_index=10), seed=1
                ),
            ),
            (
                "A_async_small",
                lambda: _run_async_a(64, 8, crashes=2, seed=1),
            ),
        ]
    return [
        (
            "A_n4096_t64",
            lambda: run_protocol(
                "A", 4096, 64, adversary=RandomCrashes(32, max_action_index=25), seed=1
            ),
        ),
        (
            "C_exponential_rounds",
            lambda: run_protocol(
                "C", 64, 16, adversary=KillActive(15, actions_before_kill=2), seed=1
            ),
        ),
        (
            "D_n4096_t64",
            lambda: run_protocol(
                "D", 4096, 64, adversary=RandomCrashes(20, max_action_index=30), seed=1
            ),
        ),
        (
            "A_n4096_t4096",
            lambda: run_protocol(
                "A",
                4096,
                4096,
                adversary=RandomCrashes(1024, max_action_index=25),
                seed=1,
            ),
        ),
        (
            # The bitset tentpole scenario: t^2 agreement messages per
            # round, each folding an n-unit outstanding set.
            "D_n8192_t256",
            lambda: run_protocol(
                "D", 8192, 256, adversary=RandomCrashes(64, max_action_index=40), seed=1
            ),
        ),
        (
            "A_async_n4096_t64",
            lambda: _run_async_a(4096, 64, crashes=16, seed=1),
        ),
    ]


def run(smoke: bool, repeat: int, out_path: Path) -> int:
    results = []
    failures = 0
    for name, scenario in _scenarios(smoke):
        timings = []
        result = None
        try:
            for _ in range(repeat):
                start = time.perf_counter()
                result = scenario()
                timings.append(time.perf_counter() - start)
        except Exception as exc:  # pragma: no cover - crash reporting path
            print(f"{name}: FAILED ({type(exc).__name__}: {exc})")
            failures += 1
            results.append({"name": name, "error": f"{type(exc).__name__}: {exc}"})
            continue
        if not result.completed:
            print(f"{name}: run did not complete all work units")
            failures += 1
        best = min(timings)
        row = {
            "name": name,
            "seconds_best": round(best, 6),
            "seconds_all": [round(s, 6) for s in timings],
            "work": result.metrics.work_total,
            "messages": result.metrics.messages_total,
            "virtual_rounds": float(result.metrics.retire_round),
            "completed": result.completed,
        }
        results.append(row)
        print(
            f"{name}: {best:.3f}s  work={row['work']} messages={row['messages']} "
            f"virtual_rounds={row['virtual_rounds']:.3g}"
        )
    payload = {
        "suite": "engine",
        "smoke": smoke,
        "repeat": repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny scenario sizes (for CI smoke runs)"
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timing repetitions per scenario"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args(argv)
    return run(args.smoke, max(1, args.repeat), args.out)


if __name__ == "__main__":
    raise SystemExit(main())
