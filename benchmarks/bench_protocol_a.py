"""E1 - Theorem 2.3: Protocol A does <= 3n work and <= 9 t sqrt(t)
messages in every execution, retiring by round nt + 3t^2."""

from repro.analysis import bounds
from repro.analysis.experiments import experiment_e1
from repro.core.registry import run_protocol
from repro.sim.adversary import KillActive


def test_protocol_a_run_failure_free(benchmark):
    result = benchmark(lambda: run_protocol("A", 512, 64, seed=1))
    assert result.completed
    benchmark.extra_info["work"] = result.metrics.work_total
    benchmark.extra_info["messages"] = result.metrics.messages_total


def test_protocol_a_run_under_takeover_storm(benchmark):
    def run():
        return run_protocol(
            "A", 512, 64, adversary=KillActive(63, actions_before_kill=2), seed=1
        )

    result = benchmark(run)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_a_work(512, 64).value
    benchmark.extra_info["work"] = result.metrics.work_total
    benchmark.extra_info["messages"] = result.metrics.messages_total


def test_reproduce_e1_theorem_2_3(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e1(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]
    for row in result.rows:
        assert row["work"] <= row["work bound"]
        assert row["messages"] <= row["msg bound"]
