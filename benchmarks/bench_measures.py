"""E16 - Section 1.1: the paper's effort measure vs the
Kanellakis-Shvartsman available-processor-steps measure."""

from repro.analysis.experiments import experiment_e16
from repro.core.registry import run_protocol
from repro.sim.adversary import RandomCrashes


def test_sequential_protocol_aps_run(benchmark):
    result = benchmark(
        lambda: run_protocol(
            "A", 256, 16, adversary=RandomCrashes(8, max_action_index=20), seed=2
        )
    )
    assert result.completed
    metrics = result.metrics
    assert metrics.available_processor_steps > metrics.effort
    benchmark.extra_info["aps"] = metrics.available_processor_steps
    benchmark.extra_info["effort"] = metrics.effort


def test_reproduce_e16_measures(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e16(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
    by_name = {row["protocol"]: row for row in result.rows}
    assert by_name["D"]["APS"] < by_name["A"]["APS"]
    assert by_name["C"]["APS"] > 10 ** 6  # exponential deadlines dominate
