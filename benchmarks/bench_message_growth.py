"""E17 - the complexity separation as a measured figure: message counts
fitted to t^p show C's t log t < A/B's t sqrt(t) < D's failure-driven
t^2 growth."""

from repro.analysis.experiments import experiment_e17


def test_reproduce_e17_message_growth(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e17(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
    exponents = {
        row["protocol"]: row["fit p (msgs ~ t^p)"] for row in result.rows
    }
    assert exponents["C"] < exponents["A"] < exponents["D"]
    assert exponents["C"] < exponents["B"] < exponents["D"]
