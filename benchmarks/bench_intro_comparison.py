"""E8 - the implicit Section 1 comparison table: straw-man baselines burn
Theta(tn) effort; the paper's protocols do not."""

from repro.analysis.experiments import experiment_e8
from repro.core.registry import run_protocol


def test_replicate_baseline_run(benchmark):
    result = benchmark(lambda: run_protocol("replicate", 500, 25, seed=1))
    assert result.metrics.work_total == 500 * 25
    benchmark.extra_info["work"] = result.metrics.work_total


def test_naive_checkpointer_run(benchmark):
    result = benchmark(lambda: run_protocol("naive", 500, 25, interval=1, seed=1))
    assert result.metrics.messages_total == 500 * 24
    benchmark.extra_info["messages"] = result.metrics.messages_total


def test_reproduce_e8_intro_comparison(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e8(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
    efforts = {row["protocol"]: row["effort"] for row in result.rows}
    # The paper's effort ordering: protocols strictly dominate straw-men.
    assert efforts["A"] < efforts["replicate"]
    assert efforts["B"] < efforts["replicate"]
    assert efforts["C"] < efforts["naive"]
