"""E10 - Section 5: Byzantine agreement via work protocols.  Via B:
O(n + t sqrt t) messages in O(n) rounds (Bracha's bound, constructive);
via C: O(n + t log t) messages.  Agreement and validity always hold."""

from repro.agreement.byzantine import ByzantineAgreement
from repro.analysis.experiments import experiment_e10
from repro.sim.adversary import RandomCrashes


def test_byzantine_via_b_run(benchmark):
    def run():
        ba = ByzantineAgreement(64, 7, protocol="B")
        return ba.run(
            11,
            adversary=RandomCrashes(7, max_action_index=12, victims=list(range(8))),
            seed=1,
        )

    outcome = benchmark(run)
    assert outcome.agreement and outcome.valid_for(11)
    benchmark.extra_info["messages"] = outcome.metrics.messages_total


def test_byzantine_via_c_run(benchmark):
    def run():
        ba = ByzantineAgreement(64, 7, protocol="C")
        return ba.run(
            11,
            adversary=RandomCrashes(7, max_action_index=12, victims=list(range(8))),
            seed=1,
        )

    outcome = benchmark(run)
    assert outcome.agreement and outcome.valid_for(11)
    benchmark.extra_info["messages"] = outcome.metrics.messages_total


def test_reproduce_e10_byzantine(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e10(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]
    for row in result.rows:
        assert row["agreement"] and row["validity"]
