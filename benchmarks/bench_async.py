"""E11 - the Section 2.1 remark: Protocol A runs asynchronously given a
sound and complete failure detector, keeping its effort profile."""

from repro.analysis.experiments import experiment_e11
from repro.core.protocol_a_async import build_async_protocol_a
from repro.sim.async_engine import AsyncEngine, uniform_delays
from repro.work.tracker import WorkTracker


def test_async_protocol_a_run(benchmark):
    n, t = 512, 64
    crash_times = {pid: 3.0 + 8.0 * pid for pid in range(1, 24)}

    def run():
        processes = build_async_protocol_a(n, t)
        tracker = WorkTracker(n)
        engine = AsyncEngine(
            processes,
            tracker=tracker,
            seed=1,
            crash_times=crash_times,
            delay_model=uniform_delays(0.5, 4.0),
        )
        return engine.run()

    result = benchmark(run)
    assert result.completed
    benchmark.extra_info["work"] = result.metrics.work_total
    benchmark.extra_info["messages"] = result.metrics.messages_total


def test_reproduce_e11_async(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e11(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
