"""Shared fixtures for the benchmark harness.

Each bench file pairs (a) pytest-benchmark timings of representative
protocol executions with (b) a full run of the corresponding experiment
from ``repro.analysis.experiments``, asserting the paper claim's shape
and writing the paper-vs-measured table under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_dict_rows

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir):
    """Persist an ExperimentResult as markdown + JSON for EXPERIMENTS.md."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        table = render_dict_rows(result.columns, result.rows, title=result.title)
        body = (
            f"# {result.exp_id}: {result.title}\n\n"
            f"Paper claim: {result.claim}\n\n{table}\n\n"
            f"Status: {'reproduced' if result.all_ok else 'NOT reproduced'}\n"
        )
        (results_dir / f"{result.exp_id}.md").write_text(body)
        payload = {
            "exp_id": result.exp_id,
            "title": result.title,
            "claim": result.claim,
            "all_ok": result.all_ok,
            "rows": [
                {key: _jsonable(value) for key, value in row.items()}
                for row in result.rows
            ],
        }
        (results_dir / f"{result.exp_id}.json").write_text(json.dumps(payload, indent=2))
        return result

    return _record


def _jsonable(value):
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)
