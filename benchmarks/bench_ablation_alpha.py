"""E12 - Section 4 remark: the reversion threshold alpha is arbitrary;
phased work stays <= n/(1-alpha) but reversion fires more eagerly as the
threshold rises."""

from repro.analysis.experiments import experiment_e12
from repro.core.registry import run_protocol
from repro.sim.adversary import StaggeredWorkKills


def test_protocol_d_heavy_losses_run(benchmark):
    n, t = 256, 16
    f = t // 2 + 1
    plan = [(pid, 1) for pid in range(f)]

    def run():
        return run_protocol(
            "D", n, t, adversary=StaggeredWorkKills.plan(plan), seed=4
        )

    result = benchmark(run)
    assert result.completed
    benchmark.extra_info["work"] = result.metrics.work_total


def test_reproduce_e12_alpha_ablation(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e12(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
    by_threshold = {row["threshold"]: row for row in result.rows}
    # Higher thresholds revert at least as eagerly as lower ones.
    reverted_flags = [by_threshold[th]["reverted"] for th in (0.25, 0.5, 0.75)]
    assert reverted_flags == sorted(reverted_flags)
