"""E9 - Section 2 motivation ablation: single-level checkpointing cannot
combine O(n + t) work with O(t sqrt t) messages; the two-level scheme
(Protocol A) achieves both and dominates the whole single-level frontier
on effort."""

from repro.analysis.experiments import experiment_e9
from repro.core.registry import run_protocol
from repro.sim.adversary import KillBeforeCheckpoint


def test_naive_worst_case_run(benchmark):
    """Sparse checkpoints + kill-before-checkpoint = maximal redone work."""
    n, t = 1296, 36

    def run():
        return run_protocol(
            "naive", n, t, interval=n // 2,
            adversary=KillBeforeCheckpoint(t - 1), seed=1,
        )

    result = benchmark(run)
    assert result.completed
    assert result.metrics.work_total > 3 * n  # the work bound is blown
    benchmark.extra_info["work"] = result.metrics.work_total


def test_reproduce_e9_checkpoint_ablation(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e9(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]

    small = [row for row in result.rows if row["scheme"].startswith("naive t=36")]
    a_row = next(row for row in result.rows if row["scheme"] == "A (2-level)")
    # Extremes fail their respective bounds.
    sparse = max(small, key=lambda row: row["interval"])
    dense = min(small, key=lambda row: row["interval"])
    assert not sparse["work<=3n'"], "sparsest checkpointing must blow the work bound"
    assert not dense["msgs<=9t^1.5"], "densest checkpointing must blow the message bound"
    # Protocol A meets both bounds and beats every single-level interval
    # on effort.
    assert a_row["work<=3n'"] and a_row["msgs<=9t^1.5"]
    assert a_row["effort"] < min(row["effort"] for row in small)
    # At t=361 the numeric window is closed: every interval fails a bound.
    large = [row for row in result.rows if row["scheme"] == "naive t=361"]
    assert large, "full run must include the large-t instance"
    for row in large:
        assert not (row["work<=3n'"] and row["msgs<=9t^1.5"]), row
