"""E3/E4 - Theorem 3.8 and Corollary 3.9: Protocol C's O(n + t log t)
messages (batched: O(t log t)) at exponential round counts, simulated
via deadline fast-forward."""

from repro.analysis import bounds
from repro.analysis.experiments import experiment_e3, experiment_e4
from repro.core.registry import run_protocol
from repro.sim.adversary import Cascade, KillActive


def test_protocol_c_run_failure_free(benchmark):
    result = benchmark(lambda: run_protocol("C", 64, 16, seed=1))
    assert result.completed
    benchmark.extra_info["messages"] = result.metrics.messages_total
    benchmark.extra_info["virtual_rounds"] = float(result.metrics.retire_round)


def test_protocol_c_run_cascade(benchmark):
    def run():
        return run_protocol(
            "C",
            64,
            16,
            adversary=Cascade(lead_units=15, redo_units=1, initial_dead=list(range(9, 16))),
            seed=1,
        )

    result = benchmark(run)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_c_work(64, 16).value
    benchmark.extra_info["work"] = result.metrics.work_total


def test_protocol_c_message_advantage_over_a(benchmark):
    """O(t log t) beats O(t sqrt t): work-poor, process-rich shape."""

    def run_both():
        def adversary():
            return KillActive(63, actions_before_kill=2)

        a = run_protocol("A", 64, 64, adversary=adversary(), seed=3)
        c = run_protocol("C", 64, 64, adversary=adversary(), seed=3)
        return a, c

    a, c = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert c.metrics.messages_total < a.metrics.messages_total
    benchmark.extra_info["a_messages"] = a.metrics.messages_total
    benchmark.extra_info["c_messages"] = c.metrics.messages_total


def test_reproduce_e3_theorem_3_8(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e3(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]


def test_reproduce_e4_corollary_3_9(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e4(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]
    for row in result.rows:
        assert row["batched msgs"] < row["plain msgs"]
