"""E5/E6/E7 - Theorem 4.1 and the Section 4 common cases: Protocol D's
graceful time degradation, reversion path, and exact failure-free
behaviour (n work, n/t + 2 rounds, <= 2 t^2 messages)."""

from repro.analysis.experiments import experiment_e5, experiment_e6, experiment_e7
from repro.core.registry import run_protocol
from repro.sim.adversary import StaggeredWorkKills


def test_protocol_d_run_failure_free(benchmark):
    n, t = 1024, 32
    result = benchmark(lambda: run_protocol("D", n, t, seed=1))
    assert result.completed
    assert result.metrics.work_total == n
    assert result.metrics.retire_round + 1 == n // t + 2
    assert result.metrics.messages_total <= 2 * t * t
    benchmark.extra_info["rounds"] = result.metrics.retire_round + 1


def test_protocol_d_run_with_failures(benchmark):
    n, t = 1024, 32
    adversary_plan = [(pid, 2) for pid in range(1, 9)]

    def run():
        return run_protocol(
            "D", n, t, adversary=StaggeredWorkKills.plan(adversary_plan), seed=2
        )

    result = benchmark(run)
    assert result.completed
    assert result.metrics.work_total <= 2 * n
    benchmark.extra_info["work"] = result.metrics.work_total


def test_reproduce_e5_theorem_4_1_normal(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e5(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]


def test_reproduce_e6_theorem_4_1_reversion(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e6(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows


def test_reproduce_e7_common_cases(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e7(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
