"""E15 - Section 3 motivation: without fault detection, the naive
most-knowledgeable-takes-over spreader pays Theta(t^2) on the cascade
schedule; Protocol C pays n + 2t."""

from repro.analysis.experiments import experiment_e15
from repro.core.registry import run_protocol
from repro.sim.adversary import Cascade


def test_naive_spreading_cascade_run(benchmark):
    t = 64

    def adversary_factory():
        return Cascade(
            lead_units=t - 1, redo_units=t // 2, initial_dead=list(range(t // 2 + 1, t))
        )

    result = benchmark(
        lambda: run_protocol("C-naive", 2 * t, t, adversary=adversary_factory(), seed=2)
    )
    assert result.completed
    benchmark.extra_info["work"] = result.metrics.work_total


def test_reproduce_e15_naive_vs_c(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e15(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]
    fit_row = next(row for row in result.rows if str(row["t"]).startswith("fit"))
    assert fit_row["naive work"] > 1.6   # ~quadratic
    assert fit_row["C work"] < 1.3       # ~linear
