"""E13 - simulator scaling: the quiescence fast-forward makes wall time
proportional to actions rather than rounds, so Protocol C's 2^(n+t)-round
deadline stretches cost nothing to simulate (the 'slow at scale' risk of
a naive round-by-round simulator)."""

from repro.analysis.experiments import experiment_e13
from repro.core.registry import run_protocol
from repro.sim.adversary import KillActive, RandomCrashes


def test_engine_scaling_large_a(benchmark):
    result = benchmark(
        lambda: run_protocol(
            "A", 4096, 64, adversary=RandomCrashes(32, max_action_index=25), seed=1
        )
    )
    assert result.completed
    benchmark.extra_info["virtual_rounds"] = float(result.metrics.retire_round)


def test_engine_scaling_protocol_c_exponential_rounds(benchmark):
    result = benchmark(
        lambda: run_protocol(
            "C", 64, 16, adversary=KillActive(15, actions_before_kill=2), seed=1
        )
    )
    assert result.completed
    # The virtual clock ran astronomically further than wall time could.
    assert result.metrics.retire_round > 10**9
    benchmark.extra_info["virtual_rounds"] = float(result.metrics.retire_round)


def test_engine_scaling_t4096(benchmark):
    """Large process count: the event-indexed scheduler keeps cost at
    O(actions * log t) where the seed engine's per-round O(t) rescans made
    this scenario take ~85s (now a few seconds)."""
    result = benchmark.pedantic(
        lambda: run_protocol(
            "A", 4096, 4096, adversary=RandomCrashes(1024, max_action_index=25), seed=1
        ),
        rounds=1,
        iterations=1,
    )
    assert result.completed
    benchmark.extra_info["virtual_rounds"] = float(result.metrics.retire_round)


def test_engine_scaling_large_d(benchmark):
    result = benchmark(
        lambda: run_protocol(
            "D", 4096, 64, adversary=RandomCrashes(20, max_action_index=30), seed=1
        )
    )
    assert result.completed
    benchmark.extra_info["rounds"] = result.metrics.retire_round


def test_reproduce_e13_scaling(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e13(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, result.rows
