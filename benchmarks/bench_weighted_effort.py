"""E14 - the Conclusions' remark: which protocol is optimal depends on
the relative price of messages and work."""

from repro.analysis.experiments import experiment_e14


def test_reproduce_e14_weighted_effort(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e14(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok
    winners = {row["winner"] for row in result.rows}
    assert len(winners) >= 2, "a single protocol dominated every cost model"
    # Expensive messages must eventually favour the silent baseline.
    heaviest = max(result.rows, key=lambda row: row["msg weight"])
    assert heaviest["winner"] == "replicate"
