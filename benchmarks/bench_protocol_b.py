"""E2 - Theorem 2.8: Protocol B keeps Protocol A's effort (<= 3n work,
<= 10 t sqrt(t) messages) while retiring by round 3n + 8t."""

from repro.analysis import bounds
from repro.analysis.experiments import experiment_e2
from repro.core.registry import run_protocol
from repro.sim.adversary import KillActive


def test_protocol_b_run_failure_free(benchmark):
    result = benchmark(lambda: run_protocol("B", 512, 64, seed=1))
    assert result.completed
    assert result.metrics.retire_round <= bounds.protocol_b_rounds(512, 64).value
    benchmark.extra_info["rounds"] = result.metrics.retire_round


def test_protocol_b_run_under_takeover_storm(benchmark):
    def run():
        return run_protocol(
            "B", 512, 64, adversary=KillActive(63, actions_before_kill=2), seed=1
        )

    result = benchmark(run)
    assert result.completed
    benchmark.extra_info["rounds"] = result.metrics.retire_round


def test_b_linear_time_vs_a_quadratic(benchmark):
    """The headline of Section 2.3: takeovers cost O(1) timeouts in B."""

    def run_both():
        def adversary():
            return KillActive(35, actions_before_kill=2)

        a = run_protocol("A", 288, 36, adversary=adversary(), seed=2)
        b = run_protocol("B", 288, 36, adversary=adversary(), seed=2)
        return a, b

    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert b.metrics.retire_round < a.metrics.retire_round / 3
    benchmark.extra_info["a_rounds"] = a.metrics.retire_round
    benchmark.extra_info["b_rounds"] = b.metrics.retire_round


def test_reproduce_e2_theorem_2_8(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: experiment_e2(quick=False), rounds=1, iterations=1
    )
    record_experiment(result)
    assert result.all_ok, [row for row in result.rows if not row["ok"]]
