"""The campaign runner: execute planned chunks, checkpoint, resume.

:func:`run_campaign` drives one session of a campaign:

1. replay the ledger (:class:`~repro.campaign.ledger.CampaignState`) and
   skip every checkpointed chunk - *resume is the default behavior*,
   a fresh campaign is just a resume with an empty ledger;
2. execute the remaining chunks in plan order, each through the
   existing :func:`repro.api.run_scenarios` pool (``workers=``) with an
   optional shared :class:`~repro.cache.ResultCache` - or, with
   ``server=``, by submitting the chunk to a remote ``repro serve``
   instance via :class:`~repro.client.Client` so every shard reuses one
   server-side cache;
3. append each completed chunk to the ledger *before* moving on, so an
   interruption loses at most the in-flight chunk.

Counters (:class:`CampaignOutcome`) prove the resume contract: how many
runs actually executed this session vs. came from the ledger, the
cache, or a remote coalesced execution.  The CI ``campaign-smoke`` job
and ``tests/test_campaign.py`` assert that after an interruption the
resumed session executes exactly the non-checkpointed chunks and the
merged report is bit-identical to an uninterrupted serial run.

Sharding: ``shard=(i, k)`` makes this session responsible for chunks
with ``index % k == i`` only.  Shards write separate ledger files;
:func:`campaign_status` / :func:`~repro.campaign.report.build_report`
merge any number of ledgers for the same grid digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api import run_scenarios
from repro.campaign.ledger import CampaignLedger, CampaignState
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError


def parse_shard(text: str) -> Tuple[int, int]:
    """``"i/k"`` -> ``(i, k)`` with ``0 <= i < k`` (the CLI grammar)."""
    parts = text.split("/")
    try:
        if len(parts) != 2:
            raise ValueError
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"a shard is spelled INDEX/COUNT (e.g. '0/4'), got {text!r}"
        ) from None
    _check_shard((index, count))
    return index, count


def _check_shard(shard: Tuple[int, int]) -> None:
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must satisfy 0 <= index < count, got "
            f"{index}/{count}"
        )


@dataclass
class CampaignOutcome:
    """What one runner session did (and what the ledger now holds)."""

    spec: CampaignSpec
    state: CampaignState
    chunks_executed: int = 0
    chunks_skipped: int = 0      # checkpointed before this session
    chunks_foreign: int = 0      # owned by other shards
    executed_runs: int = 0       # scenarios actually simulated here
    cache_hits: int = 0          # served by the local shared cache
    remote_hits: int = 0         # served by the server's cache
    remote_coalesced: int = 0    # attached to an in-flight remote run
    interrupted: bool = False    # stopped early by max_chunks
    shard: Optional[Tuple[int, int]] = None
    errors: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.state.complete

    def status_dict(self) -> Dict[str, Any]:
        data = self.state.status_dict()
        data["session"] = self.execution_dict()
        return data

    def execution_dict(self) -> Dict[str, Any]:
        """The provenance counters - everything a bit-equality check
        must *exclude* (see :mod:`repro.campaign.report`)."""
        data: Dict[str, Any] = {
            "chunks_executed": self.chunks_executed,
            "chunks_skipped": self.chunks_skipped,
            "executed_runs": self.executed_runs,
            "cache_hits": self.cache_hits,
            "interrupted": self.interrupted,
        }
        if self.shard is not None:
            data["shard"] = f"{self.shard[0]}/{self.shard[1]}"
            data["chunks_foreign"] = self.chunks_foreign
        if self.remote_hits or self.remote_coalesced:
            data["remote_hits"] = self.remote_hits
            data["remote_coalesced"] = self.remote_coalesced
        return data

    def report(self, *, partial: bool = False) -> CampaignReport:
        return build_report(
            self.spec,
            self.state,
            partial=partial,
            execution=self.execution_dict(),
        )


def _execute_local(chunk, *, workers, cache):
    """Run one chunk in-process; ``(results, executed, hits)``."""
    if cache is None:
        results = run_scenarios(list(chunk.scenarios), workers=workers)
        return results, len(chunk), 0
    before = cache.stats()
    results = run_scenarios(list(chunk.scenarios), workers=workers, cache=cache)
    after = cache.stats()
    executed = after["misses"] - before["misses"]
    hits = after["hits"] - before["hits"]
    return results, executed, hits


def _execute_remote(chunk, *, client, timeout):
    """Submit one chunk to a run server; ``(results, executed, hits,
    coalesced)`` from the job's per-slot sources."""
    document = {
        "scenarios": [scenario.to_dict() for scenario in chunk.scenarios]
    }
    snapshot = client.submit(document)
    if snapshot["status"] != "done":
        client.wait(snapshot["job"], timeout=timeout)
        snapshot = client.job(snapshot["job"])
    from repro.sim.metrics import RunResult

    results = [RunResult.from_dict(item) for item in snapshot["results"]]
    sources = snapshot["sources"]
    return (
        results,
        sources.count("run"),
        sources.count("cache"),
        sources.count("coalesced"),
    )


def run_campaign(
    spec: CampaignSpec,
    ledger_path,
    *,
    workers: Optional[int] = None,
    cache=None,
    server: Optional[Union[str, Any]] = None,
    timeout: float = 600.0,
    shard: Optional[Tuple[int, int]] = None,
    max_chunks: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    chaos=None,
) -> CampaignOutcome:
    """Execute (or resume) a campaign against one ledger file.

    Parameters
    ----------
    workers:
        :func:`repro.api.run_scenarios` pool size per chunk (local mode).
    cache:
        a shared :class:`~repro.cache.ResultCache`; chunks consult it
        before executing and fill it after, so repeated or overlapping
        campaigns reuse runs (metrics are bit-identical either way).
    server:
        base URL of a running ``repro serve`` (or a ready
        :class:`~repro.client.Client`); chunks are submitted as
        ``scenarios`` documents and the *server's* content-addressed
        cache plays the role ``cache`` plays locally - which is how
        several shards on several machines share one memo.
    shard:
        ``(index, count)``: this session only runs chunks with
        ``chunk.index % count == index``.
    max_chunks:
        stop (``interrupted=True``) after executing this many chunks -
        the deliberate-interruption hook the resume tests and the CI
        smoke job use.
    progress:
        callable receiving one line per chunk (the CLI passes a stderr
        printer).
    chaos:
        a chaos spec (string/dict) or live
        :class:`~repro.chaos.ChaosInjector`; threads the
        ``ledger_append`` injection point through this session's ledger
        writes (see ``docs/chaos.md``).  An injected torn append raises
        :class:`~repro.chaos.ChaosInterrupt` exactly like a real kill;
        resuming afterwards is the chaos harness's headline proof.
    """
    if cache is not None and server is not None:
        raise ConfigurationError(
            "pass either a local result cache or a remote server, not both "
            "(in remote mode the server's cache is the shared memo)"
        )
    if shard is not None:
        _check_shard(shard)
    if max_chunks is not None and (
        isinstance(max_chunks, bool) or not isinstance(max_chunks, int) or max_chunks < 0
    ):
        raise ConfigurationError(
            f"max_chunks must be a non-negative integer, got {max_chunks!r}"
        )
    client = None
    if server is not None:
        if isinstance(server, str):
            from repro.client import Client

            client = Client(server)
        else:
            client = server
    from repro.chaos import chaos_from_spec

    state = CampaignState.load(spec, ledger_path)
    ledger = CampaignLedger(ledger_path, spec, chaos=chaos_from_spec(chaos))
    outcome = CampaignOutcome(spec=spec, state=state, shard=shard)
    emit = progress if progress is not None else (lambda line: None)
    for chunk in spec.chunks():
        if shard is not None and chunk.index % shard[1] != shard[0]:
            outcome.chunks_foreign += 1
            continue
        if chunk.index in state.completed:
            outcome.chunks_skipped += 1
            continue
        if max_chunks is not None and outcome.chunks_executed >= max_chunks:
            outcome.interrupted = True
            emit(
                f"chunk {chunk.index}: stopping (max_chunks={max_chunks} "
                "reached); resume to continue"
            )
            break
        if client is not None:
            results, executed, hits, coalesced = _execute_remote(
                chunk, client=client, timeout=timeout
            )
            outcome.remote_hits += hits
            outcome.remote_coalesced += coalesced
        else:
            results, executed, hits = _execute_local(
                chunk, workers=workers, cache=cache
            )
            outcome.cache_hits += hits
        payloads = []
        for result in results:
            payload = result.to_dict(full=True)
            payload.pop("config", None)  # the ledger stores content, not echoes
            payloads.append(payload)
        ledger.append_chunk(chunk, payloads)
        state.completed[chunk.index] = {
            "chunk": chunk.index,
            "keys": chunk.keys(),
            "results": payloads,
        }
        outcome.chunks_executed += 1
        outcome.executed_runs += executed
        emit(
            f"chunk {chunk.index + 1}/{spec.total_chunks}: "
            f"{len(chunk)} runs ({executed} executed, "
            f"{len(chunk) - executed} reused)"
        )
    return outcome


def campaign_status(spec: CampaignSpec, ledger_paths) -> CampaignState:
    """Replay ledgers without executing anything (the ``status`` verb)."""
    return CampaignState.load(spec, ledger_paths)


__all__ = [
    "CampaignOutcome",
    "campaign_status",
    "parse_shard",
    "run_campaign",
]
