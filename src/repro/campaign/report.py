"""Campaign reports: the checkpointed grid merged back into one ResultSet.

The report is always built **from the ledger**, never from in-memory
results - the ledger is the source of truth, and building through it
proves the checkpoint round-trip: every payload rehydrates through
:meth:`~repro.sim.metrics.RunResult.from_dict`, gets its requesting
scenario's config echo re-attached (exactly what the result cache does),
is integrity-checked against the grid (the recorded content address must
equal the planned scenario's :meth:`~repro.api.Scenario.cache_key`), and
the per-chunk :class:`~repro.api.ResultSet` objects merge via
:meth:`ResultSet.merge` in plan order.

Determinism contract: the ``results`` section of
:meth:`CampaignReport.as_dict` is a pure function of the campaign spec -
interrupted/resumed, sharded, cached, remote or serial executions all
produce byte-identical ``results``.  Execution provenance (what actually
ran vs. came from the ledger/cache this session) lives in the separate
``execution`` section, which is *expected* to differ between sessions;
bit-equality checks compare everything else.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api import ResultSet
from repro.campaign.ledger import CampaignState
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError
from repro.sim.metrics import RunResult
from repro.suites import PIN_MEASURES

Cell = Tuple[str, str, int, int]  # (protocol, adversary label, n, t)


@dataclass(frozen=True)
class CampaignCell:
    """Per-measure reductions of one grid cell over its seeds."""

    protocol: str
    adversary: str
    n: int
    t: int
    runs: int
    worst: Dict[str, float]
    mean: Dict[str, float]
    all_completed: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "adversary": self.adversary,
            "n": self.n,
            "t": self.t,
            "runs": self.runs,
            "worst": dict(self.worst),
            "mean": {k: round(v, 6) for k, v in self.mean.items()},
            "all_completed": self.all_completed,
        }


@dataclass
class CampaignReport:
    """The merged outcome of one campaign grid."""

    spec: CampaignSpec
    result_set: ResultSet
    cells: List[CampaignCell]
    chunks_merged: int
    complete: bool
    execution: Dict[str, Any]

    # ---- pins --------------------------------------------------------

    def failures(self) -> List[str]:
        """Pin mismatches plus incomplete-run verdicts (suite semantics:
        pins are exact, over the merged worst-case reduction)."""
        messages = []
        if not self.complete:
            messages.append(
                f"campaign is incomplete: {self.chunks_merged} of "
                f"{self.spec.total_chunks} chunks merged"
            )
        if not self.result_set.all_completed:
            messages.append("not every run completed its work")
        if self.spec.pins and self.complete:
            observed = self.result_set.worst()
            for measure in sorted(self.spec.pins):
                pinned = self.spec.pins[measure]
                got = observed[measure]
                if got != pinned:
                    messages.append(
                        f"{measure}: observed {got!r} != pinned {pinned!r}"
                    )
        return messages

    @property
    def passed(self) -> bool:
        return not self.failures()

    # ---- export ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        spec = self.spec
        return {
            "campaign": spec.name,
            "digest": spec.digest(),
            "grid": {
                "runs": spec.total_runs,
                "chunks": spec.total_chunks,
                "chunk_size": spec.chunk_size,
                "cells": spec.total_cells,
                "seeds": len(spec.seeds),
            },
            "complete": self.complete,
            "results": {
                "runs": len(self.result_set),
                "worst": self.result_set.worst(),
                "mean": {
                    k: round(v, 6) for k, v in self.result_set.mean().items()
                },
                "all_completed": self.result_set.all_completed,
                "cells": [cell.as_dict() for cell in self.cells],
            },
            "pins": {k: spec.pins[k] for k in sorted(spec.pins)},
            "failures": self.failures(),
            "passed": self.passed,
            "execution": dict(self.execution),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"

    def table(self) -> str:
        """Markdown: one row per cell, worst-case measures + mean effort."""
        from repro.analysis.tables import render_table

        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.protocol,
                    cell.adversary,
                    cell.n,
                    cell.t,
                    cell.runs,
                    cell.worst["work"],
                    cell.worst["messages"],
                    cell.worst["effort"],
                    f"{cell.mean['effort']:.1f}",
                    float(cell.worst["rounds"]),
                    "yes" if cell.all_completed else "NO",
                ]
            )
        title = (
            f"campaign {self.spec.name!r} "
            f"({len(self.result_set)} runs, {len(self.cells)} cells"
            + ("" if self.complete else ", INCOMPLETE")
            + ")"
        )
        return render_table(
            [
                "protocol",
                "adversary",
                "n",
                "t",
                "runs",
                "worst work",
                "worst msgs",
                "worst effort",
                "mean effort",
                "worst rounds",
                "completed",
            ],
            rows,
            title=title,
        )


def build_report(
    spec: CampaignSpec,
    state: CampaignState,
    *,
    partial: bool = False,
    execution: Optional[Dict[str, Any]] = None,
) -> CampaignReport:
    """Merge the checkpointed chunks into one :class:`CampaignReport`.

    Requires every chunk to be checkpointed unless ``partial=True`` (a
    partial report merges what exists, in plan order, and is marked
    incomplete).  Every recorded content address is verified against the
    planned scenario's ``cache_key()``; a mismatch means the ledger does
    not describe this grid and raises :class:`ConfigurationError`.
    """
    chunk_sets: List[ResultSet] = []
    cell_order: List[Cell] = []
    cell_entries: Dict[Cell, List] = {}
    merged_chunks = 0
    for chunk in spec.chunks():
        if chunk.index not in state.completed:
            if partial:
                continue
            state.record_for(chunk.index)  # raises with the named chunk
        record = state.completed[chunk.index]
        keys = record["keys"]
        entries = []
        for scenario, key, payload in zip(chunk.scenarios, keys, record["results"]):
            expected = scenario.cache_key()
            if key != expected:
                raise ConfigurationError(
                    f"ledger chunk {chunk.index} records content address "
                    f"{key[:12]}... where the plan expects "
                    f"{expected[:12]}...; the ledger does not describe this "
                    "campaign's grid"
                )
            try:
                result = RunResult.from_dict(payload)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"ledger chunk {chunk.index} result for key "
                    f"{key[:12]}... does not rehydrate: {exc}"
                ) from exc
            result = dataclasses.replace(result, config=scenario.to_dict())
            entries.append((scenario, result))
            cell = spec.cell_of(scenario)
            if cell not in cell_entries:
                cell_entries[cell] = []
                cell_order.append(cell)
            cell_entries[cell].append((scenario, result))
        chunk_sets.append(ResultSet(entries))
        merged_chunks += 1
    merged = ResultSet.merge(*chunk_sets) if chunk_sets else ResultSet([])
    cells = []
    for cell in cell_order:
        subset = ResultSet(cell_entries[cell])
        protocol, adversary, n, t = cell
        cells.append(
            CampaignCell(
                protocol=protocol,
                adversary=adversary,
                n=n,
                t=t,
                runs=len(subset),
                worst=subset.worst(),
                mean=subset.mean(),
                all_completed=subset.all_completed,
            )
        )
    return CampaignReport(
        spec=spec,
        result_set=merged,
        cells=cells,
        chunks_merged=merged_chunks,
        complete=merged_chunks == spec.total_chunks,
        execution=dict(execution or {}),
    )


__all__ = ["PIN_MEASURES", "CampaignCell", "CampaignReport", "build_report"]
