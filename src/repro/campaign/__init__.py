"""Campaign runner: sharded, resumable large-grid experiment campaigns.

The suite layer (:mod:`repro.suites`) tops out at ~10^2 pinned runs;
campaigns are the 10^4-10^5-run regime where the paper's worst-case
bounds become statistically visible.  A campaign is:

* a declarative **grid spec** (:class:`CampaignSpec`, JSON like
  Scenario/Suite): base scenario x protocols x adversaries x n x t x
  seeds, planned into deterministic fixed-size chunks;
* a **chunk ledger** (:class:`~repro.campaign.ledger.CampaignLedger`):
  append-only JSONL checkpoints keyed by
  :meth:`~repro.api.Scenario.cache_key`, torn-line tolerant, so a killed
  campaign resumes by re-running only the missing chunks
  (:class:`CampaignState` is the replayed progress);
* a **runner** (:func:`run_campaign`): executes remaining chunks on the
  :func:`repro.api.run_scenarios` pool, through a shared
  :class:`~repro.cache.ResultCache`, or against a remote ``repro
  serve`` instance (shards reuse one server-side cache);
* a **report** (:class:`CampaignReport`): every chunk rehydrated and
  merged via :meth:`~repro.api.ResultSet.merge` with per-cell
  worst/mean reducers, markdown/JSON export, and optional
  campaign-level pins.

The headline guarantee - proven by ``tests/test_campaign.py`` and the
CI ``campaign-smoke`` job - is bit-identical determinism under
interruption: kill a campaign at any chunk boundary (or mid-append),
resume, and the merged report's ``results`` equal an uninterrupted
serial run exactly, with counters proving checkpointed chunks were not
re-executed.

See ``docs/campaigns.md`` for the file format and CLI tour
(``python -m repro campaign plan|run|resume|status|report``).
"""

from repro.campaign.ledger import LEDGER_FORMAT_VERSION, CampaignLedger, CampaignState
from repro.campaign.report import CampaignCell, CampaignReport, build_report
from repro.campaign.runner import (
    CampaignOutcome,
    campaign_status,
    parse_shard,
    run_campaign,
)
from repro.campaign.spec import (
    CAMPAIGN_FORMAT_VERSION,
    CampaignChunk,
    CampaignSpec,
    adversary_label,
    load_campaign,
)

__all__ = [
    "CAMPAIGN_FORMAT_VERSION",
    "LEDGER_FORMAT_VERSION",
    "CampaignCell",
    "CampaignChunk",
    "CampaignLedger",
    "CampaignOutcome",
    "CampaignReport",
    "CampaignSpec",
    "CampaignState",
    "adversary_label",
    "build_report",
    "campaign_status",
    "load_campaign",
    "parse_shard",
    "run_campaign",
]
