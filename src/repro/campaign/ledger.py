"""The campaign chunk ledger: append-only JSONL checkpoints.

One ledger file records the progress of one campaign grid.  Line 1 is a
header binding the file to the campaign's grid digest; every following
line checkpoints one *completed* chunk::

    {"format": 1, "campaign": "paper-grid", "digest": "ab12...",
     "chunks": 10, "runs": 200, "chunk_size": 20}
    {"chunk": 0, "keys": ["9f3c...", ...], "results": [{...}, ...]}
    {"chunk": 1, "keys": [...], "results": [...]}

``results`` holds the chunk's run payloads in grid order as
config-stripped lossless :meth:`~repro.sim.metrics.RunResult.to_dict`
(``full=True``) dicts - the same wire form the content-addressed
:class:`~repro.cache.ResultCache` stores, keyed by the parallel ``keys``
list of :meth:`~repro.api.Scenario.cache_key` content addresses.

Crash semantics
---------------

A chunk line is appended as **one** ``write()`` of one JSON line and
flushed before the runner moves on, so killing a campaign leaves the
ledger in one of exactly two shapes:

* truncated at a chunk boundary - every line parses; the missing
  chunks simply re-run on resume;
* torn mid-line - the *final* line is a partial JSON fragment.  Replay
  detects this (a parse failure on the last line only), discards the
  fragment, and the interrupted chunk re-runs.  A parse failure on any
  *earlier* line is corruption, not interruption, and raises
  :class:`~repro.errors.ConfigurationError` naming the line.

Because every run is a deterministic function of its scenario, a
re-executed chunk reproduces byte-identical payloads - which is what
makes the resumed merge equal to an uninterrupted serial run (proven in
``tests/test_campaign.py`` and the CI ``campaign-smoke`` job).

Fault injection (see ``docs/chaos.md``): a ledger built with a
``chaos`` injector consults the ``ledger_append`` point on every
checkpoint - ``torn`` writes half the line and raises
:class:`~repro.chaos.ChaosInterrupt` (a simulated mid-append kill,
leaving exactly the torn-final-line shape replay already tolerates),
``fsync_fail`` simulates a failed flush by rewinding the partial
append and retrying it, so a flaky disk costs a rewrite, never a
corrupt ledger.  ``tests/test_chaos.py`` proves a chaos-interrupted
campaign resumes to a report bit-identical to a fault-free run.

Sharding: shards run disjoint chunk subsets (``--shard i/k``) into
*separate* ledger files; :meth:`CampaignState.load` merges any number of
ledgers for the same digest (duplicate chunk records are tolerated -
determinism makes them identical, last write wins).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.spec import CampaignChunk, CampaignSpec
from repro.errors import ConfigurationError

#: Ledger file format version.
LEDGER_FORMAT_VERSION = 1


def _header_dict(spec: CampaignSpec) -> Dict[str, Any]:
    return {
        "format": LEDGER_FORMAT_VERSION,
        "campaign": spec.name,
        "digest": spec.digest(),
        "chunks": spec.total_chunks,
        "runs": spec.total_runs,
        "chunk_size": spec.chunk_size,
    }


class CampaignLedger:
    """Writer for one campaign ledger file.

    Opening creates the file (with its header) if absent; an existing
    file is validated against the spec's digest, so two different grids
    can never interleave in one ledger.
    """

    def __init__(self, path, spec: CampaignSpec, *, chaos=None):
        self.path = Path(path)
        self.spec = spec
        self.digest = spec.digest()
        self.chaos = chaos  # a repro.chaos.ChaosInjector, or None
        self.fsync_retries = 0  # appends rewound and retried
        if self.path.exists() and self.path.stat().st_size > 0:
            header, _, _ = _read_ledger(self.path)
            _check_header(header, spec, path=self.path)
            self._trim_torn_tail()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w") as handle:
                handle.write(json.dumps(_header_dict(spec), sort_keys=True) + "\n")
                handle.flush()

    def _trim_torn_tail(self) -> None:
        """Drop a torn final fragment (a mid-append kill leaves no
        trailing newline) so the next append starts on a fresh line
        instead of gluing its checkpoint onto the fragment - which
        would turn one discarded line into mid-file corruption."""
        text = self.path.read_text()
        if not text or text.endswith("\n"):
            return
        cut = text.rfind("\n") + 1
        with self.path.open("r+") as handle:
            handle.truncate(cut)

    def append_chunk(
        self, chunk: CampaignChunk, payloads: Sequence[Dict[str, Any]]
    ) -> None:
        """Checkpoint one completed chunk (single write + flush)."""
        if len(payloads) != len(chunk):
            raise ConfigurationError(
                f"chunk {chunk.index} holds {len(chunk)} scenarios but "
                f"{len(payloads)} results were supplied"
            )
        record = {
            "chunk": chunk.index,
            "keys": chunk.keys(),
            "results": list(payloads),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        mode = (
            self.chaos.fire("ledger_append", f"chunk {chunk.index}")
            if self.chaos is not None
            else None
        )
        if mode == "torn":
            # A kill mid-append: half the line reaches the disk, then
            # the "process" dies.  Replay discards the torn final line
            # and the chunk re-runs on resume.
            from repro.chaos import ChaosInterrupt

            with self.path.open("a") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
            raise ChaosInterrupt(
                f"chaos: ledger append for chunk {chunk.index} torn "
                "mid-write (simulated kill)"
            )
        if mode == "fsync_fail":
            # A failed flush: rewind the partial append and retry it,
            # so the ledger never holds a half-trusted checkpoint.
            with self.path.open("a") as handle:
                size_before = handle.tell()
                handle.write(line[: max(1, len(line) // 2)])
            with self.path.open("r+") as handle:
                handle.truncate(size_before)
            self.fsync_retries += 1
        with self.path.open("a") as handle:
            handle.write(line)
            handle.flush()


def _check_header(
    header: Dict[str, Any], spec: CampaignSpec, *, path: Path
) -> None:
    digest = spec.digest()
    if header.get("digest") != digest:
        raise ConfigurationError(
            f"ledger {path} was written for campaign "
            f"{header.get('campaign')!r} with grid digest "
            f"{str(header.get('digest'))[:12]}..., but this spec's digest is "
            f"{digest[:12]}...; the chunk indexes would name different "
            "scenarios (start a fresh ledger, or use the original spec)"
        )
    if header.get("format") != LEDGER_FORMAT_VERSION:
        raise ConfigurationError(
            f"ledger {path} uses format version {header.get('format')!r}, "
            f"but this reader understands version {LEDGER_FORMAT_VERSION}"
        )


def _read_ledger(path: Path):
    """``(header, {chunk index: record}, torn)`` from one ledger file.

    ``torn`` is True when the final line was a partial JSON fragment
    (an interrupted mid-chunk append) and was discarded.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read ledger {path}: {exc}") from exc
    lines = text.splitlines()
    if not lines:
        raise ConfigurationError(f"ledger {path} is empty (no header line)")
    records: Dict[int, Dict[str, Any]] = {}
    header: Optional[Dict[str, Any]] = None
    torn = False
    last = len(lines) - 1
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last:
                # The one legal malformation: an append cut short by a
                # kill.  The chunk it described simply re-runs.
                torn = True
                break
            raise ConfigurationError(
                f"ledger {path} line {lineno + 1} is not valid JSON "
                f"(and is not the final line, so this is corruption, not "
                f"an interrupted append): {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"ledger {path} line {lineno + 1} must hold a JSON object, "
                f"got {type(record).__name__}"
            )
        if lineno == 0:
            if "digest" not in record:
                raise ConfigurationError(
                    f"ledger {path} line 1 is not a campaign header "
                    "(missing 'digest')"
                )
            header = record
            continue
        _validate_chunk_record(record, path=path, lineno=lineno + 1)
        records[record["chunk"]] = record
    if header is None:
        # File held exactly one line and it tore: indistinguishable from
        # an interrupted header write - treat as an unusable ledger.
        raise ConfigurationError(
            f"ledger {path} has no complete header line; delete it and "
            "start over"
        )
    return header, records, torn


def _validate_chunk_record(
    record: Dict[str, Any], *, path: Path, lineno: int
) -> None:
    where = f"ledger {path} line {lineno}"
    chunk = record.get("chunk")
    if isinstance(chunk, bool) or not isinstance(chunk, int) or chunk < 0:
        raise ConfigurationError(
            f"{where}: 'chunk' must be a non-negative integer, got {chunk!r}"
        )
    keys = record.get("keys")
    results = record.get("results")
    if not isinstance(keys, list) or not all(
        isinstance(key, str) for key in keys
    ):
        raise ConfigurationError(
            f"{where}: 'keys' must be a list of content-address strings"
        )
    if not isinstance(results, list) or not all(
        isinstance(item, dict) for item in results
    ):
        raise ConfigurationError(
            f"{where}: 'results' must be a list of run-result payload dicts"
        )
    if len(keys) != len(results):
        raise ConfigurationError(
            f"{where}: {len(keys)} keys but {len(results)} results"
        )


@dataclass
class CampaignState:
    """Replayed progress of a campaign: which chunks are checkpointed.

    Loaded from one or more ledger files (shards write separate
    ledgers); exposes the completed chunk records and the resume
    arithmetic the runner, ``status`` verb and report builder share.
    """

    spec: CampaignSpec
    completed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    torn_tails: int = 0
    paths: List[Path] = field(default_factory=list)

    @classmethod
    def load(cls, spec: CampaignSpec, paths) -> "CampaignState":
        """Replay ``paths`` (ledger files for this spec's digest).

        Missing files are fine - they just contribute nothing (a fresh
        campaign has no ledger yet).
        """
        if isinstance(paths, (str, Path)):
            paths = [paths]
        state = cls(spec=spec)
        total = spec.total_chunks
        for path in paths:
            path = Path(path)
            state.paths.append(path)
            if not path.exists() or path.stat().st_size == 0:
                continue
            header, records, torn = _read_ledger(path)
            _check_header(header, spec, path=path)
            if torn:
                state.torn_tails += 1
            for index, record in records.items():
                if index >= total:
                    raise ConfigurationError(
                        f"ledger {path} checkpoints chunk {index}, but this "
                        f"campaign plans only {total} chunks"
                    )
                if len(record["keys"]) != spec.chunk_length(index):
                    raise ConfigurationError(
                        f"ledger {path} chunk {index} holds "
                        f"{len(record['keys'])} runs, but the plan says "
                        f"{spec.chunk_length(index)}"
                    )
                state.completed[index] = record
        return state

    # ---- resume arithmetic -------------------------------------------

    @property
    def chunks_done(self) -> int:
        return len(self.completed)

    @property
    def runs_done(self) -> int:
        return sum(len(record["keys"]) for record in self.completed.values())

    @property
    def complete(self) -> bool:
        return self.chunks_done == self.spec.total_chunks

    def remaining(self) -> List[int]:
        """Chunk indexes still to run, in plan order."""
        return [
            index
            for index in range(self.spec.total_chunks)
            if index not in self.completed
        ]

    def record_for(self, index: int) -> Dict[str, Any]:
        record = self.completed.get(index)
        if record is None:
            raise ConfigurationError(
                f"chunk {index} is not checkpointed in "
                f"{[str(p) for p in self.paths]}; the campaign is incomplete "
                "(run 'campaign resume' first, or build a partial report)"
            )
        return record

    def status_dict(self) -> Dict[str, Any]:
        spec = self.spec
        return {
            "campaign": spec.name,
            "digest": spec.digest(),
            "ledgers": [str(path) for path in self.paths],
            "chunks": {"total": spec.total_chunks, "done": self.chunks_done},
            "runs": {"total": spec.total_runs, "done": self.runs_done},
            "torn_tails": self.torn_tails,
            "complete": self.complete,
        }


__all__ = [
    "LEDGER_FORMAT_VERSION",
    "CampaignLedger",
    "CampaignState",
]
