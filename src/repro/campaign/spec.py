"""Campaign grid specs: declarative seeds x n x t x adversary x protocol grids.

A *campaign* is the big-grid regime the suite layer does not reach: the
paper's bounds are worst-case statements over all crash patterns, so
"predicted vs simulated" only becomes visible statistically over
:math:`10^4`-:math:`10^5` runs.  A :class:`CampaignSpec` describes such a
grid declaratively - one base :class:`~repro.api.Scenario` plus axes -
and *plans* it into deterministic fixed-size chunks that the runner
(:mod:`repro.campaign.runner`) executes, checkpoints and resumes.

File format (see ``docs/campaigns.md`` for the full reference)::

    {
      "campaign": "paper-grid",
      "version": 1,
      "description": "A vs D under two adversaries at two sizes",
      "base": {"protocol": "A", "n": 64, "t": 8, "seed": 0},
      "axes": {
        "protocols": ["A", "D"],
        "adversaries": ["random:3,max_action_index=10", null],
        "n": [48, 64],
        "seeds": {"start": 0, "count": 25}
      },
      "chunk_size": 20,
      "pins": {"work": 167, "effort": 551}
    }

Every axis is optional; a missing axis keeps the base scenario's value.
``seeds`` accepts either an explicit list or the ``{"start", "count"}``
range form (a :math:`10^5`-seed grid should not need a :math:`10^5`-element
list).  ``pins`` are optional campaign-level regression pins over the
merged worst-case reduction (same measures as suite pins).

**Grid order is the contract.**  Scenarios enumerate in document order
with seeds fastest::

    for protocol: for adversary: for n: for t: for seed

and chunk ``i`` is rows ``[i*chunk_size, (i+1)*chunk_size)`` of that
enumeration.  The order is what makes the chunk ledger meaningful across
interrupted sessions and shards: every planner on every machine derives
the identical chunk list, and :meth:`CampaignSpec.digest` (SHA-256 of
the canonical grid definition) is recorded in the ledger header so a
drifted spec is rejected instead of silently mis-merged.

A *cell* is one ``(protocol, adversary, n, t)`` grid point - the unit
the report reduces over seeds (per-cell worst/mean, matching the
paper's worst-case reading).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api import Scenario
from repro.errors import ConfigurationError
from repro.sim.adversary import normalize_adversary_spec

#: The campaign file format version this loader understands.
CAMPAIGN_FORMAT_VERSION = 1

#: Axis names the ``axes`` table accepts, in grid-nesting order
#: (seeds vary fastest).
GRID_AXES = ("protocols", "adversaries", "n", "t", "seeds")

#: Measures a campaign pin may reference (the suite pin vocabulary).
from repro.suites import PIN_MEASURES  # noqa: E402  (shared vocabulary)

_SPEC_FIELDS = {"campaign", "version", "description", "base", "axes",
                "chunk_size", "pins"}

DEFAULT_CHUNK_SIZE = 100


def _positive_int_list(values: Any, *, where: str) -> List[int]:
    if not isinstance(values, list) or not values:
        raise ConfigurationError(
            f"{where} must be a non-empty list, got {values!r}"
        )
    out = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ConfigurationError(
                f"{where} entries must be positive integers, got {value!r}"
            )
        out.append(value)
    return out


def _seed_list(raw: Any, *, where: str) -> List[int]:
    """Materialize the ``seeds`` axis: explicit list or range form."""
    if isinstance(raw, dict):
        unknown = set(raw) - {"start", "count"}
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in the range form of "
                f"{where}; accepted: start, count"
            )
        start = raw.get("start", 0)
        count = raw.get("count")
        for label, value in (("start", start), ("count", count)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"'{label}' of {where} must be an integer, got {value!r}"
                )
        if count < 1:
            raise ConfigurationError(
                f"'count' of {where} must be at least 1, got {count!r}"
            )
        return list(range(start, start + count))
    if not isinstance(raw, list) or not raw:
        raise ConfigurationError(
            f"{where} must be a non-empty list of integers or a "
            f"{{'start', 'count'}} range, got {raw!r}"
        )
    seeds = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(
                f"{where} entries must be integers, got {value!r}"
            )
        seeds.append(value)
    return seeds


def adversary_label(spec: Any) -> str:
    """Compact human label for one adversary axis value (cell naming)."""
    normalized = normalize_adversary_spec(spec)
    if normalized is None:
        return "none"
    kind = normalized["kind"]
    params = ",".join(
        f"{key}={normalized[key]}" for key in sorted(normalized) if key != "kind"
    )
    return f"{kind}:{params}" if params else kind


@dataclass(frozen=True)
class CampaignChunk:
    """One planned slice of the grid: ``chunk_size`` consecutive rows."""

    index: int
    start: int                    # global row offset of the first scenario
    scenarios: Tuple[Scenario, ...]

    def __len__(self) -> int:
        return len(self.scenarios)

    def keys(self) -> List[str]:
        return [scenario.cache_key() for scenario in self.scenarios]


@dataclass
class CampaignSpec:
    """A validated campaign grid: base scenario, axes, chunking, pins."""

    name: str
    base: Scenario
    seeds: List[int]
    protocols: Optional[List[str]] = None
    adversaries: Optional[List[Any]] = None
    n_values: Optional[List[int]] = None
    t_values: Optional[List[int]] = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    description: str = ""
    pins: Dict[str, float] = field(default_factory=dict)
    path: Optional[Path] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                "a campaign needs a non-empty 'campaign' name"
            )
        if not isinstance(self.base, Scenario):
            raise ConfigurationError(
                f"campaign 'base' must be a Scenario, got "
                f"{type(self.base).__name__}"
            )
        # The grid must be serializable end to end: chunks ship to
        # worker pools / remote servers as dicts and the ledger records
        # content addresses, so a live adversary object cannot campaign.
        try:
            self.base.cache_key()
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"campaign base scenario does not serialize: {exc}"
            ) from exc
        if (
            isinstance(self.chunk_size, bool)
            or not isinstance(self.chunk_size, int)
            or self.chunk_size < 1
        ):
            raise ConfigurationError(
                f"'chunk_size' must be a positive integer, got "
                f"{self.chunk_size!r}"
            )
        if not self.seeds:
            raise ConfigurationError("the 'seeds' axis must be non-empty")
        if self.protocols is not None and not self.protocols:
            raise ConfigurationError("'protocols' axis must be non-empty")
        if self.adversaries is not None:
            if not self.adversaries:
                raise ConfigurationError("'adversaries' axis must be non-empty")
            # Canonicalise eagerly so spelling variants digest equal and
            # bad specs fail at load, not mid-campaign.
            self.adversaries = [
                normalize_adversary_spec(spec) for spec in self.adversaries
            ]
        unknown_pins = set(self.pins) - set(PIN_MEASURES)
        if unknown_pins:
            raise ConfigurationError(
                f"unknown pin measure(s) {sorted(unknown_pins)}; accepted: "
                + ", ".join(PIN_MEASURES)
            )
        for measure, value in self.pins.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"campaign pin {measure!r} must be a number, got {value!r}"
                )

    # ---- axis views --------------------------------------------------

    @property
    def protocol_axis(self) -> List[str]:
        return list(self.protocols) if self.protocols is not None else [self.base.protocol]

    @property
    def adversary_axis(self) -> List[Any]:
        if self.adversaries is not None:
            return list(self.adversaries)
        return [self.base.adversary]

    @property
    def n_axis(self) -> List[int]:
        return list(self.n_values) if self.n_values is not None else [self.base.n]

    @property
    def t_axis(self) -> List[int]:
        return list(self.t_values) if self.t_values is not None else [self.base.t]

    # ---- grid arithmetic ---------------------------------------------

    @property
    def total_runs(self) -> int:
        return (
            len(self.protocol_axis)
            * len(self.adversary_axis)
            * len(self.n_axis)
            * len(self.t_axis)
            * len(self.seeds)
        )

    @property
    def total_chunks(self) -> int:
        return math.ceil(self.total_runs / self.chunk_size)

    @property
    def total_cells(self) -> int:
        return self.total_runs // len(self.seeds)

    def chunk_length(self, index: int) -> int:
        if not 0 <= index < self.total_chunks:
            raise ConfigurationError(
                f"chunk index {index} out of range; this campaign plans "
                f"{self.total_chunks} chunks"
            )
        start = index * self.chunk_size
        return min(self.chunk_size, self.total_runs - start)

    def scenario_at(self, offset: int) -> Scenario:
        """Row ``offset`` of the grid enumeration (seeds fastest).

        Mixed-radix decoding makes any chunk addressable in O(size)
        without enumerating the grid prefix - resuming chunk 900 of
        1000 does not rebuild 90k scenarios.
        """
        if not 0 <= offset < self.total_runs:
            raise ConfigurationError(
                f"grid offset {offset} out of range; this campaign has "
                f"{self.total_runs} runs"
            )
        seeds = self.seeds
        t_axis = self.t_axis
        n_axis = self.n_axis
        adversaries = self.adversary_axis
        protocols = self.protocol_axis
        offset, seed_i = divmod(offset, len(seeds))
        offset, t_i = divmod(offset, len(t_axis))
        offset, n_i = divmod(offset, len(n_axis))
        proto_i, adv_i = divmod(offset, len(adversaries))
        return self.base.replace(
            protocol=protocols[proto_i],
            adversary=adversaries[adv_i],
            n=n_axis[n_i],
            t=t_axis[t_i],
            seed=seeds[seed_i],
            name=None,
        )

    def scenarios(self) -> Iterator[Scenario]:
        """The full grid in enumeration order."""
        for offset in range(self.total_runs):
            yield self.scenario_at(offset)

    def chunk(self, index: int) -> CampaignChunk:
        """Planned chunk ``index``: its scenarios, materialized."""
        length = self.chunk_length(index)
        start = index * self.chunk_size
        return CampaignChunk(
            index=index,
            start=start,
            scenarios=tuple(
                self.scenario_at(start + row) for row in range(length)
            ),
        )

    def chunks(self) -> Iterator[CampaignChunk]:
        for index in range(self.total_chunks):
            yield self.chunk(index)

    def cell_of(self, scenario: Scenario) -> Tuple[str, str, int, int]:
        """The ``(protocol, adversary label, n, t)`` cell of one run."""
        return (
            scenario.protocol,
            adversary_label(scenario.adversary),
            scenario.n,
            scenario.t,
        )

    # ---- content addressing ------------------------------------------

    def grid_dict(self) -> Dict[str, Any]:
        """The canonical grid definition - everything that determines
        the planned chunk list, and nothing else (labels and pins are
        excluded, so renaming a campaign keeps its ledgers valid)."""
        base = self.base.to_dict()
        base.pop("name", None)
        return {
            "base": base,
            "protocols": self.protocol_axis,
            "adversaries": [
                normalize_adversary_spec(spec) for spec in self.adversary_axis
            ],
            "n": self.n_axis,
            "t": self.t_axis,
            "seeds": self.seeds,
            "chunk_size": self.chunk_size,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical grid definition.

        The ledger header records it; a ledger replayed against a spec
        with a different digest is rejected (the chunk indexes would
        name different scenarios)."""
        payload = json.dumps(
            self.grid_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ---- serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "campaign": self.name,
            "version": CAMPAIGN_FORMAT_VERSION,
        }
        if self.description:
            data["description"] = self.description
        data["base"] = self.base.to_dict()
        axes: Dict[str, Any] = {}
        if self.protocols is not None:
            axes["protocols"] = list(self.protocols)
        if self.adversaries is not None:
            axes["adversaries"] = [
                normalize_adversary_spec(spec) for spec in self.adversaries
            ]
        if self.n_values is not None:
            axes["n"] = list(self.n_values)
        if self.t_values is not None:
            axes["t"] = list(self.t_values)
        axes["seeds"] = list(self.seeds)
        data["axes"] = axes
        data["chunk_size"] = self.chunk_size
        if self.pins:
            data["pins"] = {k: self.pins[k] for k in sorted(self.pins)}
        return data

    @classmethod
    def from_dict(cls, data: Any, *, path: Optional[Path] = None) -> "CampaignSpec":
        where = f"campaign file {path}" if path is not None else "campaign dict"
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must hold a dict, got {type(data).__name__}"
            )
        unknown = set(data) - _SPEC_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in {where}; accepted: "
                + ", ".join(sorted(_SPEC_FIELDS))
            )
        missing = {"campaign", "version", "base", "axes"} - set(data)
        if missing:
            raise ConfigurationError(
                f"{where} requires field(s) {sorted(missing)}"
            )
        version = data["version"]
        if isinstance(version, bool) or not isinstance(version, int):
            raise ConfigurationError(
                f"'version' of {where} must be an integer, got {version!r}"
            )
        if version != CAMPAIGN_FORMAT_VERSION:
            raise ConfigurationError(
                f"{where} uses format version {version}, but this loader "
                f"understands version {CAMPAIGN_FORMAT_VERSION}"
            )
        axes = data["axes"]
        if not isinstance(axes, dict):
            raise ConfigurationError(
                f"'axes' of {where} must be a dict, got {type(axes).__name__}"
            )
        unknown_axes = set(axes) - set(GRID_AXES)
        if unknown_axes:
            raise ConfigurationError(
                f"unknown axis(es) {sorted(unknown_axes)} in {where}; "
                f"accepted: {', '.join(GRID_AXES)}"
            )
        if "seeds" not in axes:
            raise ConfigurationError(
                f"'axes' of {where} requires a 'seeds' axis (explicit list "
                "or {'start', 'count'} range)"
            )
        protocols = axes.get("protocols")
        if protocols is not None:
            if not isinstance(protocols, list) or not all(
                isinstance(p, str) for p in protocols
            ):
                raise ConfigurationError(
                    f"'protocols' axis of {where} must be a list of names, "
                    f"got {protocols!r}"
                )
        adversaries = axes.get("adversaries")
        if adversaries is not None and not isinstance(adversaries, list):
            raise ConfigurationError(
                f"'adversaries' axis of {where} must be a list of specs, "
                f"got {adversaries!r}"
            )
        n_values = axes.get("n")
        if n_values is not None:
            n_values = _positive_int_list(n_values, where=f"'n' axis of {where}")
        t_values = axes.get("t")
        if t_values is not None:
            t_values = _positive_int_list(t_values, where=f"'t' axis of {where}")
        pins_raw = data.get("pins", {})
        if not isinstance(pins_raw, dict):
            raise ConfigurationError(
                f"'pins' of {where} must be a dict, got "
                f"{type(pins_raw).__name__}"
            )
        try:
            return cls(
                name=data["campaign"],
                base=Scenario.from_dict(data["base"]),
                seeds=_seed_list(axes["seeds"], where=f"'seeds' axis of {where}"),
                protocols=protocols,
                adversaries=adversaries,
                n_values=n_values,
                t_values=t_values,
                chunk_size=data.get("chunk_size", DEFAULT_CHUNK_SIZE),
                description=str(data.get("description", "")),
                pins=dict(pins_raw),
                path=path,
            )
        except ConfigurationError as exc:
            raise ConfigurationError(f"{where}: {exc}") from exc

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read campaign file {path}: {exc}"
            ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"campaign file {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data, path=path)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def save(self, path=None) -> Path:
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ConfigurationError(
                "this campaign has no path; pass one to save()"
            )
        path.write_text(self.to_json())
        return path

    # ---- planning summary --------------------------------------------

    def plan_summary(self) -> Dict[str, Any]:
        """Grid arithmetic without materializing a single scenario."""
        return {
            "campaign": self.name,
            "digest": self.digest(),
            "runs": self.total_runs,
            "chunks": self.total_chunks,
            "chunk_size": self.chunk_size,
            "cells": self.total_cells,
            "axes": {
                "protocols": self.protocol_axis,
                "adversaries": [
                    adversary_label(spec) for spec in self.adversary_axis
                ],
                "n": self.n_axis,
                "t": self.t_axis,
                "seeds": len(self.seeds),
            },
            "pinned": bool(self.pins),
        }


def load_campaign(path) -> CampaignSpec:
    """Load and validate one campaign spec file (JSON)."""
    return CampaignSpec.from_file(path)


__all__ = [
    "CAMPAIGN_FORMAT_VERSION",
    "DEFAULT_CHUNK_SIZE",
    "GRID_AXES",
    "CampaignChunk",
    "CampaignSpec",
    "adversary_label",
    "load_campaign",
]
