"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A protocol or engine was constructed with inconsistent parameters."""


class SimulationStalled(ReproError):
    """No process has a pending message or a scheduled wake-up, yet at
    least one live, unterminated process remains.

    A stall always indicates a protocol implementation bug (a process
    waiting for a message that can never arrive), never a legal execution:
    in the paper's model every live process either acts, waits for a
    concrete deadline, or has retired.
    """


class InvariantViolation(ReproError):
    """A protocol invariant that the paper proves was observed to fail.

    Raised only when the engine runs with ``strict_invariants=True``
    (the default in the test-suite); the canonical example is two
    simultaneously active processes in Protocols A, B or C.
    """


class BudgetExceeded(ReproError):
    """The simulation exceeded its configured ``max_rounds`` safety cap."""


class AdversaryError(ReproError):
    """An adversary issued an illegal directive (e.g. crashing more than
    ``t - 1`` processes when a survivor is required)."""


class ServerError(ReproError):
    """The run server misbehaved or is unreachable.

    Raised by :class:`repro.client.Client` for transport failures, 5xx
    responses and protocol violations.  Configuration mistakes (HTTP
    400) re-raise as :class:`ConfigurationError` with the server's
    message, so remote submission surfaces the same taxonomy as
    in-process :meth:`repro.api.Scenario.run`.
    """
