"""Versioned scenario suites: regression-pinned batteries of runs.

A *suite* is a versioned file (JSON, or TOML on Python 3.11+) holding a
named list of :class:`~repro.api.Scenario` / :class:`~repro.api.Sweep`
specs plus *regression pins* - the expected worst-case metrics per
entry.  Every run in this package is a deterministic function of its
serialized scenario, so pins are **exact**: ``suite check`` fails on any
drift, which turns the shipped ``scenarios/`` directory into a
regression-pinned catalog of every workload the repo covers (the same
role the paper's tables play for its theorems).

File format (see ``docs/suites.md`` for the full reference)::

    {
      "suite": "paper-battery",
      "version": 1,
      "description": "...",
      "entries": [
        {"name": "a-random", "scenario": {...Scenario dict...},
         "pins": {"work": 140, "messages": 44, "effort": 184}},
        {"name": "a-grid", "sweep": {...Sweep dict...},
         "pins": {"effort": 553}}
      ]
    }

Programmatic use::

    from repro.suites import load_suite

    report = load_suite("scenarios/paper_battery.json").run(workers=4)
    assert report.passed, report.failures()

CLI::

    python -m repro suite list
    python -m repro suite run scenarios/paper_battery.json --workers 4
    python -m repro suite check scenarios/*.json --out report.json

Pins compare against the entry's **worst-case** reduction (per-measure
maxima over the entry's runs - one run for a scenario entry, the whole
grid for a sweep entry), matching the paper's worst-case reading of its
bounds.  Parallel execution (``workers > 1``) flattens every entry's
runs into one pool and is bit-identical to serial execution
(:func:`repro.api.run_scenarios`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import ResultSet, Scenario, Sweep, run_scenarios
from repro.errors import ConfigurationError
from repro.sim.metrics import RunResult

#: The suite file format version this loader understands.
SUITE_FORMAT_VERSION = 1

#: Measures a pin may reference: the keys of the worst-case reduction.
PIN_MEASURES = ("work", "messages", "effort", "rounds", "redundant_work", "crashes")

_SUITE_FIELDS = {"suite", "version", "description", "entries"}
_ENTRY_FIELDS = {"name", "scenario", "sweep", "pins"}


# =====================================================================
# Suite model + loader
# =====================================================================


@dataclass(frozen=True)
class SuiteEntry:
    """One named workload of a suite: a scenario or a sweep, plus pins."""

    name: str
    scenario: Optional[Scenario] = None
    sweep: Optional[Sweep] = None
    pins: Dict[str, float] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return "scenario" if self.scenario is not None else "sweep"

    def scenarios(self) -> List[Scenario]:
        """The concrete runs this entry expands to, in deterministic order."""
        if self.scenario is not None:
            return [self.scenario]
        return list(self.sweep.scenarios())

    @classmethod
    def from_dict(cls, data: Any, *, where: str) -> "SuiteEntry":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - _ENTRY_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in {where}; accepted: "
                + ", ".join(sorted(_ENTRY_FIELDS))
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{where} needs a non-empty 'name' string")
        has_scenario = "scenario" in data
        has_sweep = "sweep" in data
        if has_scenario == has_sweep:
            raise ConfigurationError(
                f"{where} ({name!r}) must hold exactly one of 'scenario' or "
                "'sweep'"
            )
        pins_raw = data.get("pins", {})
        if not isinstance(pins_raw, dict):
            raise ConfigurationError(
                f"'pins' of {where} ({name!r}) must be a dict, got "
                f"{type(pins_raw).__name__}"
            )
        unknown_pins = set(pins_raw) - set(PIN_MEASURES)
        if unknown_pins:
            raise ConfigurationError(
                f"unknown pin measure(s) {sorted(unknown_pins)} in {where} "
                f"({name!r}); accepted: {', '.join(PIN_MEASURES)}"
            )
        pins: Dict[str, float] = {}
        for measure, value in pins_raw.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"pin {measure!r} of {where} ({name!r}) must be a number, "
                    f"got {value!r}"
                )
            pins[measure] = value
        try:
            if has_scenario:
                return cls(
                    name=name,
                    scenario=Scenario.from_dict(data["scenario"]),
                    pins=pins,
                )
            return cls(name=name, sweep=Sweep.from_dict(data["sweep"]), pins=pins)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{where} ({name!r}): {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
        else:
            data["sweep"] = self.sweep.to_dict()
        if self.pins:
            data["pins"] = {k: self.pins[k] for k in sorted(self.pins)}
        return data


@dataclass
class Suite:
    """A loaded, validated suite file."""

    name: str
    version: int
    entries: List[SuiteEntry]
    description: str = ""
    path: Optional[Path] = None

    @classmethod
    def from_dict(cls, data: Any, *, path: Optional[Path] = None) -> "Suite":
        where = f"suite file {path}" if path is not None else "suite dict"
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must hold a dict, got {type(data).__name__}"
            )
        unknown = set(data) - _SUITE_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in {where}; accepted: "
                + ", ".join(sorted(_SUITE_FIELDS))
            )
        missing = {"suite", "version", "entries"} - set(data)
        if missing:
            raise ConfigurationError(
                f"{where} requires field(s) {sorted(missing)}"
            )
        name = data["suite"]
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"'suite' of {where} must be a non-empty name")
        version = data["version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise ConfigurationError(
                f"'version' of {where} must be an integer, got {version!r}"
            )
        if version != SUITE_FORMAT_VERSION:
            raise ConfigurationError(
                f"{where} uses format version {version}, but this loader "
                f"understands version {SUITE_FORMAT_VERSION}"
            )
        raw_entries = data["entries"]
        if not isinstance(raw_entries, list) or not raw_entries:
            raise ConfigurationError(
                f"'entries' of {where} must be a non-empty list"
            )
        entries = [
            SuiteEntry.from_dict(item, where=f"entry {index} of {where}")
            for index, item in enumerate(raw_entries)
        ]
        seen: Dict[str, int] = {}
        for index, entry in enumerate(entries):
            if entry.name in seen:
                raise ConfigurationError(
                    f"duplicate entry name {entry.name!r} in {where} "
                    f"(entries {seen[entry.name]} and {index})"
                )
            seen[entry.name] = index
        return cls(
            name=name,
            version=version,
            entries=entries,
            description=str(data.get("description", "")),
            path=path,
        )

    @classmethod
    def from_file(cls, path) -> "Suite":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read suite file {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"suite file {path} is not valid JSON: {exc}"
                ) from exc
        elif suffix == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11
                raise ConfigurationError(
                    f"suite file {path} is TOML, which needs Python 3.11+ "
                    "(tomllib); use the JSON form on older interpreters"
                )
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(
                    f"suite file {path} is not valid TOML: {exc}"
                ) from exc
        else:
            raise ConfigurationError(
                f"suite file {path} must end in .json or .toml"
            )
        return cls.from_dict(data, path=path)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "suite": self.name,
            "version": self.version,
        }
        if self.description:
            data["description"] = self.description
        data["entries"] = [entry.to_dict() for entry in self.entries]
        return data

    def save(self, path=None) -> Path:
        """Write the suite back as canonical JSON (pins included)."""
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ConfigurationError("this suite has no path; pass one to save()")
        if path.suffix.lower() != ".json":
            raise ConfigurationError(
                f"suites are written back as JSON; cannot save to {path}"
            )
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # ---- execution ---------------------------------------------------

    def run(self, *, workers: Optional[int] = None) -> "SuiteReport":
        """Execute every entry and compare observations against pins.

        All entries' runs are flattened into one list so ``workers``
        parallelism spans the whole suite, then results are re-grouped
        per entry; metrics are bit-identical to a serial run.
        """
        per_entry: List[Tuple[SuiteEntry, List[Scenario]]] = [
            (entry, entry.scenarios()) for entry in self.entries
        ]
        flat = [scenario for _, scenarios in per_entry for scenario in scenarios]
        results = run_scenarios(flat, workers=workers)
        reports = []
        index = 0
        for entry, scenarios in per_entry:
            chunk = results[index : index + len(scenarios)]
            index += len(scenarios)
            reports.append(_report_entry(entry, scenarios, chunk))
        return SuiteReport(
            suite=self.name,
            version=self.version,
            entries=reports,
            workers=workers or 1,
        )


    def with_pins_from(self, report: "SuiteReport") -> "Suite":
        """A copy whose entries pin the report's observed worst-case rows.

        An entry with an explicit pin selection keeps it (only those
        measures are refreshed); an unpinned entry gains the full
        :data:`PIN_MEASURES` set.  Used by ``suite check --update-pins``
        to (re)baseline a suite."""
        observed = {entry.name: entry.observed for entry in report.entries}
        missing = [e.name for e in self.entries if e.name not in observed]
        if missing:
            raise ConfigurationError(
                f"report has no observation for entr{'y' if len(missing) == 1 else 'ies'} "
                f"{missing}; it was produced from a different suite"
            )
        entries = [
            dataclasses.replace(
                entry,
                pins={
                    measure: observed[entry.name][measure]
                    for measure in (sorted(entry.pins) if entry.pins else PIN_MEASURES)
                },
            )
            for entry in self.entries
        ]
        return dataclasses.replace(self, entries=entries)


def load_suite(path) -> Suite:
    """Load and validate one suite file (JSON or TOML)."""
    return Suite.from_file(path)


def discover_suites(directory="scenarios") -> List[Path]:
    """Suite files shipped in ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.suffix.lower() in (".json", ".toml")
    )


# =====================================================================
# Reports
# =====================================================================


def _report_entry(
    entry: SuiteEntry, scenarios: Sequence[Scenario], results: Sequence[RunResult]
) -> "EntryReport":
    result_set = ResultSet(list(zip(scenarios, results)))
    return EntryReport(
        name=entry.name,
        kind=entry.kind,
        runs=len(result_set),
        observed=result_set.worst(),
        pins=dict(entry.pins),
        all_completed=result_set.all_completed,
    )


@dataclass(frozen=True)
class EntryReport:
    """Observed worst-case metrics of one entry, diffed against its pins."""

    name: str
    kind: str
    runs: int
    observed: Dict[str, float]
    pins: Dict[str, float]
    all_completed: bool

    def failures(self) -> List[str]:
        messages = []
        if not self.all_completed:
            messages.append("not every run completed its work")
        for measure in sorted(self.pins):
            pinned = self.pins[measure]
            got = self.observed[measure]
            if got != pinned:
                messages.append(
                    f"{measure}: observed {got!r} != pinned {pinned!r}"
                )
        return messages

    @property
    def passed(self) -> bool:
        return not self.failures()

    @property
    def pinned(self) -> bool:
        return bool(self.pins)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "runs": self.runs,
            "observed": dict(self.observed),
            "pins": dict(self.pins),
            "all_completed": self.all_completed,
            "failures": self.failures(),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class SuiteReport:
    """Outcome of one suite run: per-entry observations + pin verdicts."""

    suite: str
    version: int
    entries: List[EntryReport]
    workers: int = 1

    @property
    def passed(self) -> bool:
        return all(entry.passed for entry in self.entries)

    @property
    def total_runs(self) -> int:
        return sum(entry.runs for entry in self.entries)

    def failures(self) -> List[str]:
        return [
            f"{self.suite}/{entry.name}: {message}"
            for entry in self.entries
            for message in entry.failures()
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "version": self.version,
            "workers": self.workers,
            "total_runs": self.total_runs,
            "passed": self.passed,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"

    def repinned(self, suite: Suite) -> "SuiteReport":
        """The same observations diffed against ``suite``'s (possibly
        rewritten) pins — what ``--update-pins`` emits so its report
        reflects the pins that now exist, not the ones it replaced."""
        by_name = {entry.name: entry for entry in suite.entries}
        return dataclasses.replace(
            self,
            entries=[
                dataclasses.replace(entry, pins=dict(by_name[entry.name].pins))
                if entry.name in by_name
                else entry
                for entry in self.entries
            ],
        )

    def table(self) -> str:
        from repro.analysis.tables import render_table

        rows = []
        for entry in self.entries:
            observed = entry.observed
            rows.append(
                [
                    entry.name,
                    entry.kind,
                    entry.runs,
                    observed["work"],
                    observed["messages"],
                    observed["effort"],
                    float(observed["rounds"]),
                    "ok" if entry.passed else "FAIL",
                    "-" if not entry.pinned else "exact",
                ]
            )
        return render_table(
            [
                "entry",
                "kind",
                "runs",
                "work",
                "messages",
                "effort",
                "rounds",
                "status",
                "pins",
            ],
            rows,
            title=f"suite {self.suite!r} (v{self.version}, {self.total_runs} runs)",
        )


__all__ = [
    "PIN_MEASURES",
    "SUITE_FORMAT_VERSION",
    "EntryReport",
    "Suite",
    "SuiteEntry",
    "SuiteReport",
    "discover_suites",
    "load_suite",
]
