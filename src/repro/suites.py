"""Versioned scenario suites: regression-pinned batteries of runs.

A *suite* is a versioned file (JSON, or TOML on Python 3.11+) holding a
named list of :class:`~repro.api.Scenario` / :class:`~repro.api.Sweep`
specs plus *regression pins* - the expected worst-case metrics per
entry.  Every run in this package is a deterministic function of its
serialized scenario, so pins are **exact**: ``suite check`` fails on any
drift, which turns the shipped ``scenarios/`` directory into a
regression-pinned catalog of every workload the repo covers (the same
role the paper's tables play for its theorems).

File format (see ``docs/suites.md`` for the full reference)::

    {
      "suite": "paper-battery",
      "version": 1,
      "description": "...",
      "entries": [
        {"name": "a-random", "scenario": {...Scenario dict...},
         "pins": {"work": 140, "messages": 44, "effort": 184}},
        {"name": "a-grid", "sweep": {...Sweep dict...},
         "workers": 4,
         "pins": {"effort": 553}}
      ]
    }

An entry's optional ``workers`` hint overrides the suite-level pool
size for that entry (the loader validates it, the executor honors it);
metrics stay bit-identical at any worker count, so hints only trade
wall clock.  Every entry report carries a wall-clock ``seconds``
column - informational, never pinned or diffed for regressions.

Programmatic use::

    from repro.suites import load_suite

    report = load_suite("scenarios/paper_battery.json").run(workers=4)
    assert report.passed, report.failures()

CLI::

    python -m repro suite list
    python -m repro suite run scenarios/paper_battery.json --workers 4
    python -m repro suite check scenarios/*.json --out report.json

Pins compare against the entry's **worst-case** reduction (per-measure
maxima over the entry's runs - one run for a scenario entry, the whole
grid for a sweep entry), matching the paper's worst-case reading of its
bounds.  Parallel execution (``workers > 1``) pools *within* each
entry: every entry runs as its own :func:`repro.api.run_scenarios`
batch (which is what makes per-entry ``workers`` hints and the
``seconds`` column well defined), so the suite-level worker count
speeds up multi-run (sweep) entries while single-scenario entries
always run in-process.  Metrics are bit-identical to serial execution
at any worker count.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.api import ResultSet, Scenario, Sweep, run_scenarios
from repro.errors import ConfigurationError
from repro.sim.metrics import RunResult

#: The suite file format version this loader understands.
SUITE_FORMAT_VERSION = 1

#: Measures a pin may reference: the keys of the worst-case reduction.
PIN_MEASURES = ("work", "messages", "effort", "rounds", "redundant_work", "crashes")

_SUITE_FIELDS = {"suite", "version", "description", "entries"}
_ENTRY_FIELDS = {"name", "scenario", "sweep", "pins", "workers"}


# =====================================================================
# Suite model + loader
# =====================================================================


@dataclass(frozen=True)
class SuiteEntry:
    """One named workload of a suite: a scenario or a sweep, plus pins.

    ``workers`` is an optional per-entry pool-size hint: when set it
    overrides the suite-level ``workers`` argument for this entry's
    runs (metrics are bit-identical either way).
    """

    name: str
    scenario: Optional[Scenario] = None
    sweep: Optional[Sweep] = None
    pins: Dict[str, float] = field(default_factory=dict)
    workers: Optional[int] = None

    @property
    def kind(self) -> str:
        return "scenario" if self.scenario is not None else "sweep"

    def scenarios(self) -> List[Scenario]:
        """The concrete runs this entry expands to, in deterministic order."""
        if self.scenario is not None:
            return [self.scenario]
        return list(self.sweep.scenarios())

    @classmethod
    def from_dict(cls, data: Any, *, where: str) -> "SuiteEntry":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - _ENTRY_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in {where}; accepted: "
                + ", ".join(sorted(_ENTRY_FIELDS))
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{where} needs a non-empty 'name' string")
        has_scenario = "scenario" in data
        has_sweep = "sweep" in data
        if has_scenario == has_sweep:
            raise ConfigurationError(
                f"{where} ({name!r}) must hold exactly one of 'scenario' or "
                "'sweep'"
            )
        pins_raw = data.get("pins", {})
        if not isinstance(pins_raw, dict):
            raise ConfigurationError(
                f"'pins' of {where} ({name!r}) must be a dict, got "
                f"{type(pins_raw).__name__}"
            )
        unknown_pins = set(pins_raw) - set(PIN_MEASURES)
        if unknown_pins:
            raise ConfigurationError(
                f"unknown pin measure(s) {sorted(unknown_pins)} in {where} "
                f"({name!r}); accepted: {', '.join(PIN_MEASURES)}"
            )
        pins: Dict[str, float] = {}
        for measure, value in pins_raw.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"pin {measure!r} of {where} ({name!r}) must be a number, "
                    f"got {value!r}"
                )
            pins[measure] = value
        workers = data.get("workers")
        if workers is not None:
            if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
                raise ConfigurationError(
                    f"'workers' of {where} ({name!r}) must be a positive "
                    f"integer, got {workers!r}"
                )
        try:
            if has_scenario:
                return cls(
                    name=name,
                    scenario=Scenario.from_dict(data["scenario"]),
                    pins=pins,
                    workers=workers,
                )
            return cls(
                name=name,
                sweep=Sweep.from_dict(data["sweep"]),
                pins=pins,
                workers=workers,
            )
        except ConfigurationError as exc:
            raise ConfigurationError(f"{where} ({name!r}): {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
        else:
            data["sweep"] = self.sweep.to_dict()
        if self.workers is not None:
            data["workers"] = self.workers
        if self.pins:
            data["pins"] = {k: self.pins[k] for k in sorted(self.pins)}
        return data


@dataclass
class Suite:
    """A loaded, validated suite file."""

    name: str
    version: int
    entries: List[SuiteEntry]
    description: str = ""
    path: Optional[Path] = None

    @classmethod
    def from_dict(cls, data: Any, *, path: Optional[Path] = None) -> "Suite":
        where = f"suite file {path}" if path is not None else "suite dict"
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must hold a dict, got {type(data).__name__}"
            )
        unknown = set(data) - _SUITE_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {sorted(unknown)} in {where}; accepted: "
                + ", ".join(sorted(_SUITE_FIELDS))
            )
        missing = {"suite", "version", "entries"} - set(data)
        if missing:
            raise ConfigurationError(
                f"{where} requires field(s) {sorted(missing)}"
            )
        name = data["suite"]
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"'suite' of {where} must be a non-empty name")
        version = data["version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise ConfigurationError(
                f"'version' of {where} must be an integer, got {version!r}"
            )
        if version != SUITE_FORMAT_VERSION:
            raise ConfigurationError(
                f"{where} uses format version {version}, but this loader "
                f"understands version {SUITE_FORMAT_VERSION}"
            )
        raw_entries = data["entries"]
        if not isinstance(raw_entries, list) or not raw_entries:
            raise ConfigurationError(
                f"'entries' of {where} must be a non-empty list"
            )
        entries = [
            SuiteEntry.from_dict(item, where=f"entry {index} of {where}")
            for index, item in enumerate(raw_entries)
        ]
        seen: Dict[str, int] = {}
        for index, entry in enumerate(entries):
            if entry.name in seen:
                raise ConfigurationError(
                    f"duplicate entry name {entry.name!r} in {where} "
                    f"(entries {seen[entry.name]} and {index})"
                )
            seen[entry.name] = index
        return cls(
            name=name,
            version=version,
            entries=entries,
            description=str(data.get("description", "")),
            path=path,
        )

    @classmethod
    def from_file(cls, path) -> "Suite":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read suite file {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"suite file {path} is not valid JSON: {exc}"
                ) from exc
        elif suffix == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11
                raise ConfigurationError(
                    f"suite file {path} is TOML, which needs Python 3.11+ "
                    "(tomllib); use the JSON form on older interpreters"
                )
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(
                    f"suite file {path} is not valid TOML: {exc}"
                ) from exc
        else:
            raise ConfigurationError(
                f"suite file {path} must end in .json or .toml"
            )
        return cls.from_dict(data, path=path)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "suite": self.name,
            "version": self.version,
        }
        if self.description:
            data["description"] = self.description
        data["entries"] = [entry.to_dict() for entry in self.entries]
        return data

    def save(self, path=None) -> Path:
        """Write the suite back as canonical JSON (pins included)."""
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ConfigurationError("this suite has no path; pass one to save()")
        if path.suffix.lower() != ".json":
            raise ConfigurationError(
                f"suites are written back as JSON; cannot save to {path}"
            )
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # ---- execution ---------------------------------------------------

    def run(self, *, workers: Optional[int] = None, cache=None) -> "SuiteReport":
        """Execute every entry and compare observations against pins.

        Entries execute in order, each through its own
        :func:`repro.api.run_scenarios` call - which is what makes the
        per-entry ``workers`` hint (overriding the suite-level value)
        and the per-entry wall-clock ``seconds`` column well defined.
        Metrics are bit-identical at any worker count; only wall clock
        varies.

        ``cache`` (a :class:`repro.cache.ResultCache`) memoizes runs by
        :meth:`~repro.api.Scenario.cache_key` across entries and across
        repeated suite runs; determinism makes hits exact, so reports
        and pin verdicts are bit-identical with or without it.
        """
        reports = []
        for entry in self.entries:
            scenarios = entry.scenarios()
            entry_workers = entry.workers if entry.workers is not None else workers
            start = time.perf_counter()
            results = run_scenarios(scenarios, workers=entry_workers, cache=cache)
            seconds = time.perf_counter() - start
            reports.append(_report_entry(entry, scenarios, results, seconds))
        return SuiteReport(
            suite=self.name,
            version=self.version,
            entries=reports,
            workers=workers or 1,
        )


    def with_pins_from(self, report: "SuiteReport") -> "Suite":
        """A copy whose entries pin the report's observed worst-case rows.

        An entry with an explicit pin selection keeps it (only those
        measures are refreshed); an unpinned entry gains the full
        :data:`PIN_MEASURES` set.  Used by ``suite check --update-pins``
        to (re)baseline a suite."""
        observed = {entry.name: entry.observed for entry in report.entries}
        missing = [e.name for e in self.entries if e.name not in observed]
        if missing:
            raise ConfigurationError(
                f"report has no observation for entr{'y' if len(missing) == 1 else 'ies'} "
                f"{missing}; it was produced from a different suite"
            )
        entries = [
            dataclasses.replace(
                entry,
                pins={
                    measure: observed[entry.name][measure]
                    for measure in (sorted(entry.pins) if entry.pins else PIN_MEASURES)
                },
            )
            for entry in self.entries
        ]
        return dataclasses.replace(self, entries=entries)


def load_suite(path) -> Suite:
    """Load and validate one suite file (JSON or TOML)."""
    return Suite.from_file(path)


def discover_suites(directory="scenarios") -> List[Path]:
    """Suite files shipped in ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.suffix.lower() in (".json", ".toml")
    )


# =====================================================================
# Reports
# =====================================================================


def _report_entry(
    entry: SuiteEntry,
    scenarios: Sequence[Scenario],
    results: Sequence[RunResult],
    seconds: float = 0.0,
) -> "EntryReport":
    result_set = ResultSet(list(zip(scenarios, results)))
    return EntryReport(
        name=entry.name,
        kind=entry.kind,
        runs=len(result_set),
        observed=result_set.worst(),
        pins=dict(entry.pins),
        all_completed=result_set.all_completed,
        seconds=seconds,
    )


@dataclass(frozen=True)
class EntryReport:
    """Observed worst-case metrics of one entry, diffed against its pins.

    ``seconds`` is the entry's wall clock - informational only: it is
    never pinned, and ``suite diff`` excludes it from regression
    verdicts (timings are machine noise, metrics are exact).
    """

    name: str
    kind: str
    runs: int
    observed: Dict[str, float]
    pins: Dict[str, float]
    all_completed: bool
    seconds: float = 0.0

    def failures(self) -> List[str]:
        messages = []
        if not self.all_completed:
            messages.append("not every run completed its work")
        for measure in sorted(self.pins):
            pinned = self.pins[measure]
            got = self.observed[measure]
            if got != pinned:
                messages.append(
                    f"{measure}: observed {got!r} != pinned {pinned!r}"
                )
        return messages

    @property
    def passed(self) -> bool:
        return not self.failures()

    @property
    def pinned(self) -> bool:
        return bool(self.pins)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "runs": self.runs,
            "observed": dict(self.observed),
            "pins": dict(self.pins),
            "all_completed": self.all_completed,
            "seconds": round(self.seconds, 6),
            "failures": self.failures(),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class SuiteReport:
    """Outcome of one suite run: per-entry observations + pin verdicts."""

    suite: str
    version: int
    entries: List[EntryReport]
    workers: int = 1

    @property
    def passed(self) -> bool:
        return all(entry.passed for entry in self.entries)

    @property
    def total_runs(self) -> int:
        return sum(entry.runs for entry in self.entries)

    def failures(self) -> List[str]:
        return [
            f"{self.suite}/{entry.name}: {message}"
            for entry in self.entries
            for message in entry.failures()
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "version": self.version,
            "workers": self.workers,
            "total_runs": self.total_runs,
            "passed": self.passed,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"

    def repinned(self, suite: Suite) -> "SuiteReport":
        """The same observations diffed against ``suite``'s (possibly
        rewritten) pins — what ``--update-pins`` emits so its report
        reflects the pins that now exist, not the ones it replaced."""
        by_name = {entry.name: entry for entry in suite.entries}
        return dataclasses.replace(
            self,
            entries=[
                dataclasses.replace(entry, pins=dict(by_name[entry.name].pins))
                if entry.name in by_name
                else entry
                for entry in self.entries
            ],
        )

    def table(self) -> str:
        from repro.analysis.tables import render_table

        rows = []
        for entry in self.entries:
            observed = entry.observed
            rows.append(
                [
                    entry.name,
                    entry.kind,
                    entry.runs,
                    observed["work"],
                    observed["messages"],
                    observed["effort"],
                    float(observed["rounds"]),
                    f"{entry.seconds:.3f}",
                    "ok" if entry.passed else "FAIL",
                    "-" if not entry.pinned else "exact",
                ]
            )
        return render_table(
            [
                "entry",
                "kind",
                "runs",
                "work",
                "messages",
                "effort",
                "rounds",
                "seconds",
                "status",
                "pins",
            ],
            rows,
            title=f"suite {self.suite!r} (v{self.version}, {self.total_runs} runs)",
        )


# =====================================================================
# Report diffing (the ``suite diff`` verb)
# =====================================================================
#
# ``suite run --out report.json`` / ``suite check --out`` write a list
# of :meth:`SuiteReport.as_dict` payloads.  ``suite diff OLD NEW``
# compares two such artifacts - typically produced at two commits - and
# reports per-entry metric deltas.  A *regression* is:
#
# * a pinnable measure (:data:`PIN_MEASURES`) that increased,
# * an entry (or whole suite) present in OLD but missing from NEW,
# * an entry whose runs completed in OLD but not in NEW.
#
# Wall-clock ``seconds`` deltas are reported but never count as
# regressions (timings are machine noise; metrics are exact).


@dataclass(frozen=True)
class MeasureDelta:
    """One measure of one entry, compared across two report artifacts."""

    suite: str
    entry: str
    measure: str
    old: float
    new: float

    @property
    def delta(self) -> float:
        return self.new - self.old

    @property
    def regressed(self) -> bool:
        # Every pinnable measure is a cost: more work, more messages,
        # more rounds, more redundancy is always worse.
        return self.new > self.old

    def describe(self) -> str:
        pct = (
            f", {self.delta / self.old:+.1%}" if self.old else ""
        )
        return (
            f"{self.suite}/{self.entry}: {self.measure} "
            f"{self.old!r} -> {self.new!r} ({self.delta:+g}{pct})"
        )


@dataclass(frozen=True)
class SuiteDiff:
    """Outcome of diffing two suite-report artifacts."""

    deltas: List[MeasureDelta]       # changed measures only
    seconds: List[MeasureDelta]      # wall-clock deltas (informational)
    structural: List[str]            # missing suites/entries, completion flips
    informational: List[str]         # entries/suites only present in NEW

    def regressions(self) -> List[str]:
        return [d.describe() for d in self.deltas if d.regressed] + list(
            self.structural
        )

    @property
    def passed(self) -> bool:
        return not self.regressions()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "regressions": self.regressions(),
            "deltas": [
                {
                    "suite": d.suite,
                    "entry": d.entry,
                    "measure": d.measure,
                    "old": d.old,
                    "new": d.new,
                    "delta": d.delta,
                    "regressed": d.regressed,
                }
                for d in self.deltas
            ],
            "seconds": [
                {"suite": d.suite, "entry": d.entry, "old": d.old, "new": d.new}
                for d in self.seconds
            ],
            "structural": list(self.structural),
            "informational": list(self.informational),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"

    def table(self) -> str:
        from repro.analysis.tables import render_table

        if not self.deltas and not self.structural:
            return "no metric changes between the two reports"
        rows = [
            [
                d.suite,
                d.entry,
                d.measure,
                d.old,
                d.new,
                f"{d.delta:+g}",
                "REGRESSED" if d.regressed else "improved",
            ]
            for d in self.deltas
        ]
        table = render_table(
            ["suite", "entry", "measure", "old", "new", "delta", "verdict"],
            rows,
            title="suite report diff (changed measures)",
        )
        if self.structural:
            table += "\n" + "\n".join(f"REGRESSED {note}" for note in self.structural)
        return table


def _index_report_payload(payload: Any, *, where: str) -> Dict[str, Dict[str, Any]]:
    """``{suite name: {entry name: entry dict}}`` from a report artifact."""
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"{where} must hold a suite-report list (what "
            "'suite run --out' / 'suite check --out' write), got "
            f"{type(payload).__name__}"
        )
    suites: Dict[str, Dict[str, Any]] = {}
    for index, report in enumerate(payload):
        if not isinstance(report, dict) or "suite" not in report:
            raise ConfigurationError(
                f"report {index} of {where} is not a suite report "
                "(missing the 'suite' field)"
            )
        entries = report.get("entries")
        if not isinstance(entries, list):
            raise ConfigurationError(
                f"report {index} of {where} has no 'entries' list"
            )
        by_name: Dict[str, Any] = {}
        for entry in entries:
            if not isinstance(entry, dict) or "name" not in entry:
                raise ConfigurationError(
                    f"report {index} of {where} holds a malformed entry "
                    "(each needs a 'name')"
                )
            by_name[entry["name"]] = entry
        suites[report["suite"]] = by_name
    return suites


def diff_reports(
    old_payload: Any,
    new_payload: Any,
    *,
    old_label: str = "OLD",
    new_label: str = "NEW",
) -> SuiteDiff:
    """Compare two report artifacts; see the module notes on what counts
    as a regression."""
    old_suites = _index_report_payload(old_payload, where=old_label)
    new_suites = _index_report_payload(new_payload, where=new_label)
    deltas: List[MeasureDelta] = []
    seconds: List[MeasureDelta] = []
    structural: List[str] = []
    informational: List[str] = []
    for suite_name, old_entries in old_suites.items():
        new_entries = new_suites.get(suite_name)
        if new_entries is None:
            structural.append(f"{suite_name}: suite missing from {new_label}")
            continue
        for entry_name, old_entry in old_entries.items():
            new_entry = new_entries.get(entry_name)
            if new_entry is None:
                structural.append(
                    f"{suite_name}/{entry_name}: entry missing from {new_label}"
                )
                continue
            if old_entry.get("all_completed", True) and not new_entry.get(
                "all_completed", True
            ):
                structural.append(
                    f"{suite_name}/{entry_name}: runs completed in "
                    f"{old_label} but not in {new_label}"
                )
            old_observed = old_entry.get("observed", {})
            new_observed = new_entry.get("observed", {})
            for measure in PIN_MEASURES:
                if measure not in old_observed or measure not in new_observed:
                    continue
                old_value = old_observed[measure]
                new_value = new_observed[measure]
                if new_value != old_value:
                    deltas.append(
                        MeasureDelta(
                            suite_name, entry_name, measure, old_value, new_value
                        )
                    )
            if "seconds" in old_entry and "seconds" in new_entry:
                if new_entry["seconds"] != old_entry["seconds"]:
                    seconds.append(
                        MeasureDelta(
                            suite_name,
                            entry_name,
                            "seconds",
                            old_entry["seconds"],
                            new_entry["seconds"],
                        )
                    )
        for entry_name in new_entries:
            if entry_name not in old_entries:
                informational.append(
                    f"{suite_name}/{entry_name}: new entry (no baseline)"
                )
    for suite_name in new_suites:
        if suite_name not in old_suites:
            informational.append(f"{suite_name}: new suite (no baseline)")
    return SuiteDiff(
        deltas=deltas,
        seconds=seconds,
        structural=structural,
        informational=informational,
    )


__all__ = [
    "PIN_MEASURES",
    "SUITE_FORMAT_VERSION",
    "EntryReport",
    "MeasureDelta",
    "Suite",
    "SuiteDiff",
    "SuiteEntry",
    "SuiteReport",
    "diff_reports",
    "discover_suites",
    "load_suite",
]
