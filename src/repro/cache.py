"""Content-addressed result cache: one run per distinct scenario.

Every run in this package is a deterministic function of its scenario's
canonical dict, so a cache keyed by :meth:`repro.api.Scenario.cache_key`
(SHA-256 of that dict) gives **exact** hits: a cached result is
bit-identical to re-running the scenario.  That is what makes a
long-lived run service cheap - a million identical-config requests cost
one execution (see ``docs/serve.md``).

:class:`ResultCache` is an in-memory LRU with optional append-only JSONL
persistence:

* ``get(key)`` / ``put(key, result)`` rehydrate/serialize through the
  lossless :meth:`~repro.sim.metrics.RunResult.to_dict` (``full=True``)
  form, so hits return fresh :class:`~repro.sim.metrics.RunResult`
  objects equal to what a direct run produced.  The ``config`` echo is
  deliberately stripped before storing: it names the *submitting*
  scenario, not the content address, and callers re-attach their own
  (see :func:`repro.api.run_scenarios`).
* ``hits`` / ``misses`` / ``stores`` / ``evictions`` counters are the
  observable proof of single-execution semantics - the server surfaces
  them in every response and the CI serve-smoke job asserts a repeat
  submission is 100% hits.
* With ``path=...`` every store appends one ``{"key", "result",
  "crc"}`` JSON line (``crc`` is the CRC32 of the canonical
  ``{"key", "result"}`` encoding); a new cache constructed on the same
  path replays the journal (last write wins), so a restarted server
  keeps its memo.  The journal is append-only: in-memory LRU evictions
  do not rewrite it, which makes persistence crash-safe at the cost of
  the file being a superset of memory.  :meth:`ResultCache.compact`
  (CLI: ``repro cache compact``) rewrites the journal to live entries
  only - atomically, via a temp file - when campaign-scale churn makes
  that superset bloat.

Degradation contract (see ``docs/chaos.md``): a journal line that does
not parse, has the wrong shape, or fails its checksum is **skipped and
counted** on replay (``journal_corrupt``) rather than poisoning the
whole cache; pre-CRC lines without a ``crc`` field still load
(``journal_unchecksummed``); a failed append (``OSError``) is counted
(``journal_errors``) and the in-memory entry stays live, so a sick disk
degrades persistence, never correctness.  :func:`verify_journal` (CLI:
``repro cache verify``) audits a journal offline and reports
live/stale/corrupt/unchecksummed line counts.

Thread-safe; the run server shares one instance across its request and
worker threads.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.metrics import RunResult


def journal_crc(key: str, payload: Dict[str, Any]) -> int:
    """CRC32 checksum of one journal record's canonical encoding."""
    body = json.dumps({"key": key, "result": payload}, sort_keys=True)
    return zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF


def _classify_line(line: str):
    """``(status, key, payload)`` for one journal line; status is
    ``"ok"``, ``"unchecksummed"`` or ``"corrupt"``."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return "corrupt", None, None
    if (
        not isinstance(record, dict)
        or not isinstance(record.get("key"), str)
        or not isinstance(record.get("result"), dict)
        or set(record) - {"key", "result", "crc"}
    ):
        return "corrupt", None, None
    key, payload = record["key"], record["result"]
    if "crc" not in record:
        return "unchecksummed", key, payload
    if record["crc"] != journal_crc(key, payload):
        return "corrupt", None, None
    return "ok", key, payload


class ResultCache:
    """LRU memo of completed runs, keyed by scenario content address."""

    def __init__(self, max_entries: Optional[int] = None, path=None, *, chaos=None):
        if max_entries is not None and (
            isinstance(max_entries, bool)
            or not isinstance(max_entries, int)
            or max_entries < 1
        ):
            raise ConfigurationError(
                f"cache max_entries must be a positive integer or None, "
                f"got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.journal_corrupt = 0        # lines skipped on replay
        self.journal_unchecksummed = 0  # pre-CRC lines accepted on replay
        self.journal_errors = 0         # appends that failed (OSError)
        self._chaos = chaos  # a repro.chaos.ChaosInjector, or None
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._replay_journal()

    # ---- persistence -------------------------------------------------

    def _replay_journal(self) -> None:
        # Corrupt lines (torn writes, bit rot, checksum mismatches) are
        # skipped and counted, never fatal: one bad line must not turn a
        # million-entry memo into a ConfigurationError at startup.
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            status, key, payload = _classify_line(line)
            if status == "corrupt":
                self.journal_corrupt += 1
                continue
            if status == "unchecksummed":
                self.journal_unchecksummed += 1
            self._insert(key, payload)

    def _append_journal(self, key: str, payload: Dict[str, Any]) -> None:
        if self.path is None:
            return
        record = {"key": key, "result": payload}
        record["crc"] = journal_crc(key, payload)
        line = json.dumps(record, sort_keys=True) + "\n"
        mode = self._chaos.fire("journal_write", key) if self._chaos else None
        try:
            with self.path.open("a") as handle:
                if mode == "torn":
                    handle.write(line[: max(1, len(line) // 2)])
                elif mode == "partial":
                    handle.write(line[: max(1, len(line) // 3)] + "\n")
                elif mode == "fail":
                    raise OSError("chaos: injected journal write failure")
                else:
                    handle.write(line)
        except OSError:
            # Persistence degrades, correctness does not: the in-memory
            # entry stays live and the failure is observable in stats().
            self.journal_errors += 1

    # ---- core map ----------------------------------------------------

    def _insert(self, key: str, payload: Dict[str, Any]) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key`` as a fresh :class:`RunResult`
        (``config`` is ``None`` - attach the requester's echo), or
        ``None``.  Counts one hit or miss."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return RunResult.from_dict(payload)

    def get_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but returns the stored wire dict (treat it
        as read-only); this is what the server serializes back out
        without a rehydrate/re-serialize round-trip."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored wire dict without touching counters or LRU order
        (the ``GET /results/<key>`` endpoint, stats tooling)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, result: RunResult) -> Dict[str, Any]:
        """Store ``result`` under ``key`` and return the stored payload
        (lossless form, ``config`` stripped)."""
        if not isinstance(key, str) or not key:
            raise ConfigurationError(
                f"cache keys are Scenario.cache_key() strings, got {key!r}"
            )
        payload = result.to_dict(full=True)
        payload.pop("config", None)
        with self._lock:
            self._insert(key, payload)
            self.stores += 1
            self._append_journal(key, payload)
        return payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop the in-memory entries (the journal, if any, is kept)."""
        with self._lock:
            self._entries.clear()

    def compact(self) -> Dict[str, int]:
        """Rewrite the journal to the live entries only.

        The journal is append-only: re-stores of a key and entries since
        evicted from the LRU accumulate as dead lines (a large campaign
        makes that bloat real).  Compaction writes the current in-memory
        entries - one line per live key, LRU order - to a sibling temp
        file and atomically replaces the journal, so a crash mid-compact
        leaves the old journal intact.  Returns before/after line and
        byte counts.  Requires a journal-backed cache.
        """
        with self._lock:
            if self.path is None:
                raise ConfigurationError(
                    "this cache has no journal to compact; construct it "
                    "with path=..."
                )
            lines_before = 0
            bytes_before = 0
            if self.path.exists():
                text = self.path.read_text()
                bytes_before = len(text.encode("utf-8"))
                lines_before = sum(1 for line in text.splitlines() if line.strip())
            tmp = self.path.with_name(self.path.name + ".compact")
            with tmp.open("w") as handle:
                for key, payload in self._entries.items():
                    record = {"key": key, "result": payload}
                    record["crc"] = journal_crc(key, payload)
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            bytes_after = tmp.stat().st_size
            tmp.replace(self.path)
            return {
                "entries": len(self._entries),
                "lines_before": lines_before,
                "lines_after": len(self._entries),
                "bytes_before": bytes_before,
                "bytes_after": bytes_after,
            }

    # ---- observability -----------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: the proof that duplicates cost one run."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "journal_corrupt": self.journal_corrupt,
                "journal_unchecksummed": self.journal_unchecksummed,
                "journal_errors": self.journal_errors,
                "path": str(self.path) if self.path is not None else None,
            }


def verify_journal(path) -> Dict[str, Any]:
    """Audit one cache journal without loading it into a cache.

    Walks every line and reports::

        {"path": ..., "lines": N, "live": a, "stale": b,
         "corrupt": c, "unchecksummed": d, "ok": c == 0}

    ``live`` counts lines that are the *last* valid occurrence of their
    key (what a replay would keep), ``stale`` counts valid lines
    superseded by a later write of the same key, ``corrupt`` counts
    unparsable / wrong-shape / checksum-failing lines, and
    ``unchecksummed`` counts valid pre-CRC lines (a subset of
    live+stale).  The CLI verb ``repro cache verify`` prints this and
    exits 1 when ``corrupt > 0``.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"cache journal {path} does not exist")
    lines = 0
    corrupt = 0
    unchecksummed = 0
    valid = 0
    last_for_key: Dict[str, int] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        lines += 1
        status, key, _ = _classify_line(line)
        if status == "corrupt":
            corrupt += 1
            continue
        if status == "unchecksummed":
            unchecksummed += 1
        valid += 1
        last_for_key[key] = valid  # later valid line supersedes
    live = len(last_for_key)
    return {
        "path": str(path),
        "lines": lines,
        "live": live,
        "stale": valid - live,
        "corrupt": corrupt,
        "unchecksummed": unchecksummed,
        "ok": corrupt == 0,
    }


__all__ = ["ResultCache", "journal_crc", "verify_journal"]
