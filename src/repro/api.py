"""The unified, declarative scenario API.

One :class:`Scenario` object captures everything that defines a run -
protocol, engine kind, workload shape, adversary spec, delay model,
seed, limits, strictness - and is fully serializable, so the same
scenario is addressable in memory, as JSON, and from the CLI::

    from repro.api import Scenario

    scenario = Scenario(
        protocol="B", n=256, t=16,
        adversary="random:8,max_action_index=25", seed=7,
    )
    result = scenario.run()                      # RunResult, config echoed
    text = scenario.to_json()                    # share / store / version it
    again = Scenario.from_json(text).run()       # byte-identical accounting

Asynchronous runs are the same object with ``engine="async"`` (or just
an async-registered protocol such as ``A-async``), plus the async-only
knobs: a ``delay`` model spec, scheduled ``crash_times``, and the
failure-detector window::

    Scenario(protocol="A-async", n=200, t=25,
             delay="uniform:0.5,6.0", crash_times={0: 5.0}, seed=2).run()

:class:`Sweep` fans one scenario out over seeds x adversary specs (and
optionally protocols) and aggregates the executions in a
:class:`ResultSet` with the paper's worst-case reducer (its theorems are
worst-case statements) plus a mean reducer, markdown tables and JSON
export.  ``Sweep.run(workers=4)`` executes the grid on a multiprocessing
pool - scenarios are plain data, so grid points ship to workers as dicts
and the metrics are bit-identical to a serial run (see
:func:`run_scenarios`).

``repro.run_protocol`` remains the stable synchronous shorthand; this
module is a superset of it, not a replacement.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import multiprocessing
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core import registry
from repro.errors import ConfigurationError
from repro.sim.adversary import (
    Adversary,
    AdversarySpec,
    adversary_from_spec,
    normalize_adversary_spec,
)
from repro.sim.async_engine import (
    AsyncEngine,
    DelaySpec,
    delay_model_from_spec,
    normalize_delay_spec,
)
from repro.sim.congestion import (
    CongestionSpec,
    congestion_from_spec,
    normalize_congestion_spec,
)
from repro.sim.columnar import FASTPATH_CHOICES
from repro.sim.engine import Engine
from repro.sim.failure_detector import FailureDetector
from repro.sim.specs import normalize_schedule_spec
from repro.sim.metrics import RunResult
from repro.work.tracker import WorkTracker

ENGINE_CHOICES = ("auto", "sync", "async")

DEFAULT_MAX_STEPS = 5_000_000
DEFAULT_MAX_EVENTS = 2_000_000

_FD_FIELDS = ("min_delay", "max_delay")


@dataclass
class Scenario:
    """Declarative description of one simulation run.

    Attributes:
        protocol: registered protocol name (case-insensitive; see
            :func:`repro.core.registry.available_protocols`).
        n: number of work units.
        t: number of processes.
        engine: ``"sync"``, ``"async"``, or ``"auto"`` (resolve from the
            protocol's registry entry).
        seed: RNG seed for the engine, adversary and delay draws.
        adversary: adversary spec (string/dict, see
            :mod:`repro.sim.adversary`) or a live instance (each run
            deep-copies it, so repeated runs and sweep grid points see
            its pristine state; blocks serialization).  Sync engine
            only.
        delay: message delay-model spec (async engine only).
        crash_times: ``{pid: time}`` scheduled crashes (async only; the
            sync engine's crashes come from the adversary).
        failure_detector: ``{"min_delay": ..., "max_delay": ...}``
            notification window of the async oracle detector.
        congestion: per-process per-round send/receive budget spec
            (``"budget:send=4,receive=8"`` or the dict form; see
            :mod:`repro.sim.congestion`).  Both engines enforce it.
        strict_invariants: override the per-protocol default for the
            sync engine's single-active assertion.
        allow_total_failure: tolerate all-crashed executions (sync).
        max_steps / max_rounds: sync engine budgets.
        max_events: async engine budget.
        fastpath: columnar numpy delivery path for the sync engine -
            ``"auto"`` (use numpy when installed; the default),
            ``"on"`` (require it; errors when the ``repro[fast]`` extra
            is missing) or ``"off"`` (pure python).  Results are
            bit-identical either way, so the field is excluded from
            :meth:`canonical_dict` / :meth:`cache_key`.
        options: extra keyword arguments for the protocol builder
            (e.g. ``interval`` for ``naive``, ``revert_threshold`` for
            ``D``, ``step_delay`` for ``A-async``).
        name: optional label, carried through serialization and the
            config echo (used by benchmarks and sweep tables).
    """

    protocol: str
    n: int
    t: int
    engine: str = "auto"
    seed: int = 0
    adversary: AdversarySpec = None
    delay: DelaySpec = None
    crash_times: Optional[Dict[int, float]] = None
    failure_detector: Optional[Dict[str, float]] = None
    congestion: CongestionSpec = None
    strict_invariants: Optional[bool] = None
    allow_total_failure: bool = False
    max_steps: int = DEFAULT_MAX_STEPS
    max_rounds: Optional[int] = None
    max_events: int = DEFAULT_MAX_EVENTS
    fastpath: str = "auto"
    options: Dict[str, Any] = field(default_factory=dict)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choices: "
                + ", ".join(ENGINE_CHOICES)
            )
        if self.fastpath not in FASTPATH_CHOICES:
            raise ConfigurationError(
                f"unknown fastpath {self.fastpath!r}; choices: "
                + ", ".join(FASTPATH_CHOICES)
            )
        registry.get_entry(self.protocol)  # fail fast with the name listing
        if self.n <= 0 or self.t <= 0:
            raise ConfigurationError(
                f"n and t must be positive, got n={self.n}, t={self.t}"
            )
        # Canonicalise declarative specs eagerly: bad specs fail at
        # construction, and two scenarios spelling one spec differently
        # ("random:2" vs {"kind": "random", "count": 2}) compare equal.
        # Live adversary instances / delay callables pass through (they
        # run fine but block serialization).
        if not isinstance(self.adversary, Adversary):
            self.adversary = normalize_adversary_spec(self.adversary)
        if not callable(self.delay):
            self.delay = normalize_delay_spec(self.delay)
        self.congestion = normalize_congestion_spec(self.congestion)
        if "schedule" in self.options:
            # By convention the ``schedule`` builder option is a schedule
            # spec (dynamic-workload protocols); canonicalise it like the
            # other spec families so a bad spec fails at construction and
            # spelling variants compare equal.
            self.options = {
                **self.options,
                "schedule": normalize_schedule_spec(self.options["schedule"]),
            }
        if self.failure_detector is not None:
            unknown = set(self.failure_detector) - set(_FD_FIELDS)
            if unknown:
                raise ConfigurationError(
                    f"unknown failure_detector field(s) {sorted(unknown)}; "
                    f"accepted: {', '.join(_FD_FIELDS)}"
                )

    # ---- engine resolution -------------------------------------------

    @property
    def resolved_engine(self) -> str:
        """The concrete engine kind this scenario runs on."""
        entry = registry.get_entry(self.protocol)
        if self.engine == "auto":
            return entry.engine
        if self.engine != entry.engine:
            raise ConfigurationError(
                f"protocol {self.protocol!r} runs on the {entry.engine!r} "
                f"engine, but the scenario requests {self.engine!r}"
            )
        return self.engine

    def _check_engine_fields(self, engine_kind: str) -> None:
        if engine_kind == "sync":
            for label, value in (
                ("delay", self.delay),
                ("crash_times", self.crash_times),
                ("failure_detector", self.failure_detector),
            ):
                if value is not None:
                    raise ConfigurationError(
                        f"{label!r} only applies to async scenarios, but "
                        f"protocol {self.protocol!r} runs on the sync engine"
                    )
        else:
            if self.adversary is not None:
                raise ConfigurationError(
                    "round-driven adversaries only apply to sync scenarios; "
                    "async runs schedule failures via 'crash_times'"
                )
            if self.strict_invariants is not None or self.max_rounds is not None:
                raise ConfigurationError(
                    "'strict_invariants' and 'max_rounds' are sync-engine "
                    "knobs; the async budget is 'max_events'"
                )
            if self.fastpath != "auto":
                raise ConfigurationError(
                    "'fastpath' is a sync-engine knob; protocol "
                    f"{self.protocol!r} runs on the async engine"
                )

    def validate(self) -> None:
        """Check the cross-field constraints that :meth:`run` would hit.

        Construction already validates each field; this additionally
        resolves the engine and rejects engine-mismatched knobs (a sync
        scenario carrying ``delay``, an async one carrying an
        adversary), raising :class:`ConfigurationError`.  The run server
        calls this at submission time so a bad document 400s instead of
        failing later inside a worker.
        """
        self._check_engine_fields(self.resolved_engine)

    # ---- content addressing ------------------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        """The scenario's semantic identity as a plain dict.

        Like :meth:`to_dict`, minus everything that does not affect the
        run's metrics: the ``name`` label is dropped and ``engine:
        "auto"`` is resolved to the concrete engine, so two spellings of
        the same run ("auto" vs "sync", named vs anonymous, string spec
        vs dict spec) produce the same canonical dict.  Scenarios
        holding live adversary/delay objects are not serializable and
        raise :class:`ConfigurationError`.
        """
        data = self.to_dict()
        data.pop("name", None)
        # The columnar fast path is bit-identical by contract (the
        # differential fuzz harness pins it), so it is not part of the
        # scenario's semantic identity: a fastpath-on run must hit a
        # fastpath-off cache entry and vice versa.
        data.pop("fastpath", None)
        data["engine"] = self.resolved_engine
        return data

    def cache_key(self) -> str:
        """SHA-256 hex digest of the canonical dict - the scenario's
        content address.

        Every run in this package is a deterministic function of its
        canonical dict, so equal keys mean *bit-identical metrics*:
        result caches keyed by ``cache_key()`` give exact hits (see
        :mod:`repro.cache` and ``docs/serve.md``).

        Stability contract: the key changes **only when the scenario's
        semantics change** - same protocol, workload, specs and seed
        always hash the same, across spelling variants and labels.
        Conversely, a key is only comparable across package versions
        that produce identical metrics for identical canonical dicts;
        rebaseline persisted caches when an engine rewrite changes
        accounting (the suite pins in ``scenarios/`` catch that).
        """
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ---- execution ---------------------------------------------------

    def run(self, *, trace=None, unit_effect=None) -> RunResult:
        """Execute the scenario once and return its
        :class:`~repro.sim.metrics.RunResult` with the scenario's
        serialized form echoed in ``result.config``.

        ``trace`` and ``unit_effect`` are runtime-only observers of the
        sync engine; they are deliberately not part of the serialized
        scenario.
        """
        engine_kind = self.resolved_engine
        self._check_engine_fields(engine_kind)
        entry = registry.get_entry(self.protocol)
        processes = registry.build_processes(
            self.protocol, self.n, self.t, **self.options
        )
        tracker = WorkTracker(self.n)
        if engine_kind == "sync":
            strict = self.strict_invariants
            if strict is None:
                strict = entry.single_active
            adversary = self.adversary
            if isinstance(adversary, Adversary):
                # Adversaries are stateful (budgets, countdowns); hand the
                # engine a copy so repeated runs of one scenario - and every
                # grid point of a Sweep - start from the pristine state.
                adversary = copy.deepcopy(adversary)
            else:
                adversary = adversary_from_spec(adversary)
            engine = Engine(
                list(processes),
                tracker=tracker,
                adversary=adversary,
                seed=self.seed,
                strict_invariants=strict,
                allow_total_failure=self.allow_total_failure,
                max_steps=self.max_steps,
                max_rounds=self.max_rounds,
                trace=trace,
                unit_effect=unit_effect,
                congestion=congestion_from_spec(self.congestion),
                fastpath=self.fastpath,
            )
        else:
            if trace is not None or unit_effect is not None:
                raise ConfigurationError(
                    "trace/unit_effect are sync-engine observers; the async "
                    "engine does not support them"
                )
            detector = None
            if self.failure_detector is not None:
                detector = FailureDetector(**self.failure_detector)
            engine = AsyncEngine(
                list(processes),
                tracker=tracker,
                seed=self.seed,
                delay_model=delay_model_from_spec(self.delay),
                failure_detector=detector,
                crash_times=self.crash_times,
                max_events=self.max_events,
                congestion=congestion_from_spec(self.congestion),
            )
        result = engine.run()
        try:
            config = self.to_dict()
        except ConfigurationError:
            config = None  # live adversary/delay objects: run, don't echo
        return dataclasses.replace(result, config=config)

    # ---- serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-compatible form; defaults are omitted so the
        dict reads like the scenario was written by hand."""
        data: Dict[str, Any] = {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "engine": self.engine,
            "seed": self.seed,
        }
        if self.name is not None:
            data["name"] = self.name
        adversary = normalize_adversary_spec(self.adversary)
        if adversary is not None:
            data["adversary"] = adversary
        delay = normalize_delay_spec(self.delay)
        if delay is not None:
            data["delay"] = delay
        congestion = normalize_congestion_spec(self.congestion)
        if congestion is not None:
            data["congestion"] = congestion
        if self.crash_times:
            data["crash_times"] = {
                int(pid): float(when) for pid, when in sorted(self.crash_times.items())
            }
        if self.failure_detector is not None:
            data["failure_detector"] = {
                key: float(value) for key, value in self.failure_detector.items()
            }
        if self.strict_invariants is not None:
            data["strict_invariants"] = self.strict_invariants
        if self.allow_total_failure:
            data["allow_total_failure"] = True
        if self.max_steps != DEFAULT_MAX_STEPS:
            data["max_steps"] = self.max_steps
        if self.max_rounds is not None:
            data["max_rounds"] = self.max_rounds
        if self.max_events != DEFAULT_MAX_EVENTS:
            data["max_events"] = self.max_events
        if self.fastpath != "auto":
            data["fastpath"] = self.fastpath
        if self.options:
            data["options"] = dict(self.options)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a scenario must be a dict, got {type(data).__name__}"
            )
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s) {sorted(unknown)}; accepted: "
                + ", ".join(sorted(field_names))
            )
        missing = {"protocol", "n", "t"} - set(data)
        if missing:
            raise ConfigurationError(
                f"a scenario requires field(s) {sorted(missing)}"
            )
        # Documents arrive from files and the run server's wire format,
        # so mistyped values must come back as named ConfigurationErrors
        # (field + offending value), never raw TypeError tracebacks.
        for name in ("n", "t", "seed", "max_steps", "max_rounds", "max_events"):
            value = data.get(name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"scenario field {name!r} must be an integer, got {value!r}"
                )
        for name in ("protocol", "engine", "name", "fastpath"):
            value = data.get(name)
            if name in data and not isinstance(value, str):
                raise ConfigurationError(
                    f"scenario field {name!r} must be a string, got {value!r}"
                )
        for name in ("strict_invariants", "allow_total_failure"):
            value = data.get(name)
            if value is not None and not isinstance(value, bool):
                raise ConfigurationError(
                    f"scenario field {name!r} must be a boolean, got {value!r}"
                )
        if "options" in data and not isinstance(data["options"], dict):
            raise ConfigurationError(
                f"scenario field 'options' must be a dict, got {data['options']!r}"
            )
        detector = data.get("failure_detector")
        if detector is not None:
            if not isinstance(detector, dict):
                raise ConfigurationError(
                    "scenario field 'failure_detector' must be a dict, got "
                    f"{detector!r}"
                )
            for key, value in detector.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ConfigurationError(
                        f"failure_detector field {key!r} must be a number, "
                        f"got {value!r}"
                    )
        kwargs = dict(data)
        if kwargs.get("crash_times") is not None:
            crash_times = kwargs["crash_times"]
            if not isinstance(crash_times, dict):
                raise ConfigurationError(
                    "'crash_times' must be a {pid: time} mapping, got "
                    f"{crash_times!r}"
                )
            converted: Dict[int, float] = {}
            for pid, when in crash_times.items():
                try:
                    pid_int = int(pid)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"crash_times pid {pid!r} must be an integer process id"
                    ) from None
                if isinstance(when, bool) or not isinstance(when, (int, float)):
                    raise ConfigurationError(
                        f"crash_times entry for pid {pid!r} must be a numeric "
                        f"time, got {when!r}"
                    )
                converted[pid_int] = float(when)
            kwargs["crash_times"] = converted
        return cls(**kwargs)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_file(cls, path) -> "Scenario":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read scenario file {path}: {exc}"
            ) from exc
        return cls.from_json(text)

    # ---- derived scenarios -------------------------------------------

    def replace(self, **changes) -> "Scenario":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


# =====================================================================
# Parallel execution
# =====================================================================


def _run_scenario_payload(payload: Dict[str, Any]) -> RunResult:
    """Worker-side entry point: rebuild the scenario from its dict form
    and run it.  Top-level so it pickles under every start method."""
    return Scenario.from_dict(payload).run()


def _pool_context():
    # ``fork`` keeps worker start-up cheap and inherits the registry
    # as-is, but is only safe on Linux (macOS offers fork yet CPython
    # made spawn its default there because fork-without-exec breaks
    # system frameworks); everywhere else use the platform default.
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_scenarios(
    scenarios: List[Scenario], *, workers: Optional[int]
) -> List[RunResult]:
    """The raw (cache-blind) executor behind :func:`run_scenarios`."""
    if workers is None or workers <= 1 or len(scenarios) <= 1:
        return [scenario.run() for scenario in scenarios]
    try:
        payloads = [scenario.to_dict() for scenario in scenarios]
    except ConfigurationError as exc:
        raise ConfigurationError(
            "parallel execution ships scenarios to workers as dicts, but a "
            f"scenario does not serialize: {exc}"
        ) from exc
    with _pool_context().Pool(min(workers, len(scenarios))) as pool:
        return pool.map(_run_scenario_payload, payloads, chunksize=1)


def run_scenarios(
    scenarios: Iterable[Scenario],
    *,
    workers: Optional[int] = None,
    cache=None,
) -> List[RunResult]:
    """Run ``scenarios`` in order and return their results in order.

    ``workers=None`` (or ``0``/``1``) runs serially in-process - the
    deterministic fallback.  ``workers > 1`` ships each scenario to a
    ``multiprocessing`` pool *as its dict form*; every run is a pure
    function of that dict and its seed, so the returned metrics are
    bit-identical to the serial path (pinned by
    ``tests/test_suites.py``).  Scenarios holding live adversary
    instances cannot be shipped and raise :class:`ConfigurationError` -
    use declarative specs, or run serially.

    ``cache`` (a :class:`repro.cache.ResultCache`) memoizes completed
    runs by :meth:`Scenario.cache_key`: cached scenarios return without
    executing, duplicates *within* the batch execute once, and every
    miss is stored for the next call.  Determinism makes hits exact, so
    results are bit-identical with or without a cache - including the
    ``config`` echo, which always reflects the requesting scenario.
    Scenarios holding live (unserializable) adversaries bypass the
    cache and simply run.
    """
    scenarios = list(scenarios)
    if cache is None:
        return _execute_scenarios(scenarios, workers=workers)
    results: List[Optional[RunResult]] = [None] * len(scenarios)
    misses: List[int] = []
    first_for_key: Dict[str, int] = {}
    twin_of: Dict[int, int] = {}
    keys: List[Optional[str]] = []
    for index, scenario in enumerate(scenarios):
        try:
            key = scenario.cache_key()
        except ConfigurationError:
            key = None  # live adversary/delay objects: run, don't cache
        keys.append(key)
        if key is None:
            misses.append(index)
            continue
        if key in first_for_key:
            twin_of[index] = first_for_key[key]
            continue
        cached = cache.get(key)
        if cached is not None:
            results[index] = dataclasses.replace(
                cached, config=scenario.to_dict()
            )
            continue
        first_for_key[key] = index
        misses.append(index)
    if misses:
        executed = _execute_scenarios(
            [scenarios[index] for index in misses], workers=workers
        )
        for index, result in zip(misses, executed):
            results[index] = result
            if keys[index] is not None:
                cache.put(keys[index], result)
    for index, twin in twin_of.items():
        results[index] = dataclasses.replace(
            results[twin], config=scenarios[index].to_dict()
        )
    return results


# =====================================================================
# Sweeps and aggregation
# =====================================================================


def _metrics_row(result: RunResult) -> Dict[str, float]:
    metrics = result.metrics
    return {
        "work": metrics.work_total,
        "messages": metrics.messages_total,
        "effort": metrics.effort,
        "rounds": metrics.retire_round,
        "redundant_work": metrics.redundant_work(),
        "crashes": metrics.crashes,
    }


class ResultSet:
    """An ordered collection of ``(scenario, result)`` pairs with the
    paper's aggregation conventions baked in.

    The theorems are worst-case statements over all crash patterns, so
    :meth:`worst` (per-measure maxima) is the headline reducer;
    :meth:`mean` is there for the expected-cost view.
    """

    def __init__(self, entries: Sequence[Tuple[Scenario, RunResult]]):
        self.entries: List[Tuple[Scenario, RunResult]] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Tuple[Scenario, RunResult]]:
        return iter(self.entries)

    @property
    def results(self) -> List[RunResult]:
        return [result for _, result in self.entries]

    @property
    def all_completed(self) -> bool:
        return all(result.completed for result in self.results)

    # ---- combination -------------------------------------------------

    @classmethod
    def merge(cls, *result_sets: "ResultSet") -> "ResultSet":
        """One :class:`ResultSet` holding every ``(scenario, result)``
        pair of ``result_sets``, in argument order.

        This is how client-side callers recombine results fetched in
        pieces (several :meth:`repro.client.Client` jobs, shards of a
        campaign) into the same aggregate object an in-process
        :meth:`Sweep.run` returns - reducers, tables and JSON export all
        work on the merged set.
        """
        entries: List[Tuple[Scenario, RunResult]] = []
        for result_set in result_sets:
            if not isinstance(result_set, ResultSet):
                raise ConfigurationError(
                    "ResultSet.merge combines ResultSet objects, got "
                    f"{type(result_set).__name__}"
                )
            entries.extend(result_set.entries)
        return cls(entries)

    # ---- reducers ----------------------------------------------------

    def _reduced(self, reducer) -> Dict[str, float]:
        if not self.entries:
            raise ConfigurationError("cannot reduce an empty ResultSet")
        rows = [_metrics_row(result) for result in self.results]
        return {key: reducer([row[key] for row in rows]) for key in rows[0]}

    def worst(self) -> Dict[str, float]:
        """Per-measure maxima over every execution (the paper's view)."""
        return self._reduced(max)

    def mean(self) -> Dict[str, float]:
        return self._reduced(lambda values: sum(values) / len(values))

    def by_protocol(self) -> Dict[str, "ResultSet"]:
        grouped: Dict[str, ResultSet] = {}
        for scenario, result in self.entries:
            grouped.setdefault(
                scenario.protocol.lower(), ResultSet([])
            ).entries.append((scenario, result))
        return grouped

    # ---- export ------------------------------------------------------

    def table(self, *, reduce: str = "worst", title: Optional[str] = None) -> str:
        """Markdown table, one row per protocol, reduced per-measure."""
        from repro.analysis.tables import render_table

        if reduce not in ("worst", "mean"):
            raise ConfigurationError(
                f"unknown reducer {reduce!r}; choices: worst, mean"
            )
        rows = []
        for protocol, subset in sorted(self.by_protocol().items()):
            reduced = subset.worst() if reduce == "worst" else subset.mean()
            rows.append(
                [
                    protocol,
                    len(subset),
                    reduced["work"],
                    reduced["messages"],
                    reduced["effort"],
                    float(reduced["rounds"]),
                    "yes" if subset.all_completed else "NO",
                ]
            )
        return render_table(
            ["protocol", "runs", "work", "messages", "effort", "rounds", "completed"],
            rows,
            title=title,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "runs": [result.to_dict() for result in self.results],
            "worst": self.worst(),
            "mean": self.mean(),
            "all_completed": self.all_completed,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"


@dataclass
class Sweep:
    """Fan a base scenario out over seeds x adversary specs (x protocols).

    ``None`` sequences mean "keep the base scenario's value"; passing
    explicit sequences replaces it per grid point.  ``run()`` executes
    the full grid and returns a :class:`ResultSet`.
    """

    base: Scenario
    seeds: Optional[Sequence[int]] = None
    adversaries: Optional[Sequence[AdversarySpec]] = None
    protocols: Optional[Sequence[str]] = None

    def scenarios(self) -> Iterator[Scenario]:
        protocols = self.protocols if self.protocols is not None else [self.base.protocol]
        adversaries = (
            self.adversaries if self.adversaries is not None else [self.base.adversary]
        )
        seeds = self.seeds if self.seeds is not None else [self.base.seed]
        for protocol in protocols:
            for adversary in adversaries:
                for seed in seeds:
                    yield self.base.replace(
                        protocol=protocol, adversary=adversary, seed=seed
                    )

    def run(self, *, workers: Optional[int] = None) -> ResultSet:
        """Execute the full grid and aggregate it.

        ``workers > 1`` fans grid points out to a multiprocessing pool
        (the grid is embarrassingly parallel); results come back in grid
        order with metrics bit-identical to the serial default.  See
        :func:`run_scenarios`.
        """
        scenarios = list(self.scenarios())
        return ResultSet(
            list(zip(scenarios, run_scenarios(scenarios, workers=workers)))
        )

    # ---- serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"base": self.base.to_dict()}
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        if self.adversaries is not None:
            data["adversaries"] = [
                normalize_adversary_spec(spec) for spec in self.adversaries
            ]
        if self.protocols is not None:
            data["protocols"] = list(self.protocols)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Sweep":
        if not isinstance(data, dict) or "base" not in data:
            raise ConfigurationError("a sweep needs a 'base' scenario dict")
        unknown = set(data) - {"base", "seeds", "adversaries", "protocols"}
        if unknown:
            raise ConfigurationError(
                f"unknown sweep field(s) {sorted(unknown)}; accepted: "
                "base, seeds, adversaries, protocols"
            )
        return cls(
            base=Scenario.from_dict(data["base"]),
            seeds=data.get("seeds"),
            adversaries=data.get("adversaries"),
            protocols=data.get("protocols"),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"sweep JSON does not parse: {exc}") from exc
        return cls.from_dict(data)


__all__ = [
    "ENGINE_CHOICES",
    "ResultSet",
    "Scenario",
    "Sweep",
    "run_scenarios",
]
