"""The DoWork procedure shared by Protocols A and B (Figure 1).

When a process becomes active it (1) finishes whatever checkpoint the
previous active process was performing when it crashed, inferred from the
last message it received, and (2) resumes the work from the first
subchunk not known to be complete, partial-checkpointing every subchunk
to its own group and full-checkpointing every chunk to all groups.

The procedure is expressed as a generator of per-round steps so that the
same code drives the synchronous processes of Protocols A and B and the
asynchronous variant of Protocol A (where each step is an event rather
than a round).  Each yielded step is ``(work_unit_or_None, sends)``;
the generator's exhaustion means the active process terminates.

Dispatch on the last received message follows the prose of Section 2.1,
which (unlike the condensed code of Figure 1) completes the interrupted
*full* checkpoint in the received-from-outside-group case: "j must inform
the rest of its own group that subchunk c was performed, which it does
with a Partialcheckpoint(c), and proceeds with the full checkpoint of c,
beginning with group g+1".
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.core.chunks import SubchunkPlan
from repro.core.groups import SqrtGroups
from repro.sim.actions import MessageKind, SendBatch, broadcast

#: One active-process round: (work unit or None, send batch).  Batches
#: are packed Broadcast objects (broadcast() packs them); both engines
#: keep them un-expanded end to end.
Step = Tuple[Optional[int], SendBatch]

#: Payload forms (all carry the subchunk index ``c``):
#:   ("partial", c)      - partial checkpoint to the sender's own group
#:   ("full", c, g)      - full checkpoint: group ``g`` is (being) told
PARTIAL = "partial"
FULL = "full"


def fictitious_initial_message(pid: int, groups: SqrtGroups) -> Tuple[tuple, int, int]:
    """The paper's round-0 convention: every process is deemed to have
    received an ordinary message ``(0, g)`` from process 0 just before
    the execution begins.

    For processes outside group 1 we use ``g = g_j`` (the only full-
    checkpoint form they can receive from outside their group); for group
    1 members we use ``g = ng`` so the uniform dispatch resumes with no
    pending full-checkpoint sweep.  Returns (payload, sender, stamp).
    Fictitious messages are never sent and never counted.
    """
    gj = groups.group_of(pid)
    g = groups.num_groups if gj == 1 else gj
    return (FULL, 0, g), 0, 0


def checkpoint_payload_subchunk(payload: tuple) -> int:
    """Extract the subchunk index from either checkpoint payload form."""
    return payload[1]


def _partial_checkpoint(
    pid: int, groups: SqrtGroups, c: int
) -> Iterator[Step]:
    """One broadcast of ``(c)`` to the higher members of ``pid``'s group.

    An empty recipient set consumes no round: nobody is listening, and
    skipping only shortens the active period (deadlines are upper
    bounds).
    """
    recipients = groups.higher_members(pid)
    if recipients:
        yield None, broadcast(recipients, (PARTIAL, c), MessageKind.PARTIAL_CHECKPOINT)


def _full_checkpoint(
    pid: int, groups: SqrtGroups, c: int, start_group: int
) -> Iterator[Step]:
    """Inform groups ``start_group..ng`` that subchunk ``c`` is complete,
    echoing each step to the sender's own group (the paper's "double
    checkpointing": the fact that a group has been informed is itself
    checkpointed)."""
    own = groups.higher_members(pid)
    for g in range(start_group, groups.num_groups + 1):
        members = groups.members(g)
        payload = (FULL, c, g)
        if members:
            yield None, broadcast(members, payload, MessageKind.FULL_CHECKPOINT)
        if own:
            yield None, broadcast(own, payload, MessageKind.FULL_CHECKPOINT)


def dowork_script(
    pid: int,
    groups: SqrtGroups,
    plan: SubchunkPlan,
    last_payload: tuple,
    last_sender: int,
) -> Iterator[Step]:
    """Generate the active process's rounds, given its last message."""
    gj = groups.group_of(pid)
    c = checkpoint_payload_subchunk(last_payload)

    if last_payload[0] == FULL:
        g = last_payload[2]
        if groups.group_of(last_sender) != gj:
            # The previous active process was telling j's group about c;
            # finish telling j's own group, then resume the sweep after it.
            yield from _partial_checkpoint(pid, groups, c)
            yield from _full_checkpoint(pid, groups, c, gj + 1)
        else:
            # k was echoing "group g has been told about c" to its own
            # (= j's) group; finish the echo, then resume after group g.
            own = groups.higher_members(pid)
            if own:
                yield None, broadcast(own, (FULL, c, g), MessageKind.FULL_CHECKPOINT)
            yield from _full_checkpoint(pid, groups, c, g + 1)
    else:
        # Partial checkpoint of c was in flight: complete it, and if c
        # closed a chunk, redo the chunk's full checkpoint sweep.
        yield from _partial_checkpoint(pid, groups, c)
        if c > 0 and plan.is_chunk_boundary(c):
            yield from _full_checkpoint(pid, groups, c, gj + 1)

    for subchunk in range(c + 1, plan.num_subchunks + 1):
        for unit in plan.units_of(subchunk):
            yield unit, []
        yield from _partial_checkpoint(pid, groups, subchunk)
        if plan.is_chunk_boundary(subchunk):
            yield from _full_checkpoint(pid, groups, subchunk, gj + 1)
