"""Recovery-aware Protocol D: rejoin from the last phase checkpoint.

The paper's model is fail-stop, so Protocol D never plans for a crashed
process to come back.  This variant makes the phase structure double as
a *checkpoint discipline*: at the start of every work phase each process
snapshots ``(phase_index, S, T)`` - the outstanding units and the set
thought correct - and a crash-recover fault (see
:mod:`repro.sim.crashes`) restores exactly that snapshot, discarding
everything the process learned since.  That is deliberately *stale*
state: the rejoiner redoes its phase share (redundant work the metrics
make visible) and broadcasts agreement messages for a phase its peers
may have long finished.

The agreement phase absorbs the staleness without modification:

* peers ahead of the rejoiner drop its old-phase messages (the buffer
  filter admits only ``payload.phase >= self.phase_index``);
* the rejoiner, hearing nobody in its stale phase, watches its live-set
  estimate collapse to ``{self}`` after the grace round, decides, and -
  holding a stale non-empty ``S`` with ``|T| = 1`` under the reversion
  threshold - falls back to a solo Protocol A run over the units it
  still believes outstanding.  Units other processes finished meanwhile
  are redone, never lost, so completion is preserved.

A rejoiner that recovers while its peers are still in the same phase
simply participates again: its intersected ``S`` and unioned ``T`` fold
into the agreement like any other ongoing view.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.protocol_d import ProtocolDProcess
from repro.sim.bitset import IntBitset


class ProtocolDRecoveryProcess(ProtocolDProcess):
    """Protocol D with per-phase checkpoints and crash-recover support."""

    supports_recovery = True

    _checkpoint: Tuple[int, IntBitset, IntBitset]

    def _setup_work_phase(self, start_round: int) -> None:
        # Snapshot the pre-phase view (phase_index before the increment,
        # S before the share is carved out, T before agreement rewrites
        # it): this is the state a crash anywhere in the phase - work,
        # agreement, or reversion - rolls back to.
        self._checkpoint = (self.phase_index, self.S.copy(), self.T.copy())
        super()._setup_work_phase(start_round)

    def on_recover(self, round_number: int) -> None:
        phase_index, checkpoint_s, checkpoint_t = self._checkpoint
        self.phase_index = phase_index
        self.S = checkpoint_s.copy()
        self.T = checkpoint_t.copy()
        # Transient state died with the crash: buffered agreement
        # traffic, the live-set estimate, and any embedded Protocol A
        # run from a reversion in progress.
        self._buffer = []
        self._cbuffer = []
        self._U = IntBitset()
        self._u_snapshot = IntBitset()
        self._round_var = 0
        self._agree_done = False
        self._inner = None
        self._revert_members = []
        self._revert_units = []
        self.reverted = False
        # Replay the checkpointed phase from the rejoin round; this
        # re-snapshots the same checkpoint, so repeated crash-recover
        # cycles replay the same phase until one completes.
        self._setup_work_phase(start_round=round_number)


def build_protocol_d_recovery(
    n: int,
    t: int,
    *,
    revert_threshold: float = 0.5,
    slack: int = 2,
) -> List[ProtocolDRecoveryProcess]:
    """Construct the full set of recovery-aware Protocol D processes."""
    return [
        ProtocolDRecoveryProcess(
            pid, t, n, revert_threshold=revert_threshold, slack=slack
        )
        for pid in range(t)
    ]
