"""Protocol C (Section 3): effort O(n + t log t), exponential time.

Unlike Protocols A and B there is no predetermined takeover order: when
the active process fails, the *most knowledgeable* process must take over.
Knowledge is spread maximally thinly - each new unit of (real or
fault-detection) work is reported to the process the active one currently
considers least knowledgeable - and takeover deadlines are keyed on the
*reduced view* ``m`` (units known done + failures known):
``D(i, m) = K (n + t - m) 2^{n+t-1-m}``.  Every ordinary message a process
receives increases its reduced view, so more knowledgeable processes time
out exponentially sooner, and the paper shows (Lemma 3.4) that at most
one process is ever active.

An active process first performs fault detection on its group at every
level, from the innermost (size 2) down to level 1 (everyone), polling
with "are you alive?" messages; each failure found at level ``h < log t``
is itself a unit of work, reported into the level ``h+1`` group.  It then
performs the real work, reporting each unit (or, in the Corollary 3.9
variant, each batch of ``ceil(n/t)`` units) to the level-1 pointer.

Theorem 3.8: at most ``n + 2t`` units of real work, at most
``n + 8 t log t`` messages, and all processes retire by round
``t K (n+t) 2^{n+t}`` (the batched variant: ``O(t log t)`` messages).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.deadlines import ProtocolCDeadlines
from repro.core.levels import GroupKey, LevelStructure, cyclic_successor
from repro.core.views import View
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, Send, as_send_list
from repro.sim.process import Process

#: Script step kinds yielded by the active-process generator.  The
#: harness executes each step so that view updates carry the exact stamp
#: round of the action (the generator itself never needs to know time).
_WORK = "work"
_POLL = "poll"
_REPORT = "report"

ScriptStep = Tuple[str, Any, Any]


class ProtocolCProcess(Process):
    """One process of Protocol C.

    ``attachment`` implements the Section 5 requirement that Protocol C's
    checkpointing (ordinary) messages carry the general's current value
    when the protocol is used for Byzantine agreement: if not ``None`` it
    rides along in every ordinary message and receivers adopt it.
    """

    def __init__(
        self,
        pid: int,
        t: int,
        n: int,
        *,
        batched: bool = False,
        epoch: int = 0,
        slack: int = 2,
    ):
        super().__init__(pid, t)
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        self.n = n
        self.epoch = epoch
        self.batched = batched
        self.levels = LevelStructure(t)
        self.deadlines = ProtocolCDeadlines(n=n, t=t, batched=batched, slack=slack)
        self.view = View()
        self.view.add_faulty(self.levels.virtual_pids)
        self.attachment: Any = None
        self._active = False
        self._script: Optional[Iterator[ScriptStep]] = None
        self._resume_round = epoch
        self._awaiting_target: Optional[int] = None
        self._reply_seen = False
        self._poll_result = False
        if pid == 0:
            self._deadline = epoch
        else:
            self._deadline = epoch + self.deadlines.D(pid, 0)

    # ---- scheduling -----------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._active and not self.retired

    def reduced_view(self) -> int:
        return self.view.reduced(self.t)

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self._active:
            return self._resume_round
        return self._deadline

    # ---- round logic ------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        reply_sends = self._absorb(inbox, round_number)
        if self._active:
            if round_number >= self._resume_round:
                action = self._step_script(round_number)
                if reply_sends:
                    # Poll replies ride along with the script's own sends;
                    # the mixed batch needs the legacy per-copy spelling.
                    action.sends = reply_sends + as_send_list(action.sends)
                return action
            return Action(sends=reply_sends)
        if round_number >= self._deadline:
            self._activate()
            action = self._step_script(round_number)
            if reply_sends:
                action.sends = reply_sends + as_send_list(action.sends)
            return action
        return Action(sends=reply_sends)

    def _absorb(self, inbox: List[Envelope], round_number: int) -> List[Send]:
        replies: List[Send] = []
        for envelope in sorted(inbox, key=attrgetter("sent_round")):
            if envelope.kind is MessageKind.POLL:
                replies.append(
                    Send(envelope.src, ("alive", self.pid), MessageKind.POLL_REPLY)
                )
            elif envelope.kind is MessageKind.POLL_REPLY:
                if (
                    self._awaiting_target is not None
                    and envelope.src == self._awaiting_target
                ):
                    self._reply_seen = True
            elif envelope.kind is MessageKind.ORDINARY:
                _, view_snapshot, attachment = envelope.payload
                self.view.merge(view_snapshot)
                if attachment is not None:
                    self.attachment = attachment
                if not self._active:
                    m = self.reduced_view()
                    self._deadline = envelope.sent_round + self.deadlines.D(
                        self.pid, m
                    )
        return replies

    # ---- the active script ----------------------------------------------------

    def _activate(self) -> None:
        self._active = True
        self._script = self._active_script()
        self._resume_round = 0

    def _step_script(self, round_number: int) -> Action:
        assert self._script is not None
        if self._awaiting_target is not None:
            self._poll_result = self._reply_seen
            self._awaiting_target = None
            self._reply_seen = False
        try:
            step = next(self._script)
        except StopIteration:
            return Action.halting()
        kind = step[0]
        if kind == _WORK:
            unit = step[1]
            self.view.work_next = unit + 1
            self.view.work_round = round_number
            self._resume_round = round_number + 1
            return Action(work=unit)
        if kind == _POLL:
            target = step[1]
            self._awaiting_target = target
            self._reply_seen = False
            self._resume_round = round_number + 2  # send, wait one round
            return Action(
                sends=[Send(target, ("are_you_alive", self.pid), MessageKind.POLL)]
            )
        # _REPORT: ordinary message carrying the full view.
        key, target = step[1], step[2]
        self.view.record_report(key, target, round_number)
        payload = ("view", self.view.copy(), self.attachment)
        self._resume_round = round_number + 1
        return Action(sends=[Send(target, payload, MessageKind.ORDINARY)])

    def _report_target(self, key: GroupKey) -> Optional[int]:
        members = self.levels.members(key)
        return cyclic_successor(
            members, self.view.last_informed_pid(key), self.view.faulty | {self.pid}
        )

    def _active_script(self) -> Iterator[ScriptStep]:
        view = self.view
        top = self.levels.num_levels
        for level in range(top, 0, -1):
            key = self.levels.key_of(self.pid, level)
            members = self.levels.members(key)
            while True:
                excluded = view.faulty | {self.pid}
                target = cyclic_successor(
                    members, view.last_informed_pid(key), excluded
                )
                if target is None:
                    break  # everyone else in this group is known retired
                yield (_POLL, target, None)
                if self._poll_result:
                    break  # found someone alive; descend a level
                view.faulty.add(target)
                if level != top:
                    report_key = self.levels.key_of(self.pid, level + 1)
                    report_target = self._report_target(report_key)
                    if report_target is not None:
                        yield (_REPORT, report_key, report_target)
        # Level 0: the real work, reported into the level-1 group.
        batch_size = max(1, -(-self.n // self.t)) if self.batched else 1
        since_report = 0
        level1_key = self.levels.key_of(self.pid, 1)
        while view.work_next <= self.n:
            unit = view.work_next
            yield (_WORK, unit, None)
            since_report += 1
            if since_report >= batch_size or view.work_next > self.n:
                since_report = 0
                report_target = self._report_target(level1_key)
                if report_target is not None:
                    yield (_REPORT, level1_key, report_target)


def build_protocol_c(
    n: int, t: int, *, epoch: int = 0, slack: int = 2, batched: bool = False
) -> List[ProtocolCProcess]:
    """Construct the full set of Protocol C processes."""
    return [
        ProtocolCProcess(pid, t, n, batched=batched, epoch=epoch, slack=slack)
        for pid in range(t)
    ]


def build_protocol_c_batched(
    n: int, t: int, *, epoch: int = 0, slack: int = 2
) -> List[ProtocolCProcess]:
    """The Corollary 3.9 variant: level-0 work reported every ``n/t`` units."""
    return build_protocol_c(n, t, epoch=epoch, slack=slack, batched=True)
