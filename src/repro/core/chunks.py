"""Chunk / subchunk partition of the work pool (Protocols A and B).

The paper divides the ``n`` units into ``sqrt(t)`` chunks of ``sqrt(t)``
subchunks each, i.e. ``t`` subchunks of ``n/t`` units, assuming ``t | n``.
General case: subchunk ``c`` (1-indexed, ``c in 1..t``) covers units
``floor((c-1) n / t) + 1 .. floor(c n / t)``; subchunk sizes are then
``floor(n/t)`` or ``ceil(n/t)`` and may be zero when ``n < t`` (an empty
subchunk is still checkpointed, mirroring the paper's ``n' = max(n, t)``
effort accounting).

A *chunk boundary* is a subchunk index divisible by the group size, plus
the final subchunk ``t`` (so the terminal full checkpoint always happens
even when ``t`` is not a multiple of the group size).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError


class SubchunkPlan:
    """Mapping between subchunk indices and unit ranges."""

    def __init__(self, n: int, t: int, group_size: int):
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        if t < 1:
            raise ConfigurationError(f"t must be positive, got {t}")
        if group_size < 1:
            raise ConfigurationError(f"group size must be positive, got {group_size}")
        self.n = n
        self.t = t
        self.group_size = group_size
        self.num_subchunks = t

    def units_of(self, subchunk: int) -> List[int]:
        """Units covered by 1-indexed ``subchunk`` (ascending, maybe empty)."""
        self._check(subchunk)
        low = ((subchunk - 1) * self.n) // self.t
        high = (subchunk * self.n) // self.t
        return list(range(low + 1, high + 1))

    def last_unit_of(self, subchunk: int) -> int:
        """Last unit covered by subchunks ``1..subchunk`` (0 if none)."""
        self._check_or_zero(subchunk)
        return (subchunk * self.n) // self.t

    def is_chunk_boundary(self, subchunk: int) -> bool:
        """Whether completing ``subchunk`` triggers a full checkpoint."""
        self._check(subchunk)
        return subchunk % self.group_size == 0 or subchunk == self.num_subchunks

    def subchunk_size_bound(self) -> int:
        """Upper bound on units per subchunk (``ceil(n/t)``)."""
        return -(-self.n // self.t)

    def boundaries(self) -> List[int]:
        return [
            c
            for c in range(1, self.num_subchunks + 1)
            if self.is_chunk_boundary(c)
        ]

    # ---- validation -------------------------------------------------------

    def _check(self, subchunk: int) -> None:
        if not 1 <= subchunk <= self.num_subchunks:
            raise ConfigurationError(
                f"subchunk {subchunk} outside 1..{self.num_subchunks}"
            )

    def _check_or_zero(self, subchunk: int) -> None:
        if not 0 <= subchunk <= self.num_subchunks:
            raise ConfigurationError(
                f"subchunk {subchunk} outside 0..{self.num_subchunks}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubchunkPlan(n={self.n}, t={self.t}, group_size={self.group_size})"
