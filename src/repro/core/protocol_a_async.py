"""Asynchronous Protocol A (end of Section 2.1).

"Notice that we can easily modify this algorithm to run in a completely
asynchronous system equipped with an appropriate failure detection
mechanism: rather than waiting until round DD(j) before becoming active,
process j waits until it has been informed that processes 1, ..., j-1
crashed or terminated."

The takeover rule here is exactly that, with one refinement the paper
leaves implicit: the failure detector reports only *crashes* (soundness
forbids reporting clean termination, which is indistinguishable from
slowness in a silent process).  That suffices: if a smaller-numbered
process terminated cleanly, its terminal full checkpoint reached every
process (crash-free broadcasts are complete), so ``j`` will learn the
work is done and halt instead of taking over; if it crashed, the
detector eventually says so.

The active-process behaviour is byte-for-byte Protocol A's DoWork script
(each step is an event rather than a round), so the effort profile is
the synchronous protocol's; only the takeover trigger changes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.core.chunks import SubchunkPlan
from repro.core.dowork import (
    Step,
    checkpoint_payload_subchunk,
    dowork_script,
    fictitious_initial_message,
)
from repro.core.groups import SqrtGroups
from repro.sim.actions import MessageKind
from repro.sim.async_engine import AsyncContext, AsyncProcess
from repro.sim.bitset import IntBitset

_ORDINARY_KINDS = (MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT)


class AsyncProtocolAProcess(AsyncProcess):
    """Protocol A process for the asynchronous engine."""

    def __init__(self, pid: int, t: int, n: int, *, step_delay: float = 1.0):
        super().__init__(pid, t)
        self.n = n
        self.step_delay = step_delay
        self.groups = SqrtGroups(t)
        self.plan = SubchunkPlan(n, t, self.groups.group_size)
        self.suspected: IntBitset = IntBitset()
        self.active = False
        self._script: Optional[Iterator[Step]] = None
        payload, sender, _ = fictitious_initial_message(pid, self.groups)
        self.last_payload: tuple = payload
        self.last_sender: int = sender

    # ---- event handlers ------------------------------------------------

    def on_start(self, ctx: AsyncContext) -> None:
        if self.pid == 0:
            self._activate(ctx)

    def on_message(
        self, ctx: AsyncContext, src: int, payload: Any, kind: MessageKind
    ) -> None:
        if kind not in _ORDINARY_KINDS:
            return
        self.last_payload = payload
        self.last_sender = src
        if checkpoint_payload_subchunk(payload) >= self.plan.num_subchunks:
            if not self.active:
                ctx.halt()

    def on_suspect(self, ctx: AsyncContext, crashed_pid: int) -> None:
        self.suspected.add(crashed_pid)
        if self.active or self.halted:
            return
        if self.suspected.count_below(self.pid) == self.pid:
            self._activate(ctx)

    def on_wake(self, ctx: AsyncContext, tag: Any) -> None:
        if tag != "step" or not self.active or self.retired:
            return
        self._step(ctx)

    # ---- the active script --------------------------------------------------

    def _activate(self, ctx: AsyncContext) -> None:
        self.active = True
        self._script = dowork_script(
            self.pid, self.groups, self.plan, self.last_payload, self.last_sender
        )
        self._step(ctx)

    def _step(self, ctx: AsyncContext) -> None:
        assert self._script is not None
        try:
            work, sends = next(self._script)
        except StopIteration:
            ctx.halt()
            return
        if work is not None:
            ctx.perform(work)
        # DoWork steps carry packed Broadcast batches; send_batch keeps
        # them un-expanded (one heap event per distinct due instant).
        ctx.send_batch(sends)
        ctx.wake_in(self.step_delay, "step")


def build_async_protocol_a(
    n: int, t: int, *, step_delay: float = 1.0
) -> List[AsyncProtocolAProcess]:
    return [
        AsyncProtocolAProcess(pid, t, n, step_delay=step_delay) for pid in range(t)
    ]
