"""Knowledge views for Protocol C (Section 3.1).

A process's view is the triple ``(F_i, point_i, round_i)``: the set of
processes it knows to be retired, and for every group the last process
known to have been informed of (real or fault-detection) work, with the
round of that report.  The *reduced view* is the scalar
``point_i[G_0] - 1 + |F_i|``: units known done plus failures known -
Protocol C's deadline schedule is keyed entirely on this number.

Representation note: the paper stores ``point[G]`` as "the successor of
the last informed process".  Because the successor function is relative
to the holder (it skips the holder and the holder's faulty set), we
instead store the *last informed process* itself and compute the
successor at use time; the two are equivalent and this form merges
cleanly (by report round) when views travel inside ordinary messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.levels import GroupKey
from repro.sim.bitset import IntBitset


@dataclass
class View:
    """The mutable knowledge state of one Protocol C process.

    ``faulty`` is an :class:`IntBitset`: views travel inside every
    ordinary message and are merged pairwise, so the union/difference
    algebra runs word-parallel instead of per-element.
    """

    faulty: IntBitset = field(default_factory=IntBitset)
    #: group key -> (last informed pid, stamp round of that report)
    last_informed: Dict[GroupKey, Tuple[int, int]] = field(default_factory=dict)
    work_next: int = 1      # paper's point_i[G_0]: next unit to perform
    work_round: int = 0     # paper's round_i[G_0]

    # ---- snapshots -------------------------------------------------------

    def copy(self) -> "View":
        return View(
            faulty=self.faulty.copy(),
            last_informed=dict(self.last_informed),
            work_next=self.work_next,
            work_round=self.work_round,
        )

    # ---- merging -----------------------------------------------------------

    def merge(self, other: "View") -> bool:
        """Fold another view into this one; return whether anything changed.

        The merge is the join of the knowledge lattice: union of faulty
        sets, later report per group, and the further work pointer.
        """
        changed = False
        new_faults = other.faulty - self.faulty
        if new_faults:
            self.faulty |= new_faults
            changed = True
        for key, entry in other.last_informed.items():
            mine = self.last_informed.get(key)
            if mine is None or entry[1] > mine[1] or (
                entry[1] == mine[1] and entry[0] > mine[0]
            ):
                if mine != entry:
                    self.last_informed[key] = entry
                    changed = True
        if other.work_next > self.work_next:
            self.work_next = other.work_next
            changed = True
        if other.work_round > self.work_round:
            self.work_round = other.work_round
            changed = True
        return changed

    # ---- queries -------------------------------------------------------------

    def reduced(self, real_t: int) -> int:
        """The reduced view: units known done + *real* failures known.

        Virtual padding processes (pids >= real_t) are excluded so the
        deadline schedule matches the paper's range ``0..n+t-1``.
        """
        return self.work_next - 1 + self.faulty.count_below(real_t)

    def knows_at_least(self, other: "View") -> bool:
        """The paper's "knows more than (or exactly as much as)" order."""
        if not other.faulty <= self.faulty:
            return False
        if other.work_round > self.work_round or other.work_next > self.work_next:
            return False
        for key, (_, other_round) in other.last_informed.items():
            mine = self.last_informed.get(key)
            if mine is None or mine[1] < other_round:
                return False
        return True

    def record_report(self, key: GroupKey, target: int, stamp: int) -> None:
        self.last_informed[key] = (target, stamp)

    def last_informed_pid(self, key: GroupKey) -> Optional[int]:
        entry = self.last_informed.get(key)
        return entry[0] if entry else None

    def add_faulty(self, pids: Iterable[int]) -> None:
        self.faulty.update(pids)
