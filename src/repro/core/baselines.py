"""The paper's straw-man solutions (Section 1) and the single-level
checkpointing scheme whose failure motivates Protocol A (Section 2).

* :class:`ReplicateProcess` - "have each process perform every unit of
  work": no messages, worst-case ``t n`` work, ``n`` rounds.
* :class:`NaiveCheckpointProcess` - one active process checkpoints to
  *all* processes every ``interval`` units.  With ``interval = 1`` this
  is the paper's second straw man (``n + t - 1`` work but almost ``t n``
  messages); sweeping ``interval = n/k`` over ``k`` reproduces the
  Section 2 argument that no single checkpoint frequency achieves both
  ``O(n + t)`` work and ``O(t sqrt(t))`` messages - the gap Protocol A's
  two-level scheme closes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, SendBatch, broadcast
from repro.sim.process import Process


class ReplicateProcess(Process):
    """Every process performs every unit; nobody communicates."""

    def __init__(self, pid: int, t: int, n: int):
        super().__init__(pid, t)
        self.n = n
        self._next_unit = 1

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        return 0  # work every round until done

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        if self._next_unit > self.n:
            return Action.halting()
        unit = self._next_unit
        self._next_unit += 1
        return Action(work=unit, halt=self._next_unit > self.n)


class NaiveCheckpointProcess(Process):
    """Single active worker, checkpointing to everyone every ``interval``
    units; takeover by fixed deadline in process order.

    The active process broadcasts ``("ckpt", u)`` to all other processes
    after every ``interval``-th unit and after unit ``n``; an inactive
    process that hears ``("ckpt", n)`` terminates, and otherwise takes
    over at its deadline, resuming after the last checkpointed unit it
    heard about.
    """

    def __init__(self, pid: int, t: int, n: int, *, interval: int = 1, slack: int = 2):
        super().__init__(pid, t)
        if interval < 1:
            raise ConfigurationError(f"checkpoint interval must be >= 1, got {interval}")
        self.n = n
        self.interval = interval
        # Active budget: n work rounds + one broadcast round per checkpoint.
        checkpoints = -(-n // interval) if n else 0
        self._budget = n + checkpoints + slack
        self._last_heard_unit = 0
        self._active = False
        self._script: Optional[Iterator[Tuple[Optional[int], SendBatch]]] = None

    # ---- scheduling ----------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._active and not self.retired

    def deadline(self) -> int:
        return self.pid * self._budget

    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        return 0 if self._active else self.deadline()

    # ---- rounds ----------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        done = False
        for envelope in inbox:
            if envelope.kind is MessageKind.CONTROL and envelope.payload[0] == "ckpt":
                self._last_heard_unit = max(self._last_heard_unit, envelope.payload[1])
                done = done or envelope.payload[1] >= self.n
        if done and not self._active:
            return Action.halting()
        if not self._active and round_number >= self.deadline():
            self._active = True
            self._script = self._worker_script()
        if self._active:
            assert self._script is not None
            try:
                work, sends = next(self._script)
            except StopIteration:
                return Action.halting()
            return Action(work=work, sends=sends)
        return Action.idle()

    def _worker_script(self) -> Iterator[Tuple[Optional[int], SendBatch]]:
        others = [pid for pid in range(self.t) if pid != self.pid]
        start = self._last_heard_unit + 1
        if self.n == 0 or start > self.n:
            # Nothing left (or nothing at all): announce completion so the
            # others can retire without taking over.
            if others:
                yield None, broadcast(others, ("ckpt", self.n), MessageKind.CONTROL)
            return
        for unit in range(start, self.n + 1):
            yield unit, []
            if unit % self.interval == 0 or unit == self.n:
                if others:
                    yield None, broadcast(others, ("ckpt", unit), MessageKind.CONTROL)


def build_replicate(n: int, t: int) -> List[ReplicateProcess]:
    return [ReplicateProcess(pid, t, n) for pid in range(t)]


def build_naive_checkpoint(
    n: int, t: int, *, interval: int = 1, slack: int = 2
) -> List[NaiveCheckpointProcess]:
    return [
        NaiveCheckpointProcess(pid, t, n, interval=interval, slack=slack)
        for pid in range(t)
    ]
