"""Protocol A (Section 2.1): effort O(n + t*sqrt(t)), time O(nt + t^2).

At every round at most one process is *active*; the active process works
through the subchunks, partial-checkpointing each to its own group and
full-checkpointing each chunk to all groups.  Process ``j`` takes over at
the fixed deadline ``DD(j) = j (n + 3t)`` if it has not learned that the
work is complete; the deadline guarantees that every smaller-numbered
process has retired (Lemma 2.2), so active periods never overlap.

Theorem 2.3: in every execution at most ``3n`` units of work are
performed, at most ``9 t sqrt(t)`` messages are sent, and every process
retires by round ``nt + 3t^2``.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Iterator, List, Optional

from repro.core.chunks import SubchunkPlan
from repro.core.deadlines import ProtocolADeadlines
from repro.core.dowork import (
    Step,
    checkpoint_payload_subchunk,
    dowork_script,
    fictitious_initial_message,
)
from repro.core.groups import SqrtGroups
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind
from repro.sim.process import Process

_ORDINARY_KINDS = (MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT)


class ProtocolAProcess(Process):
    """One process of Protocol A.

    ``epoch`` shifts every deadline by a fixed offset, which lets the
    protocol be embedded mid-simulation (Protocol D's reversion path
    starts a Protocol A instance at the round agreement completed).
    """

    def __init__(
        self,
        pid: int,
        t: int,
        n: int,
        *,
        epoch: int = 0,
        slack: int = 2,
    ):
        super().__init__(pid, t)
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        self.n = n
        self.epoch = epoch
        self.groups = SqrtGroups(t)
        self.plan = SubchunkPlan(n, t, self.groups.group_size)
        self.deadlines = ProtocolADeadlines(n=n, t=t, slack=slack)
        self._script: Optional[Iterator[Step]] = None
        self._active = False
        # The paper's fictitious round-0 message from process 0.
        payload, sender, stamp = fictitious_initial_message(pid, self.groups)
        self.last_payload: tuple = payload
        self.last_sender: int = sender
        self.last_stamp: int = epoch + stamp

    # ---- scheduling -----------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._active and not self.retired

    def activation_deadline(self) -> int:
        return self.epoch + self.deadlines.DD(self.pid)

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self._active:
            return 0  # act every round; the engine clamps to "next round"
        return self.activation_deadline()

    # ---- round logic ------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        done_seen = self._absorb(inbox)
        if done_seen and not self._active:
            # Terminate before ever becoming active: the work is done.
            return Action.halting()
        if not self._active and round_number >= self.activation_deadline():
            self._activate()
        if self._active:
            return self._step_script()
        return Action.idle()

    def _absorb(self, inbox: List[Envelope]) -> bool:
        """Fold the inbox into ``last_*``; return whether a terminal
        checkpoint (subchunk ``t``) was seen."""
        done = False
        for envelope in sorted(inbox, key=attrgetter("sent_round")):
            if envelope.kind not in _ORDINARY_KINDS:
                continue
            self.last_payload = envelope.payload
            self.last_sender = envelope.src
            self.last_stamp = envelope.sent_round
            if checkpoint_payload_subchunk(envelope.payload) >= self.plan.num_subchunks:
                done = True
        return done

    def _activate(self) -> None:
        self._active = True
        self._script = dowork_script(
            self.pid, self.groups, self.plan, self.last_payload, self.last_sender
        )

    def _step_script(self) -> Action:
        assert self._script is not None
        try:
            work, sends = next(self._script)
        except StopIteration:
            return Action.halting()
        return Action(work=work, sends=sends)


def build_protocol_a(
    n: int, t: int, *, epoch: int = 0, slack: int = 2
) -> List[ProtocolAProcess]:
    """Construct the full set of Protocol A processes."""
    return [
        ProtocolAProcess(pid, t, n, epoch=epoch, slack=slack) for pid in range(t)
    ]
