"""Protocol D (Section 4): time-optimal via parallel work + agreement.

The protocol alternates *work phases* and *agreement phases*.  In a work
phase the outstanding units are split evenly (by rank) among the
processes thought correct; everyone works its share, padding with idle
rounds so all spend ``ceil(|S|/|T|)`` rounds.  The agreement phase is the
early-stopping crash-tolerant exchange of [Dolev-Reischuk-Strong]: each
round every process broadcasts ``(S, T, done)``; units reported done are
intersected away, discovered-correct sets are unioned, silent processes
are removed (after a one-round grace period in phases >= 2, since phases
may start one round apart), and a process decides when its view of the
live set is unchanged across two consecutive rounds - or immediately
adopts the final view of a process that already decided.

If more than half the processes thought correct at the start of a phase
are discovered to have failed (threshold configurable - the paper notes
any factor alpha works, at work cost ``n / (1 - alpha)``), the remaining
processes abandon phasing and finish the outstanding units with
Protocol A among themselves (the reversion path of Theorem 4.1(2)).

Theorem 4.1(1): with ``f`` failures and no reversion, at most ``2n``
work, at most ``(4f + 2) t^2`` messages, and all processes retire by
round ``(f+1) n/t + 4f + 2``.  Failure-free: exactly ``n`` work,
``n/t + 2`` rounds, at most ``2 t^2`` messages.
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Dict, List, Optional, Tuple

from repro.core.protocol_a import ProtocolAProcess
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Broadcast, Envelope, MessageKind, Send
from repro.sim.bitset import FrozenIntBitset, IntBitset
from repro.sim.columnar import (
    KIND_CODES,
    ColumnarInbox,
    bit_test,
    dedup_last_wins,
    int_to_words,
    np,
    or_srcs_mask,
    words_to_int,
)
from repro.sim.process import Process

_WORK = "work"
_AGREE = "agree"
_REVERT = "revert"

#: Agreement payload: (phase index, outstanding units, known-correct, done).
#: The two set components travel as frozen bitset snapshots - freezing is
#: O(1) and the recipient's fold is word-parallel bitwise algebra instead
#: of O(n) element-wise set churn.
AgreePayload = Tuple[int, FrozenIntBitset, FrozenIntBitset, bool]

_INNER_KINDS = (MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT)


class _AgreeCache:
    """Per-run decoded-payload columns for the columnar agree fold.

    One instance lives on the engine's :class:`ColumnarMailboxes` store
    (shared by all processes of a run), indexed by payload id, so each
    agreement payload is decoded into word rows exactly once - not once
    per recipient.  Non-AGREEMENT payload ids keep the ``-1`` phase
    sentinel (receipt filters compare against ``phase_index >= 1``, so
    they never match).
    """

    __slots__ = ("width_s", "width_t", "filled", "phase", "done", "s_words", "t_words")

    def __init__(self, n: int, t: int):
        # Units are 1..n (bit n set => bit_length n+1); pids are 0..t-1.
        self.width_s = (n + 64) >> 6
        self.width_t = max(1, (t + 63) >> 6)
        self.filled = 0
        capacity = 256
        self.phase = np.full(capacity, -1, dtype=np.int64)
        self.done = np.zeros(capacity, dtype=bool)
        self.s_words = np.zeros((capacity, self.width_s), dtype=np.uint64)
        self.t_words = np.zeros((capacity, self.width_t), dtype=np.uint64)

    def ensure(self, store) -> None:
        """Decode every payload interned since the last call."""
        total = store.payload_count()
        if self.filled >= total:
            return
        if total > len(self.phase):
            capacity = len(self.phase)
            while capacity < total:
                capacity *= 2
            phase = np.full(capacity, -1, dtype=np.int64)
            phase[: self.filled] = self.phase[: self.filled]
            self.phase = phase
            for name, width in (("done", 0), ("s_words", self.width_s),
                                ("t_words", self.width_t)):
                old = getattr(self, name)
                shape = (capacity, width) if width else capacity
                new = np.zeros(shape, dtype=old.dtype)
                new[: self.filled] = old[: self.filled]
                setattr(self, name, new)
        code = KIND_CODES[MessageKind.AGREEMENT]
        bytes_s, bytes_t = self.width_s * 8, self.width_t * 8
        for payload_id in range(self.filled, total):
            if store.payload_kind_code(payload_id) != code:
                continue
            payload = store.payload(payload_id)
            self.phase[payload_id] = payload[0]
            self.done[payload_id] = payload[3]
            self.s_words[payload_id] = np.frombuffer(
                payload[1]._bits.to_bytes(bytes_s, "little"), dtype="<u8"
            )
            self.t_words[payload_id] = np.frombuffer(
                payload[2]._bits.to_bytes(bytes_t, "little"), dtype="<u8"
            )
        self.filled = total


class ProtocolDProcess(Process):
    """One process of Protocol D."""

    def __init__(
        self,
        pid: int,
        t: int,
        n: int,
        *,
        revert_threshold: float = 0.5,
        slack: int = 2,
    ):
        super().__init__(pid, t)
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        if not 0.0 < revert_threshold <= 1.0:
            raise ConfigurationError(
                f"revert threshold must be in (0, 1], got {revert_threshold}"
            )
        self.n = n
        self.revert_threshold = revert_threshold
        self.slack = slack
        self.S: IntBitset = IntBitset.from_range(1, n + 1)
        self.T: IntBitset = IntBitset.from_range(0, t)
        self.phase_index = 0
        self.reverted = False
        # Work-phase state.
        self._share: List[int] = []
        self._work_start = 0
        self._work_done_count = 0
        self._agree_entry = 0
        # Agreement-phase state.
        self._U: IntBitset = IntBitset()
        self._u_snapshot: IntBitset = IntBitset()
        self._round_var = 0
        self._agree_done = False
        self._T_prev: IntBitset = self.T.copy()
        self._buffer: List[Envelope] = []
        # Columnar twin of _buffer: (rows, payload_ids) array pairs per
        # drain, kept unmaterialised until the agree fold (only one of
        # the two buffers is ever populated - the engine's store kind is
        # fixed for the whole run).
        self._cbuffer: List = []
        self._cstore = None
        # Reversion state.
        self._inner: Optional[ProtocolAProcess] = None
        self._revert_members: List[int] = []
        self._revert_units: List[int] = []
        self.state = _WORK
        self._setup_work_phase(start_round=0)

    # ---- work phases ------------------------------------------------------

    def _setup_work_phase(self, start_round: int) -> None:
        self.state = _WORK
        self.phase_index += 1
        self._T_prev = self.T.copy()
        team = len(self.T)       # popcount, O(1)
        pool = len(self.S)
        per_process = math.ceil(pool / team) if team else 0
        # Rank and share come straight off the bitsets: count_below is a
        # masked popcount and select() slices exactly this process's
        # ceil(|S|/|T|) units - no O(n) member list per process (the old
        # list(S) cost Theta(n t) across the team every phase).
        if per_process == 0 or self.pid not in self.T:
            # Not thought correct: cannot happen for a live process in
            # the crash model, but stay safe.
            self._share = []
        else:
            rank = self.T.count_below(self.pid)
            self._share = self.S.select(rank * per_process, per_process)
        self._work_start = start_round
        self._work_done_count = 0
        self._agree_entry = start_round + per_process
        # Line 8 of Figure 4: S := S \ S'.  Removing the share up front is
        # equivalent: the share is fully performed before S is next used
        # (at agreement), and a crashed process's S is never consulted.
        self.S.difference_update(self._share)

    # ---- scheduling ----------------------------------------------------------

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self.state == _REVERT:
            assert self._inner is not None
            return self._inner.wake_round()
        if self.state == _WORK:
            if self._work_done_count < len(self._share):
                return self._work_start + self._work_done_count
            return self._agree_entry
        return 0  # agreement: act every round

    # ---- round dispatch ---------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        if self.state == _REVERT:
            return self._revert_round(round_number, inbox)
        if isinstance(inbox, ColumnarInbox):
            # Columnar receipt filter: the same kind + phase guard as
            # below, evaluated against the store's decoded-payload cache
            # (non-AGREEMENT ids carry phase -1) without materialising a
            # single envelope.
            if len(inbox):
                store = inbox.store
                cache = store.cache(
                    "protocol-d", lambda: _AgreeCache(self.n, self.t)
                )
                cache.ensure(store)
                payload_ids = inbox.payload_ids()
                keep = cache.phase[payload_ids] >= self.phase_index
                if keep.any():
                    self._cbuffer.append((inbox.rows[keep], payload_ids[keep]))
                    self._cstore = store
        else:
            self._buffer.extend(
                env
                for env in inbox
                if env.kind is MessageKind.AGREEMENT
                and env.payload[0] >= self.phase_index
            )
        if self.state == _WORK:
            if round_number < self._agree_entry:
                return self._work_round(round_number)
            return self._enter_agree(round_number)
        return self._agree_round(round_number)

    # ---- work rounds ---------------------------------------------------------

    def _work_round(self, round_number: int) -> Action:
        index = round_number - self._work_start
        if index < len(self._share) and index == self._work_done_count:
            self._work_done_count += 1
            return Action(work=self._share[index])
        return Action.idle()  # filler: wait ceil(|S|/|T|) - |S'| rounds

    # ---- agreement rounds -------------------------------------------------------

    def _enter_agree(self, round_number: int) -> Action:
        self.state = _AGREE
        self._U = self.T.copy()
        self.T = IntBitset.singleton(self.pid)
        self._agree_done = False
        self._round_var = 1 if self.phase_index == 1 else 0
        self._u_snapshot = self._U.copy()
        return Action(sends=self._agree_broadcast(done=False))

    def _agree_broadcast(self, done: bool) -> Broadcast:
        payload: AgreePayload = (
            self.phase_index,
            self.S.freeze(),
            self.T.freeze(),
            done,
        )
        # One packed broadcast: Theta(t) recipients share one payload
        # object; the engine never materialises per-copy Send tuples.
        recipients = self._U.copy()
        recipients.discard(self.pid)
        return Broadcast(recipients, payload, MessageKind.AGREEMENT)

    def _agree_round(self, round_number: int) -> Action:
        if self._cbuffer:
            return self._agree_round_fast(round_number)
        received: Dict[int, AgreePayload] = {}
        saw_done = False
        phase = self.phase_index
        for envelope in sorted(self._buffer, key=attrgetter("sent_round")):
            payload = envelope.payload
            if payload[0] != phase:
                continue
            src = envelope.src
            previous = received.get(src)
            if previous is None or payload[3] or not previous[3]:
                received[src] = payload
                saw_done = saw_done or payload[3]
        self._buffer.clear()

        # Lines 8-10: fold in ongoing views (word-parallel bitwise ops).
        # Iterating the received dict instead of the u-snapshot is
        # equivalent - the guard admits exactly the same (pid, payload)
        # pairs, and & / | folds commute - but skips the Theta(t) bitset
        # walk per round.  The fold itself runs on raw backing ints:
        # Theta(t) snapshots are intersected per round, so even the
        # per-operand method dispatch of the bitset classes shows up.
        snapshot_bits = self._u_snapshot.to_int() & ~(1 << self.pid)
        s_bits = self.S.to_int()
        t_bits = self.T.to_int()
        for pid, payload in received.items():
            if not payload[3] and (snapshot_bits >> pid) & 1:
                s_bits &= payload[1]._bits
                t_bits |= payload[2]._bits
        self.S = IntBitset(s_bits)
        self.T = IntBitset(t_bits)
        # Lines 11-14: adopt a decided view outright.
        if saw_done:
            for pid in sorted(received):
                payload = received[pid]
                if payload[3]:
                    self.S = payload[1].thaw()
                    self.T = payload[2].thaw()
                    self._agree_done = True
        # Lines 15-16: silent processes are faulty (after the grace
        # round).  Silent = snapshot minus the heard-from set minus self,
        # removed in one masked update rather than a per-pid loop.
        if self._round_var >= 1:
            heard = IntBitset.from_iterable(received)
            heard.add(self.pid)
            self._U -= self._u_snapshot - heard
        return self._agree_tail(round_number)

    def _agree_round_fast(self, round_number: int) -> Action:
        """The columnar twin of :meth:`_agree_round`'s receive half.

        Operates on the buffered (rows, payload_ids) batches without
        materialising envelopes.  The buffer is already stamp-sorted:
        drains hand out rows in ascending row order, the per-recipient
        cursor is monotonic, and stamps are non-decreasing in row order,
        so the slow path's stable ``sorted`` is the identity here.
        Every rule below is the exact vectorized image of a slow-path
        line; ``tests/test_differential_fuzz.py`` pins the equivalence.
        """
        store = self._cstore
        cache = store.cache("protocol-d", lambda: _AgreeCache(self.n, self.t))
        batches = self._cbuffer
        if len(batches) == 1:
            rows, payload_ids = batches[0]
        else:
            rows = np.concatenate([batch[0] for batch in batches])
            payload_ids = np.concatenate([batch[1] for batch in batches])
        batches.clear()
        # Receipt kept ``phase >= phase_index``; processing uses only the
        # current phase (later-phase strays are dropped with the buffer,
        # exactly like the slow path's ``payload[0] != phase`` skip).
        keep = cache.phase[payload_ids] == self.phase_index
        if not keep.all():
            rows = rows[keep]
            payload_ids = payload_ids[keep]
        if len(rows) == 0:
            return self._agree_tail_empty(round_number)
        srcs = store._src[rows]
        done = cache.done[payload_ids]
        # Per-src dedup: last payload wins, done payloads are never
        # displaced - the slow path's ``previous is None or payload[3]
        # or not previous[3]`` update rule.
        winners = dedup_last_wins(srcs, done)
        w_src = srcs[winners]
        w_done = done[winners]
        w_pid = payload_ids[winners]
        saw_done = bool(done.any())
        # Lines 8-10: fold in ongoing views (word-parallel, batched
        # across all admitted senders via one reduce per component).
        snapshot_bits = self._u_snapshot.to_int() & ~(1 << self.pid)
        snap_words = int_to_words(snapshot_bits, cache.width_t)
        admitted = ~w_done & bit_test(snap_words, w_src).astype(bool)
        if admitted.any():
            admitted_ids = w_pid[admitted]
            s_fold = np.bitwise_and.reduce(cache.s_words[admitted_ids], axis=0)
            t_fold = np.bitwise_or.reduce(cache.t_words[admitted_ids], axis=0)
            self.S = IntBitset(self.S.to_int() & words_to_int(s_fold))
            self.T = IntBitset(self.T.to_int() | words_to_int(t_fold))
        # Lines 11-14: adopt a decided view outright (winners ascend by
        # src, so the highest done src wins - as in the slow loop).
        if saw_done:
            adopted = store.payload(int(w_pid[np.nonzero(w_done)[0][-1]]))
            self.S = adopted[1].thaw()
            self.T = adopted[2].thaw()
            self._agree_done = True
        # Lines 15-16: silent processes are faulty (after the grace round).
        if self._round_var >= 1:
            heard_bits = or_srcs_mask(w_src, cache.width_t) | (1 << self.pid)
            self._U -= IntBitset(self._u_snapshot.to_int() & ~heard_bits)
        return self._agree_tail(round_number)

    def _agree_tail_empty(self, round_number: int) -> Action:
        """Nothing received this round: only the silent-removal and
        decide rules run (the slow path with an empty ``received``)."""
        if self._round_var >= 1:
            self._U -= self._u_snapshot - IntBitset.singleton(self.pid)
        return self._agree_tail(round_number)

    def _agree_tail(self, round_number: int) -> Action:
        # Lines 17-18: decide when the live set is stable.
        if (
            not self._agree_done
            and self._round_var >= 1
            and self._U == self._u_snapshot
        ):
            self._agree_done = True
        self._round_var += 1

        if self._agree_done:
            sends = self._agree_broadcast(done=True)
            return self._finish_phase(round_number, sends)
        self._u_snapshot = self._U.copy()
        return Action(sends=self._agree_broadcast(done=False))

    def _finish_phase(self, round_number: int, sends: Broadcast) -> Action:
        threshold = self.revert_threshold * len(self._T_prev)
        if self.S and len(self.T) < threshold:
            self._enter_revert(round_number + 1)
            return Action(sends=sends)
        if not self.S:
            return Action(sends=sends, halt=True)
        self._setup_work_phase(start_round=round_number + 1)
        return Action(sends=sends)

    # ---- reversion to Protocol A ---------------------------------------------------

    def _enter_revert(self, start_round: int) -> None:
        self.state = _REVERT
        self.reverted = True
        self._revert_members = list(self.T)   # ascending iteration
        self._revert_units = list(self.S)
        rank = self._revert_members.index(self.pid)
        # Extra slack absorbs the <=1 round skew between deciders.
        self._inner = ProtocolAProcess(
            rank,
            len(self._revert_members),
            len(self._revert_units),
            epoch=start_round,
            slack=self.slack + 4,
        )

    def _revert_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        assert self._inner is not None
        rank_of = {pid: rank for rank, pid in enumerate(self._revert_members)}
        translated = [
            Envelope(
                src=rank_of[env.src],
                dst=rank_of[self.pid],
                payload=env.payload,
                kind=env.kind,
                sent_round=env.sent_round,
            )
            for env in inbox
            if env.kind in _INNER_KINDS and env.src in rank_of
        ]
        action = self._inner.on_round(round_number, translated)
        work = (
            self._revert_units[action.work - 1] if action.work is not None else None
        )
        sends = action.sends
        if isinstance(sends, Broadcast):
            # Rank-to-pid translation is monotonic (members ascend), so
            # the remapped broadcast stays packed.
            sends = sends.remap(self._revert_members)
        else:
            sends = [
                Send(self._revert_members[send.dst], send.payload, send.kind)
                for send in sends
            ]
        return Action(work=work, sends=sends, halt=action.halt)


def build_protocol_d(
    n: int,
    t: int,
    *,
    revert_threshold: float = 0.5,
    slack: int = 2,
) -> List[ProtocolDProcess]:
    """Construct the full set of Protocol D processes."""
    return [
        ProtocolDProcess(
            pid, t, n, revert_threshold=revert_threshold, slack=slack
        )
        for pid in range(t)
    ]
