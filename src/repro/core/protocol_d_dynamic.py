"""Dynamic-workload Protocol D (Section 4 remark; U.S. Patent 5,513,354).

"It is not too hard to modify our last algorithm to deal with a more
realistic scenario, where work is continually coming in to different
sites of the system, and is not initially common knowledge.  [...]
Essentially, the idea is to run Eventual Byzantine Agreement
periodically (where the length of the period depends on the size of the
work load)."

This module implements that modification.  Work units *arrive* at
individual sites over time (an arrival schedule maps rounds to
(site, unit) pairs); nobody initially knows the whole pool.  Execution
proceeds in fixed-length cycles aligned on global round numbers:

* each cycle opens with an agreement sub-phase - the same early-stopping
  exchange as Protocol D, except that views now carry (known units,
  completed units, live set) and *known* units are unioned (new arrivals
  propagate) while completed units are unioned and subtracted;
* the rest of the cycle is a work sub-phase on the agreed outstanding
  pool, split by rank among the agreed-live processes;
* units assigned to a process that crashes mid-cycle simply remain
  outstanding (its completion report never merges) and are reassigned in
  the next cycle.

Processes halt at the first cycle boundary where agreement shows no
outstanding and no future arrivals remain (the arrival horizon is a
simulation parameter - a real deployment would run forever).
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.sim.actions import Action, Broadcast, Envelope, MessageKind
from repro.sim.bitset import IntBitset
from repro.sim.columnar import (
    KIND_CODES,
    ColumnarInbox,
    bit_test,
    dedup_last_wins,
    int_to_words,
    np,
    or_srcs_mask,
    words_to_int,
)
from repro.sim.process import Process

Arrival = Tuple[int, int, int]  # (round, site pid, unit)

_AGREE = "agree"
_WORK = "work"


class _DynAgreeCache:
    """Columnar decoded-payload cache for the dynamic agreement fold.

    The dynamic payload is ``(cycle_start, known, done, live, flag)``;
    ``known``/``done`` are unit sets (bounded by the schedule's largest
    unit, shared by every process of a run), ``live`` is a pid set.
    ``cycle`` is object dtype: cycle starts are round numbers, which the
    arrival schedule may place arbitrarily far out (``None`` marks
    non-AGREEMENT payload ids - it never equals a cycle start).
    """

    __slots__ = (
        "width_n", "width_t", "filled",
        "cycle", "flag", "known_words", "done_words", "live_words",
    )

    def __init__(self, schedule: "ArrivalSchedule", t: int):
        max_unit = max(schedule.units, default=0)
        self.width_n = (max_unit + 64) >> 6
        self.width_t = max(1, (t + 63) >> 6)
        self.filled = 0
        capacity = 256
        self.cycle = np.full(capacity, None, dtype=object)
        self.flag = np.zeros(capacity, dtype=bool)
        self.known_words = np.zeros((capacity, self.width_n), dtype=np.uint64)
        self.done_words = np.zeros((capacity, self.width_n), dtype=np.uint64)
        self.live_words = np.zeros((capacity, self.width_t), dtype=np.uint64)

    def ensure(self, store) -> None:
        total = store.payload_count()
        if self.filled >= total:
            return
        if total > len(self.cycle):
            capacity = len(self.cycle)
            while capacity < total:
                capacity *= 2
            cycle = np.full(capacity, None, dtype=object)
            cycle[: self.filled] = self.cycle[: self.filled]
            self.cycle = cycle
            for name, width in (
                ("flag", 0),
                ("known_words", self.width_n),
                ("done_words", self.width_n),
                ("live_words", self.width_t),
            ):
                old = getattr(self, name)
                shape = (capacity, width) if width else capacity
                new = np.zeros(shape, dtype=old.dtype)
                new[: self.filled] = old[: self.filled]
                setattr(self, name, new)
        code = KIND_CODES[MessageKind.AGREEMENT]
        bytes_n, bytes_t = self.width_n * 8, self.width_t * 8
        for payload_id in range(self.filled, total):
            if store.payload_kind_code(payload_id) != code:
                continue
            payload = store.payload(payload_id)
            self.cycle[payload_id] = payload[0]
            self.flag[payload_id] = payload[4]
            self.known_words[payload_id] = np.frombuffer(
                payload[1]._bits.to_bytes(bytes_n, "little"), dtype="<u8"
            )
            self.done_words[payload_id] = np.frombuffer(
                payload[2]._bits.to_bytes(bytes_n, "little"), dtype="<u8"
            )
            self.live_words[payload_id] = np.frombuffer(
                payload[3]._bits.to_bytes(bytes_t, "little"), dtype="<u8"
            )
        self.filled = total


class ArrivalSchedule:
    """Immutable arrival plan shared by all processes of one run."""

    def __init__(self, arrivals: Iterable[Arrival]):
        self.arrivals: List[Arrival] = sorted(arrivals)
        seen: Set[int] = set()
        for _, _, unit in self.arrivals:
            if unit in seen:
                raise ConfigurationError(f"unit {unit} arrives twice")
            seen.add(unit)
        self.units: FrozenSet[int] = frozenset(seen)
        self.horizon: int = max((rnd for rnd, _, _ in self.arrivals), default=0)

    def at_site(self, pid: int) -> List[Tuple[int, int]]:
        """(round, unit) pairs arriving at ``pid``."""
        return [(rnd, unit) for rnd, site, unit in self.arrivals if site == pid]

    @property
    def total_units(self) -> int:
        return len(self.units)


class DynamicProtocolDProcess(Process):
    """One site of the dynamic-workload variant."""

    def __init__(
        self,
        pid: int,
        t: int,
        schedule: ArrivalSchedule,
        *,
        cycle_length: int = 16,
    ):
        super().__init__(pid, t)
        if cycle_length < 4:
            raise ConfigurationError(
                f"cycle must fit an agreement exchange; got {cycle_length}"
            )
        self.schedule = schedule
        self.cycle_length = cycle_length
        self._pending_arrivals = sorted(schedule.at_site(pid))
        self.known: IntBitset = IntBitset()
        #: Arrivals observed since the current agreement began.  They are
        #: folded into ``known`` only when the *next* agreement starts:
        #: mid-agreement, ``known`` is shared protocol state (adopting a
        #: decider's view replaces it), so a unit absorbed directly could
        #: be silently erased - and this site may be its only knower.
        self._arrived_buffer: IntBitset = IntBitset()
        self.done: IntBitset = IntBitset()
        self.live: IntBitset = IntBitset.from_range(0, t)
        self.state = _AGREE
        self._cycle_start = 0
        self._first_cycle = True
        # Agreement sub-state (pipelined exchange, as in Protocol D).
        self._U: IntBitset = self.live.copy()
        self._u_snapshot: IntBitset = IntBitset()
        self._round_var = 0
        self._agree_done = False
        self._broadcast_pending = True
        # Work sub-state.
        self._share: List[int] = []
        self._share_index = 0

    # ---- arrivals -----------------------------------------------------

    def _absorb_arrivals(self, round_number: int) -> None:
        while self._pending_arrivals and self._pending_arrivals[0][0] <= round_number:
            _, unit = self._pending_arrivals.pop(0)
            self._arrived_buffer.add(unit)

    # ---- scheduling ------------------------------------------------------

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self.state == _AGREE:
            return 0  # agreement acts every round
        if self._share_index < len(self._share):
            return 0
        next_points = [self._cycle_start + self.cycle_length]
        if self._pending_arrivals:
            next_points.append(self._pending_arrivals[0][0])
        return min(next_points)

    # ---- round dispatch ----------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        self._absorb_arrivals(round_number)
        if self.state == _WORK and round_number >= self._cycle_start + self.cycle_length:
            self._enter_agree(round_number)
        if self.state == _AGREE:
            return self._agree_round(round_number, inbox)
        return self._work_round()

    # ---- agreement sub-phase --------------------------------------------------

    def _enter_agree(self, round_number: int) -> None:
        self.state = _AGREE
        self._cycle_start = round_number
        self._U = self.live.copy()
        self.live = IntBitset.singleton(self.pid)
        self._agree_done = False
        self._round_var = 1 if self._first_cycle else 0
        self._first_cycle = False
        self._broadcast_pending = True

    def _payload(self, done_flag: bool) -> tuple:
        return (
            self._cycle_start,
            self.known.freeze(),
            self.done.freeze(),
            self.live.freeze(),
            done_flag,
        )

    def _agree_broadcast(self, done_flag: bool) -> Broadcast:
        recipients = self._U.copy()
        recipients.discard(self.pid)
        return Broadcast(recipients, self._payload(done_flag), MessageKind.AGREEMENT)

    def _agree_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        if self._broadcast_pending:
            # First round of the cycle's agreement: announce buffered
            # arrivals, then broadcast.
            self.known |= self._arrived_buffer
            self._arrived_buffer.clear()
            self._broadcast_pending = False
            self._u_snapshot = self._U.copy()
            return Action(sends=self._agree_broadcast(False))
        if isinstance(inbox, ColumnarInbox) and len(inbox):
            return self._agree_round_fast(round_number, inbox)
        received: Dict[int, tuple] = {}
        for envelope in sorted(inbox, key=attrgetter("sent_round")):
            if envelope.kind is not MessageKind.AGREEMENT:
                continue
            payload = envelope.payload
            if payload[0] != self._cycle_start:
                continue  # a laggard's stale cycle; arrivals re-sync us
            previous = received.get(envelope.src)
            if previous is None or payload[4] or not previous[4]:
                received[envelope.src] = payload
        # Same fold shape as Protocol D's agreement round: iterate the
        # received dict (the union/intersection folds commute), adopt a
        # decided view only when one arrived, and remove silent senders
        # with one masked update.
        snapshot = self._u_snapshot
        adopted = None
        for pid, payload in received.items():
            if payload[4]:
                continue
            if pid != self.pid and pid in snapshot:
                self.known |= payload[1]
                self.done |= payload[2]
                self.live |= payload[3]
        for pid in sorted(received):
            payload = received[pid]
            if payload[4]:
                adopted = payload
        if adopted is not None:
            self.known = adopted[1].thaw()
            self.done = adopted[2].thaw()
            self.live = adopted[3].thaw()
            self._agree_done = True
        if self._round_var >= 1:
            heard = IntBitset.from_iterable(received)
            heard.add(self.pid)
            self._U -= snapshot - heard
        return self._agree_tail(round_number)

    def _agree_round_fast(self, round_number: int, inbox: ColumnarInbox) -> Action:
        """Columnar twin of the receive half above: same dedup, fold,
        adoption and silent-removal rules, evaluated on the store's
        decoded-payload columns without materialising envelopes.  A
        drain's rows ascend and stamps are non-decreasing in row order,
        so the slow path's stable ``sorted`` is the identity here.
        """
        store = inbox.store
        cache = store.cache(
            "protocol-d-dynamic", lambda: _DynAgreeCache(self.schedule, self.t)
        )
        cache.ensure(store)
        payload_ids = inbox.payload_ids()
        # Cycle filter doubles as the kind filter: non-AGREEMENT ids
        # keep the None sentinel, which equals no cycle start.
        keep = cache.cycle[payload_ids] == self._cycle_start
        if not keep.any():
            return self._agree_tail_empty(round_number)
        payload_ids = payload_ids[keep]
        srcs = store._src[inbox.rows[keep]]
        flags = cache.flag[payload_ids]
        winners = dedup_last_wins(srcs, flags)
        w_src = srcs[winners]
        w_flag = flags[winners]
        w_pid = payload_ids[winners]
        snapshot_bits = self._u_snapshot.to_int() & ~(1 << self.pid)
        snap_words = int_to_words(snapshot_bits, cache.width_t)
        admitted = ~w_flag & bit_test(snap_words, w_src).astype(bool)
        if admitted.any():
            admitted_ids = w_pid[admitted]
            known_fold = np.bitwise_or.reduce(cache.known_words[admitted_ids], axis=0)
            done_fold = np.bitwise_or.reduce(cache.done_words[admitted_ids], axis=0)
            live_fold = np.bitwise_or.reduce(cache.live_words[admitted_ids], axis=0)
            self.known = IntBitset(self.known.to_int() | words_to_int(known_fold))
            self.done = IntBitset(self.done.to_int() | words_to_int(done_fold))
            self.live = IntBitset(self.live.to_int() | words_to_int(live_fold))
        if w_flag.any():
            # Winners ascend by src; the highest flagged src's view wins,
            # matching the slow path's sorted adoption loop.
            adopted = store.payload(int(w_pid[np.nonzero(w_flag)[0][-1]]))
            self.known = adopted[1].thaw()
            self.done = adopted[2].thaw()
            self.live = adopted[3].thaw()
            self._agree_done = True
        if self._round_var >= 1:
            heard_bits = or_srcs_mask(w_src, cache.width_t) | (1 << self.pid)
            self._U -= IntBitset(self._u_snapshot.to_int() & ~heard_bits)
        return self._agree_tail(round_number)

    def _agree_tail_empty(self, round_number: int) -> Action:
        if self._round_var >= 1:
            self._U -= self._u_snapshot - IntBitset.singleton(self.pid)
        return self._agree_tail(round_number)

    def _agree_tail(self, round_number: int) -> Action:
        if (
            not self._agree_done
            and self._round_var >= 1
            and self._U == self._u_snapshot
        ):
            self._agree_done = True
        self._round_var += 1
        if self._agree_done:
            sends = self._agree_broadcast(True)
            return self._finish_agreement(round_number, sends)
        self._u_snapshot = self._U.copy()
        return Action(sends=self._agree_broadcast(False))

    def _finish_agreement(self, round_number: int, sends: Broadcast) -> Action:
        outstanding = self.known - self.done
        no_more_arrivals = round_number >= self.schedule.horizon
        if (
            not outstanding
            and no_more_arrivals
            and not self._pending_arrivals
            and not self._arrived_buffer
        ):
            return Action(sends=sends, halt=True)
        # Rank-sliced share straight off the bitsets, as in Protocol D's
        # _setup_work_phase: no O(n) member list per process per cycle.
        team = len(self.live)
        per_process = math.ceil(len(outstanding) / team) if team else 0
        if per_process == 0 or self.pid not in self.live:
            self._share = []
        else:
            rank = self.live.count_below(self.pid)
            self._share = outstanding.select(rank * per_process, per_process)
        self._share_index = 0
        self.state = _WORK
        return Action(sends=sends)

    # ---- work sub-phase ----------------------------------------------------------

    def _work_round(self) -> Action:
        if self._share_index < len(self._share):
            unit = self._share[self._share_index]
            self._share_index += 1
            self.done.add(unit)
            return Action(work=unit)
        return Action.idle()


def build_dynamic_protocol_d(
    t: int,
    schedule: ArrivalSchedule,
    *,
    cycle_length: int = 16,
) -> List[DynamicProtocolDProcess]:
    return [
        DynamicProtocolDProcess(pid, t, schedule, cycle_length=cycle_length)
        for pid in range(t)
    ]


def uniform_arrivals(
    n: int, t: int, *, every: int = 3, start: int = 0
) -> ArrivalSchedule:
    """A convenient schedule: unit ``u`` arrives at site ``u mod t`` at
    round ``start + (u - 1) * every``."""
    return ArrivalSchedule(
        (start + (unit - 1) * every, (unit - 1) % t, unit) for unit in range(1, n + 1)
    )


def build_dynamic_protocol_d_from_spec(
    n: int,
    t: int,
    *,
    schedule=None,
    cycle_length: int = 16,
) -> List[DynamicProtocolDProcess]:
    """Registry-compatible builder: ``(n, t)`` plus a declarative
    *schedule spec* (see :mod:`repro.sim.specs`) instead of a live
    :class:`ArrivalSchedule`.

    This is what makes the dynamic variant addressable as ``D-dynamic``
    from :class:`repro.api.Scenario`, the CLI, sweeps and suites::

        Scenario(protocol="D-dynamic", n=12, t=4,
                 options={"schedule": "arrivals:0x8,3x4"}).run()

    ``schedule=None`` means the uniform default (one unit every third
    round, sites round-robin).
    """
    from repro.sim.specs import schedule_from_spec

    return build_dynamic_protocol_d(
        t, schedule_from_spec(n, t, schedule), cycle_length=cycle_length
    )
