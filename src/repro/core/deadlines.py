"""The deadline algebra of the three sequential protocols.

All takeover logic in Protocols A, B and C is driven by timeout
functions:

* Protocol A: ``DD(j) = j * (n + 3t)`` - process ``j`` becomes active at
  round ``DD(j)`` if it has not learned the work is done.
* Protocol B: ``PTO``, ``GTO``, ``DDB`` and ``TT`` - deadlines relative
  to the last heard message, refined with go-ahead polling.
* Protocol C: ``D(i, m) = K (n + t - m) 2^{n+t-1-m}`` - deadlines keyed
  on the *reduced view* ``m``, with ``K = 5t + 2 log t`` bounding how
  long any process waits before first hearing from an active process.

The paper notes explicitly (Section 3.1) that any upper bound may be
substituted for its timeout constants without affecting correctness;
we keep the paper's closed forms, generalised to arbitrary ``t`` (group
size ``gs = ceil(sqrt(t))``, subchunk bound ``Wsub = ceil(n/t)``), plus a
small additive ``slack`` that absorbs the discrete-engine cases where
processes enter a protocol up to one round apart (Protocol D's reversion
path).  Larger deadlines only delay takeovers - they never violate
safety - and the measured round complexities in EXPERIMENTS.md are
reported against both the paper's constants and the implemented ones.

The identities of Lemma 2.5 (``TT(j,k) + TT(l,j) = TT(l,k)`` and
``TT(j,k) + DDB(l,j) = DDB(l,k)`` for ``g_j < g_l``) hold for the
generalised forms by construction; the property-based tests verify them
exhaustively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.groups import SqrtGroups
from repro.errors import ConfigurationError

#: Extra rounds added to every takeover deadline.  Two rounds cover the
#: worst-case skew when a protocol instance is started by processes that
#: decided in adjacent rounds (Protocol D reversion); for standalone runs
#: the slack merely delays takeovers by a constant.
DEFAULT_SLACK = 2


@dataclass(frozen=True)
class ProtocolADeadlines:
    """Deadline function of Protocol A."""

    n: int
    t: int
    slack: int = DEFAULT_SLACK

    @property
    def active_budget(self) -> int:
        """Upper bound on rounds any process spends active.

        Lemma 2.1: at most ``n`` work rounds, ``t`` partial-checkpoint
        rounds and fewer than ``2t`` full-checkpoint rounds.
        """
        return self.n + 3 * self.t + self.slack

    def DD(self, pid: int) -> int:
        """Round at which ``pid`` becomes active if it heard nothing."""
        if pid < 0:
            raise ConfigurationError(f"pid must be non-negative, got {pid}")
        return pid * self.active_budget

    def retirement_bound(self) -> int:
        """Theorem 2.3(c) generalised: all processes retired by this round."""
        return self.t * self.active_budget


@dataclass(frozen=True)
class ProtocolBDeadlines:
    """Deadline functions of Protocol B (Section 2.3).

    ``PTO`` ("process time out"): ``PTO - 1`` bounds the stamp-round gap
    between successive messages a group member hears from an active
    process in its own group.

    ``GTO(i)`` ("group time out"): ``GTO(i) - 1`` bounds the rounds
    before a process in a *later* group hears from some process ``>= i``
    of ``i``'s group, if any of them is active: the remainder of a chunk
    (``gs`` subchunks of work plus their partial checkpoints), the full
    checkpoint sweep across groups, and up to ``gs - pos(i) - 1``
    intra-group takeovers of ``PTO`` rounds each.

    ``DDB(j, i)``: rounds after last hearing from ``i`` at which ``j``
    becomes *preactive*.  ``TT(j, i)``: rounds after which ``j`` is
    guaranteed to have become active (preactive phase plus go-ahead
    polling at ``PTO`` intervals).
    """

    n: int
    t: int
    slack: int = DEFAULT_SLACK

    def __post_init__(self) -> None:
        object.__setattr__(self, "_groups", SqrtGroups(self.t))

    @property
    def groups(self) -> SqrtGroups:
        return self._groups  # type: ignore[attr-defined]

    @property
    def work_per_subchunk(self) -> int:
        return -(-self.n // self.t) if self.t else 0

    @property
    def PTO(self) -> int:
        return self.work_per_subchunk + 2 + self.slack

    def GTO(self, pid: int) -> int:
        gs = self.groups.group_size
        ng = self.groups.num_groups
        pos = self.groups.position_in_group(pid)
        chunk_rounds = gs * (self.work_per_subchunk + 1)
        full_checkpoint_rounds = 2 * (ng + 1)
        takeover_rounds = (gs - pos - 1) * self.PTO
        return chunk_rounds + full_checkpoint_rounds + takeover_rounds + 1 + self.slack

    @property
    def GTO_first(self) -> int:
        """GTO at position 0 - the paper's ``GTO(0)``."""
        gs = self.groups.group_size
        ng = self.groups.num_groups
        chunk_rounds = gs * (self.work_per_subchunk + 1)
        full_checkpoint_rounds = 2 * (ng + 1)
        return chunk_rounds + full_checkpoint_rounds + (gs - 1) * self.PTO + 1 + self.slack

    def DDB(self, j: int, i: int) -> int:
        gj, gi = self.groups.group_of(j), self.groups.group_of(i)
        if gj == gi:
            return self.PTO
        if gj < gi:
            raise ConfigurationError(
                f"DDB is defined for j in a group >= i's (j={j} in g{gj}, i={i} in g{gi})"
            )
        return self.GTO(i) + (gj - gi - 1) * self.GTO_first

    def TT(self, j: int, i: int) -> int:
        gj, gi = self.groups.group_of(j), self.groups.group_of(i)
        pos_j = self.groups.position_in_group(j)
        if gj == gi:
            pos_i = self.groups.position_in_group(i)
            return (pos_j - pos_i) * self.PTO
        return self.DDB(j, i) + pos_j * self.PTO

    def retirement_bound(self) -> int:
        """Theorem 2.8(c) generalised: ``n + 3t + TT(t-1, 0)`` plus the
        active budget consumed before the last takeover."""
        last = self.t - 1
        return self.n + 3 * self.t + self.slack + (self.TT(last, 0) if last > 0 else 0)


@dataclass(frozen=True)
class ProtocolCDeadlines:
    """Deadline function of Protocol C (Section 3.1).

    ``K`` bounds the rounds between a process becoming active and every
    non-retired process having received a message from it: fault
    detection costs at most ``2(t + log t)`` poll rounds plus ``t``
    failure-report rounds, and the first ``t`` reported units of level-0
    work cost at most ``2t`` rounds - the paper's ``K = 5t + 2 log t``.
    With batched level-0 reporting (Corollary 3.9) a full cycle through
    the level-1 group takes ``n + t`` work/report rounds instead of
    ``2t``, giving the paper's ``K = 2n + 3t + 2 log t``.

    ``n`` and ``t`` here are the *real* counts; when ``t`` is padded to a
    power of two for the level structure, reduced views count only real
    faults so ``m`` still ranges over ``0 .. n + t - 1``.
    """

    n: int
    t: int
    batched: bool = False
    slack: int = DEFAULT_SLACK

    @property
    def log_t(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.t))))

    @property
    def K(self) -> int:
        if self.batched:
            return 2 * self.n + 3 * self.t + 2 * self.log_t + self.slack
        return 5 * self.t + 2 * self.log_t + self.slack

    @property
    def max_reduced_view(self) -> int:
        return self.n + self.t - 1

    def D(self, pid: int, m: int) -> int:
        """Rounds process ``pid`` waits after reaching reduced view ``m``."""
        if m < 0 or m > self.max_reduced_view:
            raise ConfigurationError(
                f"reduced view {m} outside 0..{self.max_reduced_view}"
            )
        if m >= 1:
            return self.K * (self.n + self.t - m) * (1 << (self.n + self.t - 1 - m))
        return self.K * (self.t - pid) * (self.n + self.t) * (1 << (self.n + self.t - 1))

    def retirement_bound(self) -> int:
        """Lemma 3.5 / Theorem 3.8(c) shape: ``t K (n+t) 2^{n+t}``."""
        return self.t * self.K * (self.n + self.t) * (1 << (self.n + self.t))
