"""The sqrt(t) group structure of Protocols A and B.

The paper divides the ``t`` processes into ``sqrt(t)`` groups of size
``sqrt(t)``, assuming ``t`` is a perfect square "for ease of exposition".
We implement the general case: group size ``gs = ceil(sqrt(t))`` and
``ng = ceil(t / gs)`` consecutive groups, the last possibly smaller.
Groups are 1-indexed to match the paper's ``g_i = ceil((i+1)/sqrt(t))``.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError


class SqrtGroups:
    """Partition of processes ``0..t-1`` into consecutive sqrt-size groups."""

    def __init__(self, t: int):
        if t < 1:
            raise ConfigurationError(f"need at least one process, got t={t}")
        self.t = t
        self.group_size = math.isqrt(t)
        if self.group_size * self.group_size < t:
            self.group_size += 1
        self.num_groups = -(-t // self.group_size)  # ceil division

    # ---- membership ----------------------------------------------------

    def group_of(self, pid: int) -> int:
        """1-indexed group of ``pid`` (the paper's ``g_i``)."""
        self._check_pid(pid)
        return pid // self.group_size + 1

    def members(self, group: int) -> List[int]:
        """All pids in 1-indexed ``group``, ascending."""
        self._check_group(group)
        start = (group - 1) * self.group_size
        end = min(start + self.group_size, self.t)
        return list(range(start, end))

    def group_start(self, group: int) -> int:
        self._check_group(group)
        return (group - 1) * self.group_size

    def position_in_group(self, pid: int) -> int:
        """0-based index of ``pid`` within its group (the paper's ``j-bar``)."""
        self._check_pid(pid)
        return pid - self.group_start(self.group_of(pid))

    def higher_members(self, pid: int) -> List[int]:
        """Members of ``pid``'s own group with larger pid.

        This is the recipient set of a partial checkpoint: the paper's
        "broadcast (c) to processes j+1, ..., g_j * sqrt(t) - 1".
        """
        group = self.group_of(pid)
        return [member for member in self.members(group) if member > pid]

    def lower_members(self, pid: int) -> List[int]:
        group = self.group_of(pid)
        return [member for member in self.members(group) if member < pid]

    def is_last_group(self, group: int) -> bool:
        self._check_group(group)
        return group == self.num_groups

    def groups_after(self, group: int) -> List[int]:
        """Groups strictly after ``group`` in checkpoint order."""
        self._check_group(group)
        return list(range(group + 1, self.num_groups + 1))

    # ---- validation ------------------------------------------------------

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.t:
            raise ConfigurationError(f"pid {pid} outside 0..{self.t - 1}")

    def _check_group(self, group: int) -> None:
        if not 1 <= group <= self.num_groups:
            raise ConfigurationError(
                f"group {group} outside 1..{self.num_groups}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SqrtGroups(t={self.t}, group_size={self.group_size}, "
            f"num_groups={self.num_groups})"
        )
