"""The naive knowledge-spreading algorithm of Section 3.

"The most naive implementation of this idea is the following: Process 0
begins by performing unit 1 of work and reporting this to process 1.
It then performs unit 2 and reports units 1 and 2 to process 2, and so
on, telling process i mod t about units 1 through i. [...] If process 0
crashes, we want the most knowledgeable alive process [...] to become
active.  [...] The most knowledgeable process then continues to perform
work, always informing the least knowledgeable process."

No fault detection is performed, which is exactly its downfall: "The
problem with this naive algorithm is that it requires O(n + t^2) work
and O(n + t^2) messages in the worst case" - each taker-over blindly
re-informs (and re-does the work last reported to) a chain of already
dead processes.  Protocol C exists to defeat this scenario; this module
implements the naive algorithm so the Theta(t^2) blow-up is measurable
(experiment E15) next to Protocol C's O(n + t log t).

Takeover discipline: deadlines keyed on the reduced view m (= units
known done; there is no fault knowledge to count), of the same shape as
Protocol C's, plus a pid-staggered tie-break.  Reports carry strictly
increasing m, so among live processes views are distinct except in the
know-nothing state, where the paper wants the highest pid to move first
- both properties the tie-break preserves.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Iterator, List, Optional, Tuple

from repro.core.deadlines import ProtocolCDeadlines
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, SendBatch, broadcast
from repro.sim.process import Process


class NaiveSpreadingProcess(Process):
    """One process of the naive knowledge-spreading algorithm."""

    def __init__(self, pid: int, t: int, n: int, *, epoch: int = 0, slack: int = 2):
        super().__init__(pid, t)
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        self.n = n
        self.epoch = epoch
        self.deadlines = ProtocolCDeadlines(n=n, t=t, slack=slack)
        self.work_next = 1          # next unit not known to be done
        self.last_informed = pid    # cyclic report pointer (own view)
        self._active = False
        self._script: Optional[Iterator[Tuple[Optional[int], SendBatch]]] = None
        self._deadline = epoch if pid == 0 else epoch + self._delay(0)

    # ---- deadlines -------------------------------------------------------

    def _delay(self, m: int) -> int:
        """Waiting time after reaching reduced view ``m``.

        Protocol C's ``D`` plus a pid tie-break smaller than one level
        gap, so equal views activate highest-pid-first and distinct
        views activate strictly most-knowledgeable-first.
        """
        base = self.deadlines.D(self.pid, min(m, self.deadlines.max_reduced_view))
        if m >= 1:
            return base + (self.t - 1 - self.pid) * self.deadlines.K
        return base

    # ---- scheduling ---------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._active and not self.retired

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self._active:
            return 0
        return self._deadline

    # ---- rounds ----------------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        for envelope in sorted(inbox, key=attrgetter("sent_round")):
            if envelope.kind is not MessageKind.ORDINARY:
                continue
            _, work_next, last_informed = envelope.payload
            if work_next > self.work_next:
                self.work_next = work_next
                self.last_informed = last_informed
            if not self._active:
                m = self.work_next - 1
                self._deadline = envelope.sent_round + self._delay(m)
        if not self._active and round_number >= self._deadline:
            self._active = True
            self._script = self._active_script()
        if self._active:
            assert self._script is not None
            try:
                work, sends = next(self._script)
            except StopIteration:
                return Action.halting()
            return Action(work=work, sends=sends)
        return Action.idle()

    def _active_script(self) -> Iterator[Tuple[Optional[int], SendBatch]]:
        while self.work_next <= self.n:
            unit = self.work_next
            yield unit, []
            self.work_next = unit + 1
            # Report to the cyclically next process - alive or not: the
            # naive algorithm has no notion of detected failures.
            target = (self.last_informed + 1) % self.t
            if target == self.pid:
                target = (target + 1) % self.t
            self.last_informed = target
            if self.t > 1:
                payload = ("naive", self.work_next, self.last_informed)
                yield None, broadcast((target,), payload, MessageKind.ORDINARY)


def build_naive_spreading(
    n: int, t: int, *, epoch: int = 0, slack: int = 2
) -> List[NaiveSpreadingProcess]:
    return [
        NaiveSpreadingProcess(pid, t, n, epoch=epoch, slack=slack)
        for pid in range(t)
    ]
