"""Protocol B (Section 2.3): effort O(n + t*sqrt(t)), time O(n + t).

Protocol B refines Protocol A's fixed takeover deadlines with *relative*
ones.  Process ``j`` tracks the last ordinary message it received (from
``i``, at stamp round ``r'``; the paper's fictitious round-0 message from
process 0 seeds the state).  If nothing arrives for ``DDB(j, i)`` rounds,
``j`` becomes **preactive**: it polls the lower-numbered processes of its
own group one by one with ``go ahead`` messages, waiting ``PTO`` rounds
between polls.  A live recipient becomes active immediately (its first
DoWork step is a broadcast that reaches ``j`` and sends ``j`` back to
passive); if nobody answers, ``j`` becomes active itself.  Once active, a
process runs exactly Protocol A's DoWork.

Theorem 2.8: at most ``3n`` work, at most ``10 t sqrt(t)`` messages
(ordinary plus at most one go-ahead per in-group pair), and every process
retires by round ``3n + 8t``.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Iterator, List, Optional

from repro.core.chunks import SubchunkPlan
from repro.core.deadlines import ProtocolBDeadlines
from repro.core.dowork import (
    Step,
    checkpoint_payload_subchunk,
    dowork_script,
    fictitious_initial_message,
)
from repro.core.groups import SqrtGroups
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, Send
from repro.sim.process import Process

_ORDINARY_KINDS = (MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT)

_INACTIVE = "inactive"
_PREACTIVE = "preactive"
_ACTIVE = "active"


class ProtocolBProcess(Process):
    """One process of Protocol B."""

    def __init__(
        self,
        pid: int,
        t: int,
        n: int,
        *,
        epoch: int = 0,
        slack: int = 2,
    ):
        super().__init__(pid, t)
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        self.n = n
        self.epoch = epoch
        self.groups = SqrtGroups(t)
        self.plan = SubchunkPlan(n, t, self.groups.group_size)
        self.deadlines = ProtocolBDeadlines(n=n, t=t, slack=slack)
        self.state = _INACTIVE
        self._script: Optional[Iterator[Step]] = None
        payload, sender, stamp = fictitious_initial_message(pid, self.groups)
        self.last_payload: tuple = payload
        self.last_sender: int = sender
        self.last_stamp: int = epoch + stamp
        # Preactive bookkeeping.
        self._next_tick: Optional[int] = None
        self._next_target: Optional[int] = None

    # ---- scheduling -----------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state == _ACTIVE and not self.retired

    def _inactive_deadline(self) -> int:
        if self.pid == 0:
            return self.epoch  # process 0 is active from round 0 by convention
        return self.last_stamp + self.deadlines.DDB(self.pid, self.last_sender)

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self.state == _ACTIVE:
            return 0
        if self.state == _PREACTIVE:
            return self._next_tick
        return self._inactive_deadline()

    # ---- round logic ------------------------------------------------------

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        got_ordinary, got_go_ahead, done_seen = self._absorb(inbox)
        if self.state == _ACTIVE:
            return self._step_script()
        if done_seen:
            return Action.halting()
        if got_go_ahead:
            return self._activate_and_step()
        if self.state == _PREACTIVE:
            if got_ordinary:
                # Someone is alive and working: become passive again.
                self.state = _INACTIVE
                self._next_tick = None
                self._next_target = None
                return Action.idle()
            return self._preactive_tick(round_number)
        # Inactive.
        if round_number >= self._inactive_deadline():
            if self.pid == 0:
                return self._activate_and_step()
            self._enter_preactive(round_number)
            return self._preactive_tick(round_number)
        return Action.idle()

    # ---- message handling ---------------------------------------------------

    def _absorb(self, inbox: List[Envelope]):
        got_ordinary = False
        got_go_ahead = False
        done_seen = False
        for envelope in sorted(inbox, key=attrgetter("sent_round")):
            if envelope.kind in _ORDINARY_KINDS:
                got_ordinary = True
                self.last_payload = envelope.payload
                self.last_sender = envelope.src
                self.last_stamp = envelope.sent_round
                if (
                    checkpoint_payload_subchunk(envelope.payload)
                    >= self.plan.num_subchunks
                ):
                    done_seen = True
            elif envelope.kind is MessageKind.GO_AHEAD:
                got_go_ahead = True
        return got_ordinary, got_go_ahead, done_seen

    # ---- preactive phase -------------------------------------------------------

    def _enter_preactive(self, round_number: int) -> None:
        self.state = _PREACTIVE
        self._next_tick = round_number
        sender_group = self.groups.group_of(self.last_sender)
        own_group = self.groups.group_of(self.pid)
        if sender_group != own_group:
            self._next_target = self.groups.group_start(own_group)
        else:
            self._next_target = self.last_sender + 1

    def _preactive_tick(self, round_number: int) -> Action:
        if round_number < (self._next_tick or 0):
            return Action.idle()  # woken early by an irrelevant message
        assert self._next_target is not None
        if self._next_target >= self.pid:
            return self._activate_and_step()
        target = self._next_target
        self._next_target = target + 1
        self._next_tick = round_number + self.deadlines.PTO
        return Action(
            sends=[Send(target, ("go_ahead",), MessageKind.GO_AHEAD)]
        )

    # ---- active phase -----------------------------------------------------------

    def _activate_and_step(self) -> Action:
        self.state = _ACTIVE
        self._next_tick = None
        self._next_target = None
        self._script = dowork_script(
            self.pid, self.groups, self.plan, self.last_payload, self.last_sender
        )
        return self._step_script()

    def _step_script(self) -> Action:
        assert self._script is not None
        try:
            work, sends = next(self._script)
        except StopIteration:
            return Action.halting()
        return Action(work=work, sends=sends)


def build_protocol_b(
    n: int, t: int, *, epoch: int = 0, slack: int = 2
) -> List[ProtocolBProcess]:
    """Construct the full set of Protocol B processes."""
    return [
        ProtocolBProcess(pid, t, n, epoch=epoch, slack=slack) for pid in range(t)
    ]
