"""Protocol registry and the one-call simulation runner.

This is the main entry point of the library::

    from repro import run_protocol
    from repro.sim.adversary import RandomCrashes

    result = run_protocol("B", n=200, t=16, adversary=RandomCrashes(5), seed=7)
    print(result.metrics.work_total, result.metrics.messages_total)

Names are case-insensitive.  Available protocols:

================  ==============================================  ==========
name              description                                     paper ref
================  ==============================================  ==========
``A``             checkpointing, effort O(n + t^1.5)              Section 2.1
``B``             A + go-ahead polling, time O(n + t)             Section 2.3
``C``             recursive fault detection, O(n + t log t) msgs  Section 3
``C-batched``     C reporting every n/t units, O(t log t) msgs    Cor. 3.9
``D``             parallel work + agreement phases, time-optimal  Section 4
``replicate``     every process does everything                   Section 1
``naive``         single worker, checkpoint-all every k units     Sections 1-2
================  ==============================================  ==========
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Adversary, Engine
from repro.sim.metrics import RunResult
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

Builder = Callable[..., List[Process]]

_BUILDERS: Dict[str, Builder] = {}
#: Protocols for which the engine asserts the paper's at-most-one-active
#: invariant on every round.
_SINGLE_ACTIVE = {"a", "b", "c", "c-batched", "c-naive", "naive"}


def register(name: str, builder: Builder) -> None:
    """Register a protocol builder under ``name`` (case-insensitive)."""
    _BUILDERS[name.lower()] = builder


def available_protocols() -> List[str]:
    return sorted(_BUILDERS)


def build_processes(name: str, n: int, t: int, **options) -> List[Process]:
    key = name.lower()
    if key not in _BUILDERS:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return _BUILDERS[key](n, t, **options)


def run_protocol(
    name: str,
    n: int,
    t: int,
    *,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    strict_invariants: Optional[bool] = None,
    allow_total_failure: bool = False,
    max_steps: int = 5_000_000,
    max_rounds: Optional[int] = None,
    trace: Optional[Trace] = None,
    unit_effect=None,
    **options,
) -> RunResult:
    """Build, run and account one execution of ``name`` on ``n`` units and
    ``t`` processes.  Returns a :class:`~repro.sim.metrics.RunResult`."""
    processes = build_processes(name, n, t, **options)
    tracker = WorkTracker(n)
    if strict_invariants is None:
        strict_invariants = name.lower() in _SINGLE_ACTIVE
    engine = Engine(
        processes,
        tracker=tracker,
        adversary=adversary,
        seed=seed,
        strict_invariants=strict_invariants,
        allow_total_failure=allow_total_failure,
        max_steps=max_steps,
        max_rounds=max_rounds,
        trace=trace,
        unit_effect=unit_effect,
    )
    return engine.run()


def _register_builtins() -> None:
    from repro.core.baselines import build_naive_checkpoint, build_replicate
    from repro.core.protocol_a import build_protocol_a

    register("A", build_protocol_a)
    register("replicate", build_replicate)
    register("naive", build_naive_checkpoint)
    try:
        from repro.core.protocol_c_naive import build_naive_spreading

        register("C-naive", build_naive_spreading)
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_b import build_protocol_b

        register("B", build_protocol_b)
    except ImportError:  # pragma: no cover - during incremental development
        pass
    try:
        from repro.core.protocol_c import build_protocol_c, build_protocol_c_batched

        register("C", build_protocol_c)
        register("C-batched", build_protocol_c_batched)
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_d import build_protocol_d

        register("D", build_protocol_d)
    except ImportError:  # pragma: no cover
        pass


_register_builtins()
