"""Engine-aware protocol registry and the one-call simulation runner.

The classic entry point of the library is :func:`run_protocol`::

    from repro import run_protocol
    from repro.sim.adversary import RandomCrashes

    result = run_protocol("B", n=200, t=16, adversary=RandomCrashes(5), seed=7)
    print(result.metrics.work_total, result.metrics.messages_total)

The declarative entry point - covering asynchronous runs, adversary and
delay-model specs, JSON round-trips and sweeps - is
:class:`repro.api.Scenario`, which resolves protocols through this same
registry.  Each registry entry carries its builder plus *engine
metadata*: which simulator drives it (``sync`` rounds vs ``async``
events) and whether the paper's at-most-one-active invariant applies.

Names are case-insensitive.  Available protocols:

================  ==============================================  ======  ==========
name              description                                     engine  paper ref
================  ==============================================  ======  ==========
``A``             checkpointing, effort O(n + t^1.5)              sync    Section 2.1
``A-async``       A under a failure detector, no rounds           async   Section 2.1
``B``             A + go-ahead polling, time O(n + t)             sync    Section 2.3
``C``             recursive fault detection, O(n + t log t) msgs  sync    Section 3
``C-batched``     C reporting every n/t units, O(t log t) msgs    sync    Cor. 3.9
``C-naive``       knowledge spreading without fault detection     sync    Section 3
``D``             parallel work + agreement phases, time-optimal  sync    Section 4
``D-dynamic``     D with dynamic work arrivals (schedule spec)    sync    Section 4 remark
``D-recovery``    D with per-phase checkpoints + crash-recover    sync    Section 4 ext.
``replicate``     every process does everything                   sync    Section 1
``naive``         single worker, checkpoint-all every k units     sync    Sections 1-2
================  ==============================================  ======  ==========

``D-dynamic`` takes its workload from a declarative *schedule spec*
(builder option ``schedule``, e.g. ``"arrivals:0x8,3x4"``; see
:mod:`repro.sim.specs`), so dynamic-arrival runs are addressable from
scenarios, sweeps and suites like every other protocol.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.congestion import congestion_from_spec
from repro.sim.engine import Adversary, Engine
from repro.sim.metrics import RunResult
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

Builder = Callable[..., Sequence[object]]

ENGINE_KINDS = ("sync", "async")

#: Protocols for which the engine asserts the paper's at-most-one-active
#: invariant on every round (default capability for re-registrations of
#: these names; ``register`` takes an explicit flag for new ones).
_SINGLE_ACTIVE = {"a", "b", "c", "c-batched", "c-naive", "naive"}


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol: its builder plus engine capabilities.

    Attributes:
        name: canonical (as-registered) protocol name.
        builder: ``builder(n, t, **options)`` returning the process list.
        engine: ``"sync"`` (round-driven :class:`~repro.sim.engine.Engine`)
            or ``"async"`` (:class:`~repro.sim.async_engine.AsyncEngine`).
        single_active: the paper proves at most one process is active at
            a time; the sync engine asserts it when strict.
        description: one-line summary for listings.
    """

    name: str
    builder: Builder
    engine: str = "sync"
    single_active: bool = False
    description: str = ""


_ENTRIES: Dict[str, ProtocolEntry] = {}


def register(
    name: str,
    builder: Builder,
    *,
    engine: str = "sync",
    single_active: Optional[bool] = None,
    description: str = "",
) -> None:
    """Register a protocol builder under ``name`` (case-insensitive).

    ``engine`` declares which simulator the builder's processes run on;
    ``single_active=None`` defaults from the paper's known single-active
    protocol names.
    """
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine kind {engine!r}; known kinds: {', '.join(ENGINE_KINDS)}"
        )
    key = name.lower()
    if single_active is None:
        single_active = key in _SINGLE_ACTIVE
    _ENTRIES[key] = ProtocolEntry(
        name=name,
        builder=builder,
        engine=engine,
        single_active=single_active,
        description=description,
    )


def get_entry(name: str) -> ProtocolEntry:
    """Look up a protocol's registry entry, raising a listing on miss."""
    key = name.lower()
    if key not in _ENTRIES:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return _ENTRIES[key]


def available_protocols(engine: Optional[str] = None) -> List[str]:
    """Registered protocol names (lower-case), optionally filtered to one
    engine kind (``"sync"`` / ``"async"``)."""
    if engine is None:
        return sorted(_ENTRIES)
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine kind {engine!r}; known kinds: {', '.join(ENGINE_KINDS)}"
        )
    return sorted(key for key, entry in _ENTRIES.items() if entry.engine == engine)


def protocol_engine(name: str) -> str:
    """The engine kind (``"sync"`` / ``"async"``) ``name`` runs on."""
    return get_entry(name).engine


def build_processes(name: str, n: int, t: int, **options) -> List[Process]:
    """Invoke ``name``'s builder, turning a builder-*signature* mismatch
    (e.g. a ``schedule`` option passed to a static protocol) into a
    named :class:`ConfigurationError` instead of a raw ``TypeError``.
    A ``TypeError`` raised by a bug *inside* a builder (its signature
    binds fine) propagates untouched."""
    entry = get_entry(name)
    try:
        return list(entry.builder(n, t, **options))
    except TypeError as exc:
        try:
            inspect.signature(entry.builder).bind(n, t, **options)
        except TypeError:
            raise ConfigurationError(
                f"protocol {entry.name!r} rejected builder option(s) "
                f"{sorted(options)}: {exc}"
            ) from exc
        raise


def run_protocol(
    name: str,
    n: int,
    t: int,
    *,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    strict_invariants: Optional[bool] = None,
    allow_total_failure: bool = False,
    max_steps: int = 5_000_000,
    max_rounds: Optional[int] = None,
    trace: Optional[Trace] = None,
    unit_effect=None,
    congestion=None,
    fastpath: str = "auto",
    **options,
) -> RunResult:
    """Build, run and account one *synchronous* execution of ``name`` on
    ``n`` units and ``t`` processes.  Returns a
    :class:`~repro.sim.metrics.RunResult`.

    For asynchronous protocols, declarative adversary specs, sweeps and
    JSON round-trips, use :class:`repro.api.Scenario` - this function is
    the stable synchronous shorthand it delegates to.
    """
    entry = get_entry(name)
    if entry.engine != "sync":
        raise ConfigurationError(
            f"protocol {name!r} runs on the async engine; use "
            "repro.api.Scenario (or `python -m repro run` with an async "
            "protocol) instead of run_protocol"
        )
    processes = build_processes(name, n, t, **options)
    tracker = WorkTracker(n)
    if strict_invariants is None:
        strict_invariants = entry.single_active
    engine = Engine(
        processes,
        tracker=tracker,
        adversary=adversary,
        seed=seed,
        strict_invariants=strict_invariants,
        allow_total_failure=allow_total_failure,
        max_steps=max_steps,
        max_rounds=max_rounds,
        trace=trace,
        unit_effect=unit_effect,
        congestion=congestion_from_spec(congestion),
        fastpath=fastpath,
    )
    return engine.run()


def _register_builtins() -> None:
    from repro.core.baselines import build_naive_checkpoint, build_replicate
    from repro.core.protocol_a import build_protocol_a

    register("A", build_protocol_a, description="checkpointing, effort O(n + t^1.5)")
    register("replicate", build_replicate, description="every process does everything")
    register(
        "naive",
        build_naive_checkpoint,
        description="single worker, checkpoint-all every k units",
    )
    try:
        from repro.core.protocol_c_naive import build_naive_spreading

        register(
            "C-naive",
            build_naive_spreading,
            description="knowledge spreading without fault detection",
        )
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_b import build_protocol_b

        register(
            "B", build_protocol_b, description="A + go-ahead polling, time O(n + t)"
        )
    except ImportError:  # pragma: no cover - during incremental development
        pass
    try:
        from repro.core.protocol_c import build_protocol_c, build_protocol_c_batched

        register(
            "C",
            build_protocol_c,
            description="recursive fault detection, O(n + t log t) msgs",
        )
        register(
            "C-batched",
            build_protocol_c_batched,
            description="C reporting every n/t units, O(t log t) msgs",
        )
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_d import build_protocol_d

        register(
            "D",
            build_protocol_d,
            description="parallel work + agreement phases, time-optimal",
        )
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_d_recovery import build_protocol_d_recovery

        register(
            "D-recovery",
            build_protocol_d_recovery,
            description="D with per-phase checkpoints + crash-recover faults",
        )
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_d_dynamic import build_dynamic_protocol_d_from_spec

        register(
            "D-dynamic",
            build_dynamic_protocol_d_from_spec,
            description="D with dynamic work arrivals (schedule spec)",
        )
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.core.protocol_a_async import build_async_protocol_a

        register(
            "A-async",
            build_async_protocol_a,
            engine="async",
            description="Protocol A under a failure detector, no rounds",
        )
    except ImportError:  # pragma: no cover
        pass


_register_builtins()
