"""The binary group hierarchy of Protocol C (Section 3.1).

Processing is divided into ``log t`` levels.  At level ``h``
(``1 <= h <= log t``) the processes are partitioned into groups of size
``2^{log t - h + 1}``: level ``log t`` has groups of two, level 1 is one
group containing everyone.  Each process belongs to exactly one group
per level; fault detection walks the levels from the smallest group
(level ``log t``) down to level 1, and work performed on level ``h - 1``
is reported into the level-``h`` group.

The paper assumes ``t`` is a power of two; for general ``t`` we pad with
*virtual* processes up to the next power of two.  Virtual processes never
run: they appear in every real process's initial faulty set, so the
cyclic successor function skips them and the reduced view (which counts
only real faults) is unaffected.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError

GroupKey = Tuple[int, int]  # (level, group index within level)


class LevelStructure:
    """Group hierarchy over ``t`` real processes, padded to ``T = 2^L``."""

    def __init__(self, t: int):
        if t < 1:
            raise ConfigurationError(f"need at least one process, got t={t}")
        self.t_real = t
        T = 1
        while T < t:
            T *= 2
        self.T = max(2, T)  # at least one level even for t == 1
        self.num_levels = self.T.bit_length() - 1  # log2(T)

    # ---- structure -------------------------------------------------------

    @property
    def virtual_pids(self) -> List[int]:
        return list(range(self.t_real, self.T))

    def group_size(self, level: int) -> int:
        self._check_level(level)
        return 1 << (self.num_levels - level + 1)

    def num_groups(self, level: int) -> int:
        return self.T // self.group_size(level)

    def group_index(self, pid: int, level: int) -> int:
        self._check_pid(pid)
        return pid // self.group_size(level)

    def key_of(self, pid: int, level: int) -> GroupKey:
        """The paper's ``G^i_h`` as a hashable key."""
        return (level, self.group_index(pid, level))

    def members(self, key: GroupKey) -> List[int]:
        level, index = key
        size = self.group_size(level)
        if not 0 <= index < self.num_groups(level):
            raise ConfigurationError(f"no group {index} at level {level}")
        start = index * size
        return list(range(start, start + size))

    def members_of(self, pid: int, level: int) -> List[int]:
        return self.members(self.key_of(pid, level))

    def all_keys(self) -> List[GroupKey]:
        keys = []
        for level in range(1, self.num_levels + 1):
            keys.extend((level, index) for index in range(self.num_groups(level)))
        return keys

    # ---- validation --------------------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.num_levels:
            raise ConfigurationError(
                f"level {level} outside 1..{self.num_levels}"
            )

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.T:
            raise ConfigurationError(f"pid {pid} outside 0..{self.T - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LevelStructure(t_real={self.t_real}, T={self.T}, "
            f"levels={self.num_levels})"
        )


def cyclic_successor(
    members: List[int], last: int | None, excluded: set
) -> int | None:
    """Next eligible member after ``last`` in the group's cyclic order.

    ``members`` must be ascending.  ``last is None`` means "never
    informed": the first eligible member is returned, matching the
    paper's initial pointer (the lowest-numbered process in ``G - {i}``).
    Returns ``None`` when no member is eligible.
    """
    candidates = [member for member in members if member not in excluded]
    if not candidates:
        return None
    if last is None:
        return candidates[0]
    for candidate in candidates:
        if candidate > last:
            return candidate
    return candidates[0]
