"""Bench history: commit-stamped snapshots and the perf timeline.

``BENCH_engine.json`` (written by ``benchmarks/run_bench.py``) captures
the engine's performance at *one* commit; ``suite diff`` compares *two*
reports.  This module closes the gap across the whole PR series:

* :func:`snapshot` copies the current bench payload into
  ``benchmarks/history/`` as ``NNNN_<commit>.json`` - a monotonically
  numbered, commit-stamped record (``NNNN`` is the snapshot sequence, so
  plain filename order *is* chronological order, with no wall-clock
  dependence);
* :func:`timeline` loads every snapshot and pivots it into per-scenario
  trend rows - one column per snapshot - so a perf regression is
  visible across the series, not just pairwise.

CLI::

    python -m repro bench snapshot --label pr8       # stamp the current bench
    python -m repro bench timeline                   # seconds_best trend table
    python -m repro bench timeline --measure messages --json

Snapshot format: ``{"format": 1, "sequence": N, "commit": "...",
"label": "...", "bench": <the BENCH_engine.json payload>}``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Snapshot file format version.
HISTORY_FORMAT_VERSION = 1

#: Default snapshot directory, relative to the working tree.
HISTORY_DIR = "benchmarks/history"

#: Per-scenario measures the timeline can pivot on (from the bench rows).
TIMELINE_MEASURES = ("seconds_best", "work", "messages", "virtual_rounds")

_SNAPSHOT_NAME = re.compile(r"^(\d{4,})_(.+)\.json$")


def current_commit() -> str:
    """The working tree's HEAD as a short hash.

    ``REPRO_COMMIT`` overrides (CI can stamp the exact ref it builds);
    outside a git checkout the stamp degrades to ``"unknown"`` rather
    than failing - a snapshot with an unknown commit is still a usable
    timeline column.
    """
    override = os.environ.get("REPRO_COMMIT")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def _load_snapshot(path: Path) -> Dict[str, Any]:
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"snapshot {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict) or "bench" not in data:
        raise ConfigurationError(
            f"snapshot {path} is not a bench-history snapshot (missing the "
            "'bench' payload; see repro.bench_history)"
        )
    if data.get("format") != HISTORY_FORMAT_VERSION:
        raise ConfigurationError(
            f"snapshot {path} uses format version {data.get('format')!r}, "
            f"but this reader understands version {HISTORY_FORMAT_VERSION}"
        )
    scenarios = data["bench"].get("scenarios") if isinstance(data["bench"], dict) else None
    if not isinstance(scenarios, list):
        raise ConfigurationError(
            f"snapshot {path} holds no 'bench.scenarios' list; it is not a "
            "run_bench.py payload"
        )
    return data


def list_snapshots(directory=HISTORY_DIR) -> List[Tuple[Path, Dict[str, Any]]]:
    """``(path, payload)`` for every snapshot, in sequence order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.iterdir()):
        if _SNAPSHOT_NAME.match(path.name):
            out.append((path, _load_snapshot(path)))
    return out


def snapshot(
    bench_path="BENCH_engine.json",
    directory=HISTORY_DIR,
    *,
    commit: Optional[str] = None,
    label: Optional[str] = None,
) -> Path:
    """Record the current bench payload as the next history snapshot."""
    bench_path = Path(bench_path)
    try:
        bench = json.loads(bench_path.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read bench file {bench_path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"bench file {bench_path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(bench, dict) or not isinstance(bench.get("scenarios"), list):
        raise ConfigurationError(
            f"bench file {bench_path} holds no 'scenarios' list; expected a "
            "benchmarks/run_bench.py payload"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = list_snapshots(directory)
    sequence = 1
    if existing:
        sequence = max(payload["sequence"] for _, payload in existing) + 1
    commit = commit or current_commit()
    payload = {
        "format": HISTORY_FORMAT_VERSION,
        "sequence": sequence,
        "commit": commit,
        "label": label or commit,
        "bench": bench,
    }
    path = directory / f"{sequence:04d}_{commit}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass(frozen=True)
class BenchTimeline:
    """Per-scenario measures pivoted across every snapshot."""

    columns: List[Dict[str, Any]]          # [{sequence, commit, label, path}]
    rows: Dict[str, List[Optional[Dict[str, Any]]]]  # scenario -> per-column row

    @property
    def scenarios(self) -> List[str]:
        return list(self.rows)

    def series(self, scenario: str, measure: str) -> List[Optional[float]]:
        """One scenario's ``measure`` across the snapshots (None where
        the scenario is absent or errored)."""
        if scenario not in self.rows:
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; timeline covers: "
                + ", ".join(self.rows)
            )
        _check_measure(measure)
        return [
            (row.get(measure) if row is not None else None)
            for row in self.rows[scenario]
        ]

    def as_dict(self, *, measure: str = "seconds_best") -> Dict[str, Any]:
        _check_measure(measure)
        return {
            "measure": measure,
            "snapshots": [dict(column) for column in self.columns],
            "scenarios": {
                name: self.series(name, measure) for name in self.rows
            },
        }

    def table(self, *, measure: str = "seconds_best") -> str:
        """Markdown trend table: one row per scenario, one column per
        snapshot, rightmost column annotated with the drift vs. the
        previous snapshot."""
        from repro.analysis.tables import render_table

        _check_measure(measure)
        if not self.columns:
            return "no bench snapshots recorded yet (see 'repro bench snapshot')"
        headers = ["scenario"] + [
            f"{column['label']}" for column in self.columns
        ] + ["trend"]
        rows = []
        for name in self.rows:
            series = self.series(name, measure)
            cells: List[Any] = [name]
            for value in series:
                if value is None:
                    cells.append("-")
                elif measure == "seconds_best":
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(value)
            present = [v for v in series if v is not None]
            if len(present) >= 2 and present[-2]:
                delta = (present[-1] - present[-2]) / present[-2]
                cells.append(f"{delta:+.1%}")
            else:
                cells.append("-")
            rows.append(cells)
        return render_table(
            headers,
            rows,
            title=f"bench timeline ({measure}, {len(self.columns)} snapshots)",
        )


def _check_measure(measure: str) -> None:
    if measure not in TIMELINE_MEASURES:
        raise ConfigurationError(
            f"unknown timeline measure {measure!r}; choices: "
            + ", ".join(TIMELINE_MEASURES)
        )


def timeline(directory=HISTORY_DIR) -> BenchTimeline:
    """Load every snapshot under ``directory`` into a pivot."""
    snapshots = list_snapshots(directory)
    columns = []
    rows: Dict[str, List[Optional[Dict[str, Any]]]] = {}
    for position, (path, payload) in enumerate(snapshots):
        columns.append(
            {
                "sequence": payload["sequence"],
                "commit": payload["commit"],
                "label": payload["label"],
                "path": str(path),
            }
        )
        for row in payload["bench"]["scenarios"]:
            name = row.get("name")
            if not isinstance(name, str):
                continue
            series = rows.setdefault(name, [None] * position)
            while len(series) < position:
                series.append(None)
            series.append(None if "error" in row else row)
    for series in rows.values():
        while len(series) < len(columns):
            series.append(None)
    return BenchTimeline(columns=columns, rows=rows)


__all__ = [
    "HISTORY_DIR",
    "HISTORY_FORMAT_VERSION",
    "TIMELINE_MEASURES",
    "BenchTimeline",
    "current_commit",
    "list_snapshots",
    "snapshot",
    "timeline",
]
