"""EXPERIMENTS.md generator.

Usage::

    python -m repro.analysis.report            # full grids (minutes)
    python -m repro.analysis.report --quick    # reduced grids (seconds)
    python -m repro.analysis.report --out PATH # write elsewhere

Runs every experiment in the registry and writes a paper-vs-measured
report.  The benchmark files under ``benchmarks/`` exercise the same
registry, so the report and the benches can never drift apart.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.experiments import ExperimentResult, run_all
from repro.analysis.tables import render_dict_rows

HEADER = """# EXPERIMENTS - paper vs measured

Reproduction report for Dwork, Halpern & Waarts, *Performing Work
Efficiently in the Presence of Faults* (PODC 1992 / SIAM J. Computing).

The paper's evaluation is analytic: worst-case bounds per protocol.  Each
section below corresponds to one theorem-level claim (the experiment ids
match DESIGN.md's index), showing the paper's bound next to the worst
measurement over that experiment's adversary battery and seeds.  `ok`
means the claim's shape held: measured within the bound (for exact
claims, exactly equal), completion in every execution with a survivor.

Absolute round counts depend on timeout constants; the implementation
uses the paper's constants plus a small documented slack (DESIGN.md
section 3), so round columns are reported against the paper's formula
for shape comparison rather than asserted as exact.

Regenerate with: `python -m repro.analysis.report`
"""


def render_report(results: List[ExperimentResult], elapsed: float) -> str:
    parts = [HEADER]
    ok_count = sum(1 for result in results if result.all_ok)
    parts.append(
        f"**Summary: {ok_count}/{len(results)} experiments reproduce their "
        f"paper claim.**  (Generated in {elapsed:.1f}s.)\n"
    )
    for result in results:
        parts.append(f"## {result.exp_id}: {result.title}\n")
        parts.append(f"*Paper claim:* {result.claim}\n")
        parts.append(render_dict_rows(result.columns, result.rows))
        parts.append("")
        if result.notes:
            parts.append(f"*Notes:* {result.notes}\n")
        status = "reproduced" if result.all_ok else "NOT fully reproduced - see rows"
        parts.append(f"*Status:* **{status}**\n")
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced grids")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "EXPERIMENTS.md",
        help="output path (default: repository EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)
    start = time.perf_counter()
    results = run_all(quick=args.quick)
    elapsed = time.perf_counter() - start
    report = render_report(results, elapsed)
    args.out.write_text(report)
    print(f"wrote {args.out} ({len(results)} experiments, {elapsed:.1f}s)")
    for result in results:
        status = "ok" if result.all_ok else "CHECK"
        print(f"  [{status:>5}] {result.exp_id}: {result.title}")
    return 0 if all(result.all_ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())
