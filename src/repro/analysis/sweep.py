"""Parameter-sweep utilities: run a protocol over adversary/seed grids and
aggregate worst-case (the paper's bounds are worst-case statements, so
benchmarks report the maximum over the schedules exercised)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.core.registry import run_protocol
from repro.sim.engine import Adversary
from repro.sim.metrics import RunResult

AdversaryFactory = Callable[[], Optional[Adversary]]


@dataclass
class WorstCase:
    """Aggregated maxima over a set of executions of one configuration."""

    protocol: str
    n: int
    t: int
    executions: int = 0
    work: int = 0
    messages: int = 0
    rounds: int = 0
    effort: int = 0
    redundant_work: int = 0
    all_completed: bool = True

    def absorb(self, result: RunResult) -> None:
        self.executions += 1
        metrics = result.metrics
        self.work = max(self.work, metrics.work_total)
        self.messages = max(self.messages, metrics.messages_total)
        self.rounds = max(self.rounds, metrics.retire_round)
        self.effort = max(self.effort, metrics.effort)
        self.redundant_work = max(self.redundant_work, metrics.redundant_work())
        self.all_completed = self.all_completed and result.completed

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "runs": self.executions,
            "work": self.work,
            "messages": self.messages,
            "rounds": self.rounds,
            "effort": self.effort,
            "completed": self.all_completed,
        }


def worst_case(
    protocol: str,
    n: int,
    t: int,
    adversaries: Sequence[AdversaryFactory],
    seeds: Iterable[int],
    **options,
) -> WorstCase:
    """Run every (adversary, seed) combination; aggregate the maxima."""
    aggregate = WorstCase(protocol=protocol, n=n, t=t)
    for factory in adversaries:
        for seed in seeds:
            result = run_protocol(
                protocol, n, t, adversary=factory(), seed=seed, **options
            )
            aggregate.absorb(result)
    return aggregate


def single_run(protocol: str, n: int, t: int, **kwargs) -> RunResult:
    """Convenience passthrough kept for symmetric imports in benches."""
    return run_protocol(protocol, n, t, **kwargs)
