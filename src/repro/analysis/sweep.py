"""Parameter-sweep utilities: run a protocol over adversary/seed grids and
aggregate worst-case (the paper's bounds are worst-case statements, so
benchmarks report the maximum over the schedules exercised).

Adversary grids are built from declarative specs (see
:mod:`repro.sim.adversary`): :func:`worst_case` accepts specs directly
alongside the legacy zero-argument factories, and :func:`battery` turns
a list of specs into fresh-instance factories.  For the richer
fan-out-and-reduce surface (seeds x adversaries x protocols, mean as
well as worst-case, JSON export, multiprocessing via
``run(workers=N)``) use :class:`repro.api.Sweep`; for *versioned,
regression-pinned* batteries that CI runs wholesale, write a suite file
instead (:mod:`repro.suites`, ``docs/suites.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.registry import run_protocol
from repro.sim.adversary import AdversarySpec, adversary_from_spec
from repro.sim.engine import Adversary
from repro.sim.metrics import RunResult

AdversaryFactory = Callable[[], Optional[Adversary]]
#: What sweep grids accept per entry: a declarative spec (string / dict /
#: None) or a zero-argument factory returning a fresh adversary.
AdversaryLike = Union[AdversarySpec, AdversaryFactory]


def battery(*specs: AdversarySpec) -> List[AdversaryFactory]:
    """Turn declarative specs into fresh-instance adversary factories.

    Each returned factory builds a *new* adversary per call, so one
    battery can seed any number of runs.
    """
    return [lambda spec=spec: adversary_from_spec(spec) for spec in specs]


def _materialize(entry: AdversaryLike) -> Optional[Adversary]:
    if callable(entry) and not isinstance(entry, Adversary):
        return entry()
    return adversary_from_spec(entry)


@dataclass
class WorstCase:
    """Aggregated maxima over a set of executions of one configuration."""

    protocol: str
    n: int
    t: int
    executions: int = 0
    work: int = 0
    messages: int = 0
    rounds: int = 0
    effort: int = 0
    redundant_work: int = 0
    all_completed: bool = True

    def absorb(self, result: RunResult) -> None:
        self.executions += 1
        metrics = result.metrics
        self.work = max(self.work, metrics.work_total)
        self.messages = max(self.messages, metrics.messages_total)
        self.rounds = max(self.rounds, metrics.retire_round)
        self.effort = max(self.effort, metrics.effort)
        self.redundant_work = max(self.redundant_work, metrics.redundant_work())
        self.all_completed = self.all_completed and result.completed

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "runs": self.executions,
            "work": self.work,
            "messages": self.messages,
            "rounds": self.rounds,
            "effort": self.effort,
            "completed": self.all_completed,
        }


def worst_case(
    protocol: str,
    n: int,
    t: int,
    adversaries: Sequence[AdversaryLike],
    seeds: Iterable[int],
    **options,
) -> WorstCase:
    """Run every (adversary, seed) combination; aggregate the maxima.

    ``adversaries`` entries may be declarative specs (``None`` /
    ``"random:5"`` / ``{"kind": ...}``) or zero-argument factories.
    """
    aggregate = WorstCase(protocol=protocol, n=n, t=t)
    seed_list = list(seeds)
    for entry in adversaries:
        for seed in seed_list:
            result = run_protocol(
                protocol, n, t, adversary=_materialize(entry), seed=seed, **options
            )
            aggregate.absorb(result)
    return aggregate


def single_run(protocol: str, n: int, t: int, **kwargs) -> RunResult:
    """Convenience passthrough kept for symmetric imports in benches."""
    return run_protocol(protocol, n, t, **kwargs)
