"""Empirical growth-rate estimation for complexity-shape checks.

The paper's claims are asymptotic (t sqrt t vs t log t vs t^2 message
growth).  These helpers fit a power law ``y ~ c * x^p`` to measured
series by least squares in log-log space, so experiments can assert the
*exponent*, not just point values: Protocol A's messages grow like
t^1.5, Protocol C's like ~t (log-factor absorbed), the naive
knowledge-spreader's like t^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c * x^exponent`` in log-log space."""

    exponent: float
    coefficient: float
    residual: float  # RMS residual in log space

    def predict(self, x: float) -> float:
        return self.coefficient * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``ys ~ c * xs^p``; every value must be positive."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ConfigurationError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ConfigurationError("power-law fit needs positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((lx - mean_x) ** 2 for lx in log_x)
    if sxx == 0:
        raise ConfigurationError("xs are all equal; exponent is undefined")
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    exponent = sxy / sxx
    intercept = mean_y - exponent * mean_x
    residual = math.sqrt(
        sum(
            (ly - (intercept + exponent * lx)) ** 2
            for lx, ly in zip(log_x, log_y)
        )
        / n
    )
    return PowerLawFit(
        exponent=exponent, coefficient=math.exp(intercept), residual=residual
    )


def doubling_ratios(ys: Sequence[float]) -> List[float]:
    """Successive ratios y[i+1] / y[i] - a quick growth diagnostic for
    series measured at doubling x values (ratio ~ 2^p)."""
    if any(y <= 0 for y in ys):
        raise ConfigurationError("doubling ratios need positive data")
    return [ys[i + 1] / ys[i] for i in range(len(ys) - 1)]
