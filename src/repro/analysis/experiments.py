"""The experiment registry: one runner per quantitative claim of the paper.

Each experiment function reproduces one theorem/claim (see DESIGN.md's
per-experiment index), returning paper-bound-vs-measured rows.  The
benchmark files under ``benchmarks/`` each call one of these and assert
the claim's *shape*; ``python -m repro.analysis.report`` runs them all
and regenerates EXPERIMENTS.md.

Every experiment takes ``quick``: True shrinks the sweep for use inside
the test-suite, False is the full benchmark grid.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.agreement.byzantine import ByzantineAgreement
from repro.analysis import bounds
from repro.analysis.sweep import battery, worst_case
from repro.api import Scenario
from repro.core.registry import run_protocol
from repro.sim.adversary import (
    RandomCrashes,
    StaggeredWorkKills,
)
from repro.sim.engine import Adversary


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    @property
    def all_ok(self) -> bool:
        return all(bool(row.get("ok", True)) for row in self.rows)


def _standard_adversaries(t: int, *, heavy: bool = True) -> List[Callable]:
    """The adversary battery used for worst-case aggregation, built from
    declarative specs (the same grammar the CLI and Scenario files use)."""
    specs = [
        None,
        f"random:{max(1, t // 2)},max_action_index=25",
        f"kill-active:{t - 1},actions_before_kill=2",
        {"kind": "crash-mid-broadcast", "victims": list(range(min(t, 6)))},
    ]
    if heavy:
        specs.append(f"kill-active:{t - 1},actions_before_kill=1")
    return battery(*specs)


# =====================================================================
# E1 / E2 - Theorems 2.3 and 2.8 (Protocols A and B)
# =====================================================================


def _sequential_protocol_experiment(
    protocol: str,
    exp_id: str,
    theorem: str,
    work_bound,
    message_bound,
    round_bound,
    quick: bool,
) -> ExperimentResult:
    shapes = [(16, 128), (36, 288)] if quick else [(16, 128), (36, 288), (64, 512), (100, 800)]
    seeds = range(3) if quick else range(8)
    rows = []
    for t, n in shapes:
        aggregate = worst_case(
            protocol, n, t, _standard_adversaries(t), seeds
        )
        wb, mb, rb = work_bound(n, t), message_bound(n, t), round_bound(n, t)
        rows.append(
            {
                "t": t,
                "n": n,
                "runs": aggregate.executions,
                "work": aggregate.work,
                "work bound": wb.value,
                "messages": aggregate.messages,
                "msg bound": mb.value,
                "rounds": aggregate.rounds,
                "round bound": rb.value,
                "completed": aggregate.all_completed,
                "ok": (
                    aggregate.all_completed
                    and wb.holds_for(aggregate.work)
                    and mb.holds_for(aggregate.messages)
                ),
            }
        )
    return ExperimentResult(
        exp_id=exp_id,
        title=f"Protocol {protocol} worst-case effort ({theorem})",
        claim=(
            f"work <= {work_bound(1, 1).formula}, messages <= "
            f"{message_bound(1, 1).formula}, retired by {round_bound(1, 1).formula}"
        ),
        columns=[
            "t", "n", "runs", "work", "work bound", "messages", "msg bound",
            "rounds", "round bound", "completed", "ok",
        ],
        rows=rows,
        notes=(
            "Worst case over the adversary battery (none / random / kill-active "
            "/ crash-mid-broadcast) and seeds.  Round counts are measured under "
            "the implementation's slack-extended deadlines; the round bound "
            "column is the paper's formula."
        ),
    )


def experiment_e1(quick: bool = False) -> ExperimentResult:
    return _sequential_protocol_experiment(
        "A", "E1", "Theorem 2.3",
        bounds.protocol_a_work, bounds.protocol_a_messages, bounds.protocol_a_rounds,
        quick,
    )


def experiment_e2(quick: bool = False) -> ExperimentResult:
    return _sequential_protocol_experiment(
        "B", "E2", "Theorem 2.8",
        bounds.protocol_b_work, bounds.protocol_b_messages, bounds.protocol_b_rounds,
        quick,
    )


# =====================================================================
# E3 / E4 - Theorem 3.8 and Corollary 3.9 (Protocol C)
# =====================================================================


def experiment_e3(quick: bool = False) -> ExperimentResult:
    shapes = [(8, 32)] if quick else [(8, 32), (16, 64), (32, 128)]
    seeds = range(3) if quick else range(6)
    rows = []
    for t, n in shapes:
        adversaries = [
            None,
            f"random:{max(1, t // 2)},max_action_index=20",
            f"kill-active:{t - 1},actions_before_kill=3",
            {
                "kind": "cascade",
                "lead_units": max(1, t - 1),
                "redo_units": 1,
                "initial_dead": list(range(t // 2 + 1, t)),
            },
        ]
        aggregate = worst_case("C", n, t, adversaries, seeds)
        wb = bounds.protocol_c_work(n, t)
        mb = bounds.protocol_c_messages(n, t)
        rb = bounds.protocol_c_rounds(n, t)
        rows.append(
            {
                "t": t,
                "n": n,
                "runs": aggregate.executions,
                "work": aggregate.work,
                "work bound": wb.value,
                "messages": aggregate.messages,
                "msg bound": mb.value,
                "rounds": float(aggregate.rounds),
                "round bound": rb.value,
                "completed": aggregate.all_completed,
                "ok": (
                    aggregate.all_completed
                    and wb.holds_for(aggregate.work)
                    and mb.holds_for(aggregate.messages)
                    and rb.holds_for(float(aggregate.rounds))
                ),
            }
        )
    return ExperimentResult(
        exp_id="E3",
        title="Protocol C worst-case effort (Theorem 3.8)",
        claim="work <= n + 2t, messages <= n + 8 t log t, retired by t K (n+t) 2^(n+t)",
        columns=[
            "t", "n", "runs", "work", "work bound", "messages", "msg bound",
            "rounds", "round bound", "completed", "ok",
        ],
        rows=rows,
        notes=(
            "Includes the Section 3 cascade adversary (leader does t-1 units "
            "then dies; upper half pre-crashed) that forces Theta(t^2) effort "
            "on the naive knowledge-spreading algorithm - Protocol C's fault "
            "detection defeats it.  The exponential round counts are simulated "
            "via deadline fast-forward."
        ),
    )


def experiment_e4(quick: bool = False) -> ExperimentResult:
    shapes = [(8, 128)] if quick else [(8, 128), (16, 256), (32, 512)]
    seeds = range(2) if quick else range(5)
    rows = []
    for t, n in shapes:
        adversaries = [
            None,
            f"random:{max(1, t // 2)},max_action_index=20",
        ]
        plain = worst_case("C", n, t, adversaries, seeds)
        batched = worst_case("C-batched", n, t, adversaries, seeds)
        mb = bounds.protocol_c_batched_messages(n, t)
        wb = bounds.protocol_c_batched_work(n, t)
        rows.append(
            {
                "t": t,
                "n": n,
                "plain msgs": plain.messages,
                "batched msgs": batched.messages,
                "batched bound": mb.value,
                "batched work": batched.work,
                "work bound": wb.value,
                "completed": plain.all_completed and batched.all_completed,
                "ok": (
                    batched.all_completed
                    and mb.holds_for(batched.messages)
                    and wb.holds_for(batched.work)
                    and batched.messages < plain.messages
                ),
            }
        )
    return ExperimentResult(
        exp_id="E4",
        title="Protocol C batched reporting (Corollary 3.9)",
        claim="reporting every n/t units removes the n-term: O(t log t) messages, O(n + t) work",
        columns=[
            "t", "n", "plain msgs", "batched msgs", "batched bound",
            "batched work", "work bound", "completed", "ok",
        ],
        rows=rows,
        notes="n >> t so the n-term dominates plain Protocol C's message count.",
    )


# =====================================================================
# E5 / E6 / E7 - Theorem 4.1 (Protocol D)
# =====================================================================


def _phase_kills(t: int, f: int) -> Adversary:
    """Kill f processes, staggered across their work shares."""
    pairs = [(pid, 1 + (pid % 3)) for pid in range(1, f + 1)]
    return StaggeredWorkKills.plan(pairs)


def experiment_e5(quick: bool = False) -> ExperimentResult:
    t, n = (8, 64) if quick else (16, 256)
    fs = [0, 1, 2, 3] if quick else [0, 1, 2, 4, 6, 8]
    rows = []
    for f in fs:
        result = run_protocol("D", n, t, adversary=_phase_kills(t, f) if f else None, seed=3)
        wb = bounds.protocol_d_work(n, t, f)
        mb = bounds.protocol_d_messages(n, t, f)
        rb = bounds.protocol_d_rounds(n, t, f)
        metrics = result.metrics
        rows.append(
            {
                "f": f,
                "work": metrics.work_total,
                "work bound": wb.value,
                "messages": metrics.messages_total,
                "msg bound": mb.value,
                "rounds": metrics.retire_round + 1,
                "round bound": rb.value,
                "completed": result.completed,
                "ok": (
                    result.completed
                    and wb.holds_for(metrics.work_total)
                    and mb.holds_for(metrics.messages_total)
                ),
            }
        )
    return ExperimentResult(
        exp_id="E5",
        title=f"Protocol D vs failure count (Theorem 4.1.1), n={n}, t={t}",
        claim="work <= 2n, messages <= (4f+2) t^2, retired by (f+1)n/t + 4f + 2",
        columns=[
            "f", "work", "work bound", "messages", "msg bound",
            "rounds", "round bound", "completed", "ok",
        ],
        rows=rows,
        notes="Kills staggered inside work phases so every agreement phase discovers failures.",
    )


def experiment_e6(quick: bool = False) -> ExperimentResult:
    t, n = (8, 64) if quick else (16, 256)
    f = t // 2 + 2  # more than half die in the first phase -> reversion
    adversary = StaggeredWorkKills.plan([(pid, 1) for pid in range(f)])
    result = run_protocol("D", n, t, adversary=adversary, seed=5)
    reverted = any(
        getattr(p, "reverted", False)
        for p in []  # placeholder; checked via messages below
    )
    metrics = result.metrics
    from repro.sim.actions import MessageKind

    reverted = metrics.messages_of(MessageKind.PARTIAL_CHECKPOINT) > 0 or (
        metrics.messages_of(MessageKind.FULL_CHECKPOINT) > 0
    )
    wb = bounds.protocol_d_reverted_work(n, t, f)
    mb = bounds.protocol_d_reverted_messages(n, t, f)
    rows = [
        {
            "f": f,
            "reverted": reverted,
            "work": metrics.work_total,
            "work bound": wb.value,
            "messages": metrics.messages_total,
            "msg bound": mb.value,
            "rounds": metrics.retire_round + 1,
            "completed": result.completed,
            "ok": (
                result.completed
                and reverted
                and wb.holds_for(metrics.work_total)
                and mb.holds_for(metrics.messages_total)
            ),
        }
    ]
    return ExperimentResult(
        exp_id="E6",
        title=f"Protocol D reversion path (Theorem 4.1.2), n={n}, t={t}",
        claim="after >half failures in a phase: work <= 4n, messages <= (4f+2)t^2 + 9 t sqrt(t)/(2 sqrt 2)",
        columns=[
            "f", "reverted", "work", "work bound", "messages", "msg bound",
            "rounds", "completed", "ok",
        ],
        rows=rows,
        notes="Reversion detected by the presence of Protocol A checkpoint traffic.",
    )


def experiment_e7(quick: bool = False) -> ExperimentResult:
    t, n = (8, 64) if quick else (16, 256)
    rows = []
    # Failure-free: exact counts.
    result = run_protocol("D", n, t, seed=1)
    metrics = result.metrics
    rows.append(
        {
            "case": "f = 0",
            "work": metrics.work_total,
            "work claim": n,
            "rounds": metrics.retire_round + 1,
            "round claim": n // t + 2,
            "messages": metrics.messages_total,
            "msg claim": 2 * t * t,
            "ok": (
                metrics.work_total == n
                and metrics.retire_round + 1 == n // t + 2
                and metrics.messages_total <= 2 * t * t
            ),
        }
    )
    # One failure.
    result = run_protocol(
        "D", n, t, adversary=StaggeredWorkKills.plan([(2, 1)]), seed=2
    )
    metrics = result.metrics
    round_claim = n // t + math.ceil(n / (t * (t - 1))) + 6
    rows.append(
        {
            "case": "f = 1",
            "work": metrics.work_total,
            "work claim": n + n // t,
            "rounds": metrics.retire_round + 1,
            "round claim": round_claim,
            "messages": metrics.messages_total,
            "msg claim": 5 * t * t,
            "ok": (
                result.completed
                and metrics.work_total <= n + n // t
                and metrics.retire_round + 1 <= round_claim
                and metrics.messages_total <= 5 * t * t
            ),
        }
    )
    return ExperimentResult(
        exp_id="E7",
        title=f"Protocol D common cases (Section 4 text), n={n}, t={t}",
        claim="f=0: exactly n work, n/t+2 rounds, <= 2t^2 msgs; f=1: <= n + n/t work, <= n/t + ceil(n/(t(t-1))) + 6 rounds, <= 5t^2 msgs",
        columns=[
            "case", "work", "work claim", "rounds", "round claim",
            "messages", "msg claim", "ok",
        ],
        rows=rows,
    )


# =====================================================================
# E8 - the implicit Section 1 comparison table
# =====================================================================


def experiment_e8(quick: bool = False) -> ExperimentResult:
    t, n = (16, 256) if quick else (25, 500)
    seeds = range(2) if quick else range(4)
    adversaries = [
        None,
        f"random:{t // 2},max_action_index=20",
        f"kill-active:{t - 1},actions_before_kill=2",
    ]
    rows = []
    for protocol, options in [
        ("replicate", {}),
        ("naive", {"interval": 1}),
        ("A", {}),
        ("B", {}),
        ("C", {}),
        ("D", {}),
    ]:
        aggregate = worst_case(protocol, n, t, adversaries, seeds, **options)
        rows.append(
            {
                "protocol": protocol,
                "work": aggregate.work,
                "messages": aggregate.messages,
                "effort": aggregate.effort,
                "rounds": float(aggregate.rounds),
                "completed": aggregate.all_completed,
                "ok": aggregate.all_completed,
            }
        )
    effort = {row["protocol"]: row["effort"] for row in rows}
    shape_ok = (
        effort["A"] < effort["replicate"]
        and effort["B"] < effort["replicate"]
        and effort["C"] < effort["naive"]
        and effort["C"] < effort["replicate"]
    )
    for row in rows:
        row["ok"] = bool(row["ok"]) and shape_ok
    return ExperimentResult(
        exp_id="E8",
        title=f"Section 1 comparison: baselines vs Protocols A-D (n={n}, t={t})",
        claim="straw-men cost Theta(tn) effort; A/B cost O(n + t sqrt t); C costs O(n + t log t); D trades messages for time",
        columns=["protocol", "work", "messages", "effort", "rounds", "completed", "ok"],
        rows=rows,
        notes="Worst case over {none, random-t/2, kill-active} x seeds.",
    )


# =====================================================================
# E9 - Section 2 motivation: single-level checkpoint frequency ablation
# =====================================================================


def _naive_row(n, t, interval, label, seeds):
    work_target = bounds.protocol_a_work(n, t).value
    msg_target = bounds.protocol_a_messages(n, t).value
    aggregate = worst_case(
        "naive", n, t, [f"kill-before-checkpoint:{t - 1}"], seeds, interval=interval
    )
    return {
        "scheme": label,
        "t": t,
        "interval": interval,
        "work": aggregate.work,
        "messages": aggregate.messages,
        "effort": aggregate.effort,
        "work<=3n'": aggregate.work <= work_target,
        "msgs<=9t^1.5": aggregate.messages <= msg_target,
        "ok": aggregate.all_completed,
    }


def experiment_e9(quick: bool = False) -> ExperimentResult:
    """Section 2's motivating tension, against the worst-case adversary
    (kill the active process just before each checkpoint, losing a full
    interval of work every time).

    At moderate ``t`` the theorem's loose constants leave a numeric
    window where a mid-range interval meets both concrete bounds, so the
    headline assertions are: (a) the extremes fail their respective
    bounds, (b) Protocol A's two-level scheme meets both *and* beats the
    best single-level interval on effort.  At ``t = 361`` the window
    provably closes even numerically - adjacent intervals straddle the
    work/message constraint boundary and every interval fails at least
    one bound - which the full (non-quick) run demonstrates.
    """
    t, n = (16, 256) if quick else (36, 1296)
    seeds = range(1)
    work_target = bounds.protocol_a_work(n, t).value
    msg_target = bounds.protocol_a_messages(n, t).value
    rows = []
    intervals = [1, 4, 16, 64, n] if quick else [1, 6, 18, 36, 72, 216, n]
    for interval in intervals:
        rows.append(_naive_row(n, t, interval, f"naive t={t}", seeds))
    a_aggregate = worst_case(
        "A", n, t, [f"kill-before-checkpoint:{t - 1}"], seeds
    )
    rows.append(
        {
            "scheme": "A (2-level)",
            "t": t,
            "interval": "-",
            "work": a_aggregate.work,
            "messages": a_aggregate.messages,
            "effort": a_aggregate.effort,
            "work<=3n'": a_aggregate.work <= work_target,
            "msgs<=9t^1.5": a_aggregate.messages <= msg_target,
            "ok": a_aggregate.all_completed
            and a_aggregate.work <= work_target
            and a_aggregate.messages <= msg_target,
        }
    )
    if not quick:
        # The large-t instance where no interval can meet both bounds:
        # intervals 7 and 8 straddle the constraint crossover.
        big_t, big_n = 361, 1296
        for interval in [1, 7, 8, big_n // 2]:
            row = _naive_row(big_n, big_t, interval, f"naive t={big_t}", range(1))
            row["ok"] = row["ok"] and not (row["work<=3n'"] and row["msgs<=9t^1.5"])
            rows.append(row)
    return ExperimentResult(
        exp_id="E9",
        title="Checkpoint-frequency ablation (Section 2 motivation)",
        claim=(
            "single-level checkpointing cannot combine O(n + t) work with "
            "O(t sqrt t) messages once t is large (needs k >= ~t/2 checkpoints "
            "for the work bound but k <= ~sqrt(t)-scale for the message bound); "
            "Protocol A's two-level scheme achieves both"
        ),
        columns=[
            "scheme", "t", "interval", "work", "messages", "effort",
            "work<=3n'", "msgs<=9t^1.5", "ok",
        ],
        rows=rows,
        notes=(
            "Adversary: kill the active process on its first broadcast attempt "
            "after each takeover (a full interval of work is lost per crash). "
            "At t=361 every interval fails at least one bound - the paper's "
            "asymptotic tension made concrete."
        ),
    )


# =====================================================================
# E10 - Section 5: Byzantine agreement
# =====================================================================


def experiment_e10(quick: bool = False) -> ExperimentResult:
    configs = [(16, 5)] if quick else [(16, 5), (32, 7), (64, 7)]
    seeds = range(3) if quick else range(6)
    rows = []
    for n_system, t in configs:
        for protocol in ["A", "B", "C"]:
            worst_msgs = 0
            all_agree = True
            all_valid = True
            for seed in seeds:
                ba = ByzantineAgreement(n_system, t, protocol=protocol)
                adversary = RandomCrashes(
                    t, max_action_index=12, victims=list(range(t + 1))
                )
                outcome = ba.run(7, adversary=adversary, seed=seed)
                worst_msgs = max(worst_msgs, outcome.metrics.messages_total)
                all_agree = all_agree and outcome.agreement
                all_valid = all_valid and outcome.valid_for(7)
            mb = bounds.byzantine_messages(n_system, t, protocol)
            rows.append(
                {
                    "n": n_system,
                    "t": t,
                    "protocol": protocol,
                    "messages": worst_msgs,
                    "msg bound": mb.value,
                    "agreement": all_agree,
                    "validity": all_valid,
                    "ok": all_agree and all_valid and mb.holds_for(worst_msgs),
                }
            )
    return ExperimentResult(
        exp_id="E10",
        title="Byzantine agreement via work protocols (Section 5)",
        claim=(
            "via B: O(n + t sqrt t) messages in O(n) rounds (constructive Bracha "
            "bound); via C: O(n + t log t) messages; agreement+validity always"
        ),
        columns=["n", "t", "protocol", "messages", "msg bound", "agreement", "validity", "ok"],
        rows=rows,
        notes="Adversary crashes up to t of the t+1 senders at random points, including mid-broadcast.",
    )


# =====================================================================
# E11 - asynchronous Protocol A with failure detection
# =====================================================================


def experiment_e11(quick: bool = False) -> ExperimentResult:
    shapes = [(16, 128)] if quick else [(16, 128), (36, 288)]
    seeds = range(3) if quick else range(6)
    rows = []
    for t, n in shapes:
        sync_aggregate = worst_case(
            "A", n, t, [f"random:{t // 2},max_action_index=25"], seeds
        )
        worst_work = 0
        worst_msgs = 0
        all_completed = True
        crash_times = {pid: 3.0 + 9.0 * pid for pid in range(1, t // 2 + 1)}
        scenario = Scenario(protocol="A-async", n=n, t=t, crash_times=crash_times)
        for seed in seeds:
            result = scenario.replace(seed=seed).run()
            worst_work = max(worst_work, result.metrics.work_total)
            worst_msgs = max(worst_msgs, result.metrics.messages_total)
            all_completed = all_completed and result.completed
        wb = bounds.protocol_a_work(n, t)
        mb = bounds.protocol_a_messages(n, t)
        rows.append(
            {
                "t": t,
                "n": n,
                "async work": worst_work,
                "async msgs": worst_msgs,
                "sync work": sync_aggregate.work,
                "sync msgs": sync_aggregate.messages,
                "work bound": wb.value,
                "msg bound": mb.value,
                "completed": all_completed,
                "ok": all_completed
                and wb.holds_for(worst_work)
                and mb.holds_for(worst_msgs),
            }
        )
    return ExperimentResult(
        exp_id="E11",
        title="Asynchronous Protocol A with failure detection (Section 2.1 remark)",
        claim="the same DoWork under a sound+complete failure detector keeps Theorem 2.3's effort profile without synchrony",
        columns=[
            "t", "n", "async work", "async msgs", "sync work", "sync msgs",
            "work bound", "msg bound", "completed", "ok",
        ],
        rows=rows,
    )


# =====================================================================
# E12 - reversion-threshold ablation (Section 4 remark)
# =====================================================================


def experiment_e12(quick: bool = False) -> ExperimentResult:
    t, n = (8, 64) if quick else (16, 256)
    f = t // 2 + 1
    adversary_plan = [(pid, 1) for pid in range(f)]
    rows = []
    for threshold in [0.25, 0.5, 0.75]:
        result = run_protocol(
            "D",
            n,
            t,
            adversary=StaggeredWorkKills.plan(adversary_plan),
            seed=4,
            revert_threshold=threshold,
        )
        from repro.sim.actions import MessageKind

        metrics = result.metrics
        reverted = (
            metrics.messages_of(MessageKind.PARTIAL_CHECKPOINT)
            + metrics.messages_of(MessageKind.FULL_CHECKPOINT)
        ) > 0
        rows.append(
            {
                "threshold": threshold,
                "reverted": reverted,
                "work": metrics.work_total,
                "messages": metrics.messages_total,
                "rounds": metrics.retire_round + 1,
                "completed": result.completed,
                "ok": result.completed,
            }
        )
    return ExperimentResult(
        exp_id="E12",
        title=f"Protocol D reversion-threshold ablation (n={n}, t={t}, {f} first-phase kills)",
        claim=(
            "the paper's 'half' factor is arbitrary: threshold alpha keeps phased work "
            "<= n/(1-alpha) but reverts more eagerly as alpha grows"
        ),
        columns=["threshold", "reverted", "work", "messages", "rounds", "completed", "ok"],
        rows=rows,
    )


# =====================================================================
# E13 - simulator scaling (fast-forward)
# =====================================================================


def experiment_e13(quick: bool = False) -> ExperimentResult:
    shapes = [("A", 16, 512), ("C", 8, 32)] if quick else [
        ("A", 64, 4096),
        ("B", 64, 4096),
        ("C", 16, 64),
        ("D", 64, 4096),
    ]
    rows = []
    for protocol, t, n in shapes:
        start = time.perf_counter()
        result = run_protocol(
            protocol, n, t, adversary=RandomCrashes(t // 2, max_action_index=25), seed=1
        )
        elapsed = time.perf_counter() - start
        metrics = result.metrics
        rows.append(
            {
                "protocol": protocol,
                "t": t,
                "n": n,
                "virtual rounds": float(metrics.retire_round),
                "wall seconds": round(elapsed, 3),
                "rounds/sec": float("inf")
                if elapsed == 0
                else float(metrics.retire_round) / elapsed,
                "completed": result.completed,
                "ok": result.completed,
            }
        )
    return ExperimentResult(
        exp_id="E13",
        title="Simulator scaling: deadline fast-forward",
        claim=(
            "wall time scales with actions, not rounds: Protocol C's 2^(n+t)-round "
            "deadline stretches are skipped in O(1)"
        ),
        columns=["protocol", "t", "n", "virtual rounds", "wall seconds", "rounds/sec", "completed", "ok"],
        rows=rows,
    )


# =====================================================================
# E17 - message-growth exponents (the complexity separation as a figure)
# =====================================================================


def experiment_e17(quick: bool = False) -> ExperimentResult:
    """Fit message counts to ``t^p`` across a doubling-ish sweep of t
    (with n = 4t) and check the paper's ordering of growth rates:
    Protocol C (t log t) < Protocols A/B (t sqrt t) < Protocol D (t^2
    per discovered failure, f growing with t here).  Measured worst-case
    counts stay below each protocol's own bound pointwise; the fitted
    exponents carry the asymptotic claim."""
    from repro.analysis.scaling import fit_power_law

    ts = [9, 16, 36] if quick else [9, 16, 36, 64]
    seeds = range(1) if quick else range(2)
    series: Dict[str, List[float]] = {}
    rows = []
    bound_fns = {
        "A": bounds.protocol_a_messages,
        "B": bounds.protocol_b_messages,
        "C": bounds.protocol_c_messages,
    }
    for protocol in ["A", "B", "C", "D"]:
        measured = []
        for t in ts:
            n = 4 * t
            adversaries = [
                f"kill-active:{t - 1},actions_before_kill=2",
                f"random:{t // 2},max_action_index=20",
            ]
            aggregate = worst_case(protocol, n, t, adversaries, seeds)
            measured.append(float(aggregate.messages))
            if protocol in bound_fns and not bound_fns[protocol](
                n, t
            ).holds_for(aggregate.messages):
                measured[-1] = float("nan")  # flagged below via ok
        series[protocol] = measured
        fit = fit_power_law([float(t) for t in ts], measured)
        row = {"protocol": protocol, "fit p (msgs ~ t^p)": round(fit.exponent, 2)}
        for t, value in zip(ts, measured):
            row[f"t={t}"] = value
        row["ok"] = True
        rows.append(row)
    exponents = {row["protocol"]: row["fit p (msgs ~ t^p)"] for row in rows}
    shape_ok = (
        exponents["C"] + 0.3 < exponents["A"]
        and exponents["C"] + 0.3 < exponents["B"]
        and exponents["A"] + 0.3 < exponents["D"]
    )
    for row in rows:
        row["ok"] = shape_ok
    return ExperimentResult(
        exp_id="E17",
        title="Message-growth exponents across protocols (n = 4t)",
        claim=(
            "growth ordering of message complexity: C (t log t) < A, B (t sqrt t) "
            "< D (failure-dependent t^2)"
        ),
        columns=["protocol"] + [f"t={t}" for t in ts] + ["fit p (msgs ~ t^p)", "ok"],
        rows=rows,
        notes=(
            "Worst case over kill-active and random-crash adversaries; power law "
            "fitted in log-log space.  Absolute counts also stay below each "
            "protocol's theorem bound pointwise."
        ),
    )


# =====================================================================
# E16 - Section 1.1: effort vs available processor steps
# =====================================================================


def experiment_e16(quick: bool = False) -> ExperimentResult:
    """The paper's measure-choice argument made measurable.

    Section 1.1 contrasts the paper's *effort* (charge only actual work
    and messages) with Kanellakis-Shvartsman's *available processor
    steps* (charge every non-faulty process every round).  The sequential
    protocols are effort-frugal but keep t-1 processes idle for the whole
    run, so their APS explodes (Protocol C's astronomically, thanks to
    exponential deadlines); Protocol D, whose phases keep everyone busy,
    is the only one whose APS tracks its effort.  De Prisco-Mayer-Yung
    [8] later showed n^2 APS is unavoidable in message passing for t~n.
    """
    t, n = (8, 64) if quick else (16, 256)
    f = t // 2
    rows = []
    for protocol in ["A", "B", "C", "D"]:
        result = run_protocol(
            protocol,
            n,
            t,
            adversary=RandomCrashes(f, max_action_index=20),
            seed=2,
        )
        metrics = result.metrics
        aps = metrics.available_processor_steps
        rows.append(
            {
                "protocol": protocol,
                "effort": metrics.effort,
                "APS": float(aps),
                "APS / effort": float(aps) / max(1, metrics.effort),
                "rounds": float(metrics.retire_round),
                "completed": result.completed,
                "ok": result.completed,
            }
        )
    by_name = {row["protocol"]: row for row in rows}
    shape_ok = (
        by_name["D"]["APS"] < by_name["A"]["APS"]
        and by_name["D"]["APS"] < by_name["C"]["APS"]
        and by_name["C"]["APS"] > 10 * by_name["D"]["APS"]
    )
    for row in rows:
        row["ok"] = bool(row["ok"]) and shape_ok
    return ExperimentResult(
        exp_id="E16",
        title=f"Effort vs available processor steps (Section 1.1), n={n}, t={t}",
        claim=(
            "the sequential protocols are effort-optimal but idle-heavy: their "
            "available-processor-steps cost dwarfs their effort, while Protocol "
            "D's parallel phases keep APS within a small factor of effort"
        ),
        columns=["protocol", "effort", "APS", "APS / effort", "rounds", "completed", "ok"],
        rows=rows,
        notes="APS = sum over processes of (retirement round + 1), the [KS92] measure.",
    )


# =====================================================================
# E15 - Section 3 motivation: the naive knowledge-spreader's Theta(t^2)
# =====================================================================


def experiment_e15(quick: bool = False) -> ExperimentResult:
    from repro.analysis.scaling import fit_power_law

    ts = [8, 16, 32] if quick else [8, 16, 32, 64]
    naive_work: List[float] = []
    c_work: List[float] = []
    rows = []
    for t in ts:
        n = 2 * t
        adversary = {
            "kind": "cascade",
            "lead_units": t - 1,
            "redo_units": t // 2,
            "initial_dead": list(range(t // 2 + 1, t)),
        }

        naive = worst_case("C-naive", n, t, [adversary], range(1))
        full_c = worst_case("C", n, t, [adversary], range(1))
        naive_work.append(float(naive.work))
        c_work.append(float(full_c.work))
        rows.append(
            {
                "t": t,
                "n": n,
                "naive work": naive.work,
                "naive msgs": naive.messages,
                "C work": full_c.work,
                "C msgs": full_c.messages,
                "C work bound": bounds.protocol_c_work(n, t).value,
                "completed": naive.all_completed and full_c.all_completed,
                "ok": full_c.all_completed
                and naive.all_completed
                and full_c.work <= bounds.protocol_c_work(n, t).value,
            }
        )
    naive_fit = fit_power_law([float(t) for t in ts], naive_work)
    c_fit = fit_power_law([float(t) for t in ts], c_work)
    growth_ok = naive_fit.exponent > 1.6 and c_fit.exponent < 1.3
    rows.append(
        {
            "t": "fit p (work ~ t^p)",
            "n": "-",
            "naive work": round(naive_fit.exponent, 2),
            "naive msgs": "-",
            "C work": round(c_fit.exponent, 2),
            "C msgs": "-",
            "C work bound": "-",
            "completed": True,
            "ok": growth_ok,
        }
    )
    return ExperimentResult(
        exp_id="E15",
        title="Naive knowledge-spreading vs Protocol C (Section 3 motivation)",
        claim=(
            "without fault detection the naive most-knowledgeable-takes-over "
            "algorithm does O(n + t^2) work and messages on the cascade schedule; "
            "Protocol C's fault detection keeps it at n + 2t work"
        ),
        columns=[
            "t", "n", "naive work", "naive msgs", "C work", "C msgs",
            "C work bound", "completed", "ok",
        ],
        rows=rows,
        notes=(
            "Cascade: process 0 performs t-1 units then crashes unreported; the "
            "top half of the pid space is dead from the start; each taker-over "
            "is killed after redoing t/2 units.  The final row fits work ~ t^p: "
            "the naive algorithm's exponent is ~2, Protocol C's ~1."
        ),
    )


# =====================================================================
# E14 - the Conclusions' weighted-effort remark
# =====================================================================


def experiment_e14(quick: bool = False) -> ExperimentResult:
    from repro.analysis.effort import EffortModel, cheapest

    t, n = (16, 256) if quick else (25, 500)
    seeds = range(2) if quick else range(3)
    adversaries = [
        f"random:{t // 2},max_action_index=20",
        f"kill-active:{t - 1},actions_before_kill=2",
    ]
    profiles: Dict[str, tuple] = {}
    for protocol, options in [
        ("replicate", {}),
        ("A", {}),
        ("B", {}),
        ("C", {}),
        ("D", {}),
    ]:
        aggregate = worst_case(protocol, n, t, adversaries, seeds, **options)
        profiles[protocol] = (aggregate.work, aggregate.messages)
    rows = []
    winners = set()
    for weight in [0.0, 0.1, 1.0, 10.0, 100.0]:
        model = EffortModel(work_weight=1.0, message_weight=weight)
        winner = cheapest(profiles, model)
        winners.add(winner)
        row = {"msg weight": weight, "winner": winner}
        for name, (work, messages) in sorted(profiles.items()):
            row[name] = model.effort_of(work, messages)
        row["ok"] = True
        rows.append(row)
    for row in rows:
        row["ok"] = len(winners) >= 2
    return ExperimentResult(
        exp_id="E14",
        title=f"Weighted effort: who is optimal depends on the cost model (n={n}, t={t})",
        claim=(
            "the Conclusions' remark: weighting messages differently from work "
            "changes which algorithm is optimal (free messages favour parallel D; "
            "expensive messages favour silent replication; in between, C then A/B)"
        ),
        columns=["msg weight", "winner", "A", "B", "C", "D", "replicate", "ok"],
        rows=rows,
        notes="Worst-case (work, messages) profiles per protocol; weighted effort = work + w * messages.",
    )


REGISTRY: Dict[str, Callable[[bool], ExperimentResult]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
    "E13": experiment_e13,
    "E14": experiment_e14,
    "E15": experiment_e15,
    "E16": experiment_e16,
    "E17": experiment_e17,
}


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    return REGISTRY[exp_id](quick)


def run_all(quick: bool = False) -> List[ExperimentResult]:
    return [runner(quick) for runner in REGISTRY.values()]
