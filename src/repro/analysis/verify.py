"""One-call verification of a run against the paper's bounds.

For downstream users who embed the protocols elsewhere: given a
:class:`~repro.sim.metrics.RunResult` and the configuration it came
from, check every bound the paper proves for that protocol and return a
structured report.

    from repro import run_protocol
    from repro.analysis.verify import verify_run

    result = run_protocol("B", 256, 16, adversary=..., seed=1)
    report = verify_run(result, "B", 256, 16)
    assert report.ok, report.failures()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import bounds
from repro.errors import ConfigurationError
from repro.sim.metrics import RunResult


@dataclass(frozen=True)
class Check:
    """One verified bound."""

    name: str
    formula: str
    bound: float
    measured: float
    ok: bool


@dataclass
class VerificationReport:
    protocol: str
    n: int
    t: int
    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.ok]

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "check": check.name,
                "bound": f"{check.formula} = {check.bound:g}",
                "measured": check.measured,
                "ok": check.ok,
            }
            for check in self.checks
        ]


_WORK_MESSAGE_BOUNDS: Dict[str, Tuple[Callable, Callable]] = {
    "A": (bounds.protocol_a_work, bounds.protocol_a_messages),
    "B": (bounds.protocol_b_work, bounds.protocol_b_messages),
    "C": (bounds.protocol_c_work, bounds.protocol_c_messages),
    "C-BATCHED": (bounds.protocol_c_batched_work, bounds.protocol_c_batched_messages),
}

_ROUND_BOUNDS: Dict[str, Callable] = {
    "A": bounds.protocol_a_rounds,
    "B": bounds.protocol_b_rounds,
    "C": bounds.protocol_c_rounds,
}


def verify_run(
    result: RunResult,
    protocol: str,
    n: int,
    t: int,
    *,
    failures: Optional[int] = None,
    round_slack: Optional[int] = None,
) -> VerificationReport:
    """Check ``result`` against every bound the paper proves for
    ``protocol`` on an ``(n, t)`` instance.

    ``failures`` is required for Protocol D (its message/round bounds are
    failure-dependent).  ``round_slack`` widens round-bound checks by the
    implementation's documented deadline slack; if ``None``, round bounds
    are reported but checked with a slack of ``4 t`` (the default slack
    of 2 paid on up to ``2t`` deadline evaluations).
    """
    key = protocol.upper()
    report = VerificationReport(protocol=protocol, n=n, t=t, checks=[])
    metrics = result.metrics
    slack = round_slack if round_slack is not None else 4 * t

    def add(name: str, bound, measured: float, widen: float = 0.0) -> None:
        report.checks.append(
            Check(
                name=name,
                formula=bound.formula,
                bound=bound.value,
                measured=measured,
                ok=measured <= bound.value + widen,
            )
        )

    if result.survivors >= 1:
        report.checks.append(
            Check(
                name="completion",
                formula="all n units performed",
                bound=float(n),
                measured=float(metrics.distinct_units_done()),
                ok=result.completed,
            )
        )

    if key in _WORK_MESSAGE_BOUNDS:
        work_bound, msg_bound = _WORK_MESSAGE_BOUNDS[key]
        add("work", work_bound(n, t), metrics.work_total)
        add("messages", msg_bound(n, t), metrics.messages_total)
        if key in _ROUND_BOUNDS:
            add("rounds", _ROUND_BOUNDS[key](n, t), float(metrics.retire_round), widen=slack)
    elif key == "D":
        if failures is None:
            raise ConfigurationError(
                "Protocol D's bounds depend on the failure count; pass failures="
            )
        reverted = metrics.messages_by_kind and any(
            kind.value.endswith("checkpoint") for kind in metrics.messages_by_kind
        )
        if reverted:
            add("work", bounds.protocol_d_reverted_work(n, t, failures), metrics.work_total)
            add(
                "messages",
                bounds.protocol_d_reverted_messages(n, t, failures),
                metrics.messages_total,
            )
        else:
            add("work", bounds.protocol_d_work(n, t, failures), metrics.work_total)
            add(
                "messages",
                bounds.protocol_d_messages(n, t, failures),
                metrics.messages_total,
            )
            add(
                "rounds",
                bounds.protocol_d_rounds(n, t, failures),
                float(metrics.retire_round + 1),
                widen=slack,
            )
    elif key == "REPLICATE":
        add("work", bounds.replicate_work(n, t), metrics.work_total)
    elif key == "NAIVE":
        pass  # the straw man has no paper bound beyond completion
    else:
        raise ConfigurationError(
            f"no verification rules for protocol {protocol!r}"
        )
    return report
