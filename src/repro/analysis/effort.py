"""Weighted effort models (the Conclusions' open direction).

"By trying to optimize effort, the sum of work done and messages sent,
we implicitly assumed that one unit of work was equal to one message.
In practice, we may want to weight messages and work differently. [...]
if we weight things a little differently, then a completely different
set of algorithms might turn out to be optimal."

This module makes that remark quantitative: a weighted effort
``work_weight * W + message_weight * M`` and the crossover weight at
which two protocols' weighted efforts tie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.metrics import Metrics


@dataclass(frozen=True)
class EffortModel:
    """Linear cost model over the paper's two effort currencies."""

    work_weight: float = 1.0
    message_weight: float = 1.0

    def effort(self, metrics: Metrics) -> float:
        return (
            self.work_weight * metrics.work_total
            + self.message_weight * metrics.messages_total
        )

    def effort_of(self, work: float, messages: float) -> float:
        return self.work_weight * work + self.message_weight * messages


def crossover_message_weight(
    work_a: float, messages_a: float, work_b: float, messages_b: float
) -> Optional[float]:
    """Message weight (work weight fixed at 1) at which protocol A's and
    protocol B's weighted efforts tie; ``None`` if one dominates for all
    non-negative weights."""
    if messages_a == messages_b:
        return None
    weight = (work_b - work_a) / (messages_a - messages_b)
    return weight if weight >= 0 else None


def cheapest(
    profiles: Dict[str, Tuple[float, float]], model: EffortModel
) -> str:
    """Name of the protocol with the least weighted effort under ``model``.

    ``profiles`` maps protocol name to its (work, messages) profile.
    Ties break lexicographically for determinism.
    """
    return min(
        sorted(profiles),
        key=lambda name: model.effort_of(*profiles[name]),
    )
