"""The paper's closed-form complexity bounds, one function per claim.

Every benchmark compares its measured work / message / round counts
against these.  The bounds are stated under the paper's simplifying
assumptions (``t`` a perfect square with ``t | n`` for Protocols A and B,
``t`` a power of two for Protocol C); the benchmark sweeps choose shapes
that satisfy them so the constants apply verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Bound:
    """A single bound: human-readable formula plus its evaluated value."""

    formula: str
    value: float

    def holds_for(self, measured: float) -> bool:
        return measured <= self.value


def _sqrt(t: int) -> float:
    return math.sqrt(t)


def _log2(t: int) -> float:
    return math.log2(max(2, t))


# ---- Theorem 2.3: Protocol A ------------------------------------------------


def protocol_a_work(n: int, t: int) -> Bound:
    n_prime = max(n, t)
    return Bound("3n'", 3 * n_prime)


def protocol_a_messages(n: int, t: int) -> Bound:
    return Bound("9 t sqrt(t)", 9 * t * _sqrt(t))


def protocol_a_rounds(n: int, t: int) -> Bound:
    return Bound("n t + 3 t^2", n * t + 3 * t * t)


# ---- Theorem 2.8: Protocol B ------------------------------------------------


def protocol_b_work(n: int, t: int) -> Bound:
    n_prime = max(n, t)
    return Bound("3n'", 3 * n_prime)


def protocol_b_messages(n: int, t: int) -> Bound:
    return Bound("10 t sqrt(t)", 10 * t * _sqrt(t))


def protocol_b_rounds(n: int, t: int) -> Bound:
    return Bound("3n + 8t", 3 * n + 8 * t)


# ---- Theorem 3.8 / Corollary 3.9: Protocol C ---------------------------------


def protocol_c_work(n: int, t: int) -> Bound:
    return Bound("n + 2t", n + 2 * t)


def protocol_c_messages(n: int, t: int) -> Bound:
    return Bound("n + 8 t log t", n + 8 * t * _log2(t))


def protocol_c_rounds(n: int, t: int) -> Bound:
    k = 5 * t + 2 * _log2(t)
    return Bound("t K (n+t) 2^(n+t)", t * k * (n + t) * 2.0 ** (n + t))


def protocol_c_batched_work(n: int, t: int) -> Bound:
    # Corollary 3.9: "does not result in a significant increase in total
    # work": each takeover may redo up to one unreported batch of
    # ceil(n/t) units, so work stays within 2n + 2t = O(n + t).
    return Bound("2n + 2t", 2 * n + 2 * t)


def protocol_c_batched_messages(n: int, t: int) -> Bound:
    return Bound("9 t log t", 9 * t * _log2(t))


# ---- Theorem 4.1: Protocol D ---------------------------------------------------


def protocol_d_work(n: int, t: int, f: int) -> Bound:
    return Bound("2n", 2 * n)


def protocol_d_messages(n: int, t: int, f: int) -> Bound:
    return Bound("(4f + 2) t^2", (4 * f + 2) * t * t)


def protocol_d_rounds(n: int, t: int, f: int) -> Bound:
    return Bound("(f+1) n/t + 4f + 2", (f + 1) * n / t + 4 * f + 2)


def protocol_d_reverted_work(n: int, t: int, f: int) -> Bound:
    return Bound("4n", 4 * n)


def protocol_d_reverted_messages(n: int, t: int, f: int) -> Bound:
    extra = 9 * t * _sqrt(t) / (2 * math.sqrt(2))
    return Bound("(4f+2) t^2 + 9 t sqrt(t) / (2 sqrt 2)", (4 * f + 2) * t * t + extra)


def protocol_d_failure_free() -> Dict[str, str]:
    """Exact (not just bounded) failure-free behaviour asserted by §4."""
    return {"work": "n", "rounds": "n/t + 2", "messages": "<= 2 t^2"}


# ---- baselines (Section 1) --------------------------------------------------------


def replicate_work(n: int, t: int) -> Bound:
    return Bound("t n", t * n)


def single_checkpointer_work(n: int, t: int) -> Bound:
    return Bound("n + t - 1", n + t - 1)


def single_checkpointer_messages(n: int, t: int) -> Bound:
    return Bound("~ t n", t * n)


# ---- Section 5: Byzantine agreement --------------------------------------------------


def byzantine_messages(n_system: int, t: int, protocol: str) -> Bound:
    s = t + 1  # senders
    if protocol.upper() in ("A", "B"):
        return Bound(
            "n + O(t sqrt(t))", n_system + t + 10 * s * _sqrt(s)
        )
    return Bound("n + O(t log t)", n_system + t + 10 * s * _log2(s) + n_system)
