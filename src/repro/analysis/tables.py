"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_number(value: Any) -> str:
    """Human-friendly numbers: separators for ints, scientific for huge."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        if abs(value) >= 10**15:
            return f"{float(value):.3e}"
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 10**15:
            return f"{value:.3e}"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if value == int(value):
            return f"{int(value):,}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table (also valid GitHub-flavoured markdown)."""
    formatted: List[List[str]] = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ) + " |"

    parts: List[str] = []
    if title:
        parts.append(f"### {title}")
        parts.append("")
    parts.append(line([str(header) for header in headers]))
    parts.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    parts.extend(line(row) for row in formatted)
    return "\n".join(parts)


def render_dict_rows(
    columns: Sequence[str],
    rows: Iterable[dict],
    *,
    title: Optional[str] = None,
) -> str:
    """Render dict rows selecting ``columns`` in order (missing -> '-')."""
    return render_table(
        columns,
        [[row.get(column) for column in columns] for row in rows],
        title=title,
    )
