"""Deterministic, seeded fault injection for the execution plane.

DHW-92 is a paper about finishing work despite fail-stop faults; this
module points the same adversarial mindset at our own infrastructure.
A :class:`ChaosInjector` is threaded through the service stack -- the
:class:`~repro.cache.ResultCache` journal, the
:class:`~repro.server.jobs.JobStore` workers, the HTTP handler, the
:class:`~repro.client.Client` transport and the
:class:`~repro.campaign.ledger.CampaignLedger` -- and decides, at named
*injection points*, whether the next operation fails and how.  Every
decision comes from a per-point seeded RNG stream, so a chaos run is a
deterministic function of ``(seed, per-point call sequence)`` and a
failure found once reproduces forever (the same property the simulation
adversaries have).

Injection points and their fault modes:

=================  ====================================================
``journal_write``  cache journal append: ``torn`` (half a line, no
                   newline), ``partial`` (a truncated-but-newline-
                   terminated line), ``fail`` (the write raises
                   ``OSError``)
``worker``         job-store execution: ``crash`` (raises mid-run),
                   ``delay`` (completes late)
``transport``      client HTTP request: ``refused`` (connection
                   refused), ``error_5xx`` (a retryable 5xx),
                   ``slow`` (response delayed)
``handler``        server request handling: ``exception`` (the handler
                   raises; the client sees HTTP 500)
``ledger_append``  campaign chunk checkpoint: ``torn`` (half a line,
                   then a simulated kill), ``fsync_fail`` (the flush
                   "fails"; the append rewinds and retries)
=================  ====================================================

The spec grammar mirrors the adversary grammar: a comma-separated
string of ``point=rate`` pairs plus an optional ``seed``::

    chaos="journal_write=0.02,transport=0.05,worker=0.01,seed=7"

or the equivalent dict.  :func:`normalize_chaos_spec` canonicalises and
validates (rates must be numbers in ``[0, 1]``; unknown points are
:class:`~repro.errors.ConfigurationError`\\ s naming the offending value),
:func:`chaos_from_spec` builds a live injector.  Every injected fault is
recorded in the injector's :class:`ChaosLog`, which is what the chaos
harness (``tests/test_chaos.py``, CI ``chaos-smoke``) asserts against:
faults *were* injected, and nothing was lost anyway.  See
``docs/chaos.md``.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: The named places the service stack consults the injector.
INJECTION_POINTS = (
    "journal_write",
    "worker",
    "transport",
    "handler",
    "ledger_append",
)

#: Fault modes per injection point; a firing point picks one uniformly
#: from its own RNG stream.
POINT_MODES: Dict[str, Tuple[str, ...]] = {
    "journal_write": ("torn", "partial", "fail"),
    "worker": ("crash", "delay"),
    "transport": ("refused", "error_5xx", "slow"),
    "handler": ("exception",),
    "ledger_append": ("torn", "fsync_fail"),
}

#: ChaosLog keeps at most this many per-event records (counters are
#: never truncated).
MAX_LOGGED_EVENTS = 10_000


class InjectedFault(Exception):
    """An injected failure (not a :class:`~repro.errors.ReproError`:
    the hardened layers must treat it like any *unexpected* crash)."""


class ChaosInterrupt(InjectedFault):
    """An injected mid-write kill (torn ledger append).  Propagates out
    of the campaign runner exactly like a real ``kill -9`` would stop
    the process; the harness catches it and resumes."""


class ChaosLog:
    """Thread-safe record of every injected fault.

    ``events`` holds ``{"point", "mode", "detail"}`` dicts in injection
    order (capped at :data:`MAX_LOGGED_EVENTS`); ``counts`` never caps.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.events: List[Dict[str, str]] = []
        self.counts: Counter = Counter()  # (point, mode) -> n

    def record(self, point: str, mode: str, detail: str = "") -> None:
        with self._lock:
            self.counts[(point, mode)] += 1
            if len(self.events) < MAX_LOGGED_EVENTS:
                self.events.append(
                    {"point": point, "mode": mode, "detail": detail}
                )

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def count(self, point: Optional[str] = None, mode: Optional[str] = None) -> int:
        """Injected-fault count, optionally filtered by point and mode."""
        with self._lock:
            return sum(
                n
                for (p, m), n in self.counts.items()
                if (point is None or p == point) and (mode is None or m == mode)
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot (the chaos-report artifact)."""
        with self._lock:
            by_point: Counter = Counter()
            for (point, _), n in self.counts.items():
                by_point[point] += n
            return {
                "total": sum(self.counts.values()),
                "by_point": dict(sorted(by_point.items())),
                "by_mode": {
                    f"{point}:{mode}": n
                    for (point, mode), n in sorted(self.counts.items())
                },
                "events": [dict(event) for event in self.events],
            }


class ChaosInjector:
    """Seeded fault source shared across the stack's injection points.

    Each point draws from its **own** ``random.Random`` stream (seeded
    ``(seed, point)``), so whether the 7th journal write tears does not
    depend on how many transport calls happened first -- determinism
    survives thread interleaving as long as each point's own call
    sequence is deterministic.  ``fire`` is the single entry: it returns
    ``None`` (proceed normally) or a mode string from
    :data:`POINT_MODES`, recording the fault in :attr:`log`.
    """

    def __init__(self, rates: Dict[str, float], seed: int = 0):
        normalized = normalize_chaos_spec({"seed": seed, **rates})
        self.rates: Dict[str, float] = dict(normalized["rates"]) if normalized else {}
        self.seed = int(seed)
        self.log = ChaosLog()
        self._lock = threading.Lock()
        self._rngs = {
            point: random.Random(f"{self.seed}:{point}")
            for point in INJECTION_POINTS
        }

    def fire(self, point: str, detail: str = "") -> Optional[str]:
        """``None`` or the fault mode to inject at ``point`` now."""
        if point not in POINT_MODES:
            raise ConfigurationError(
                f"unknown chaos injection point {point!r}; known points: "
                + ", ".join(INJECTION_POINTS)
            )
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return None
        with self._lock:
            rng = self._rngs[point]
            if rng.random() >= rate:
                return None
            modes = POINT_MODES[point]
            mode = modes[rng.randrange(len(modes))] if len(modes) > 1 else modes[0]
        self.log.record(point, mode, detail)
        return mode

    def spec_dict(self) -> Dict[str, Any]:
        """The canonical spec this injector was built from."""
        return {"seed": self.seed, "rates": dict(sorted(self.rates.items()))}


# =====================================================================
# The chaos spec grammar
# =====================================================================

#: What chaos-accepting entry points take: ``None`` (no injection), a
#: grammar string, a dict, or an already-built injector.
ChaosSpec = Union[None, str, Dict[str, Any], ChaosInjector]


def _rate_value(value, *, point: str) -> float:
    try:
        rate = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"chaos rate for {point!r} must be a number in [0, 1], "
            f"got {value!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(
            f"chaos rate for {point!r} must be in [0, 1], got {rate!r}"
        )
    return rate


def _parse_chaos_string(text: str) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep:
            raise ConfigurationError(
                f"chaos spec entries are spelled POINT=RATE (or seed=N), "
                f"got {part!r}"
            )
        params[name.strip().replace("-", "_")] = value.strip()
    return params


def normalize_chaos_spec(spec: ChaosSpec) -> Optional[Dict[str, Any]]:
    """Canonicalise ``spec`` to ``None`` or a validated
    ``{"seed": int, "rates": {point: rate}}`` dict.

    Accepts the string grammar
    (``"journal_write=0.02,transport=0.05,seed=7"``), a flat dict of the
    same shape, or an already-canonical ``{"seed", "rates"}`` dict.
    Raises :class:`ConfigurationError` naming any unknown point or
    out-of-range rate.  A spec with no positive rate normalizes to
    ``None`` (no injection).
    """
    if spec is None:
        return None
    if isinstance(spec, ChaosInjector):
        return spec.spec_dict()
    if isinstance(spec, str):
        params = _parse_chaos_string(spec)
    elif isinstance(spec, dict):
        params = {str(k).replace("-", "_"): v for k, v in spec.items()}
    else:
        raise ConfigurationError(
            f"chaos spec must be None, a string, or a dict, got "
            f"{type(spec).__name__}"
        )
    if "rates" in params:
        raw_rates = params.pop("rates")
        if not isinstance(raw_rates, dict):
            raise ConfigurationError(
                f"'rates' in a chaos spec must be a dict of point=rate, "
                f"got {raw_rates!r}"
            )
        overlap = set(params) & set(INJECTION_POINTS)
        if overlap:
            raise ConfigurationError(
                f"chaos spec mixes a 'rates' dict with top-level point(s) "
                f"{sorted(overlap)}; use one form"
            )
        params.update(raw_rates)
    seed = 0
    if "seed" in params:
        raw_seed = params.pop("seed")
        try:
            seed = int(raw_seed)
            if isinstance(raw_seed, float) and raw_seed != seed:
                raise ValueError
            if isinstance(raw_seed, bool):
                raise ValueError
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"chaos 'seed' must be an integer, got {raw_seed!r}"
            )
    unknown = set(params) - set(INJECTION_POINTS)
    if unknown:
        raise ConfigurationError(
            f"unknown chaos injection point(s) {sorted(unknown)}; known "
            "points: " + ", ".join(INJECTION_POINTS)
        )
    rates = {
        point: _rate_value(value, point=point)
        for point, value in params.items()
    }
    rates = {point: rate for point, rate in sorted(rates.items()) if rate > 0.0}
    if not rates:
        return None
    return {"seed": seed, "rates": rates}


def chaos_from_spec(spec: ChaosSpec) -> Optional[ChaosInjector]:
    """Build a fresh :class:`ChaosInjector` from a spec (``None`` when
    the spec injects nothing).  A live injector passes through."""
    if isinstance(spec, ChaosInjector):
        return spec
    params = normalize_chaos_spec(spec)
    if params is None:
        return None
    return ChaosInjector(params["rates"], seed=params["seed"])


__all__ = [
    "INJECTION_POINTS",
    "POINT_MODES",
    "ChaosInjector",
    "ChaosInterrupt",
    "ChaosLog",
    "ChaosSpec",
    "InjectedFault",
    "chaos_from_spec",
    "normalize_chaos_spec",
]
