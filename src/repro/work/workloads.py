"""Workload scenarios: the paper's motivating examples as WorkSpecs.

The paper's units of work are any idempotent operations: "verifying a
step in a formal proof, evaluating a boolean formula at a particular
assignment, sensing the status of a valve, closing a valve, sending a
message to a process outside the system, or reading records in a
distributed database."  Scenarios give the benchmark tables and the
examples concrete unit labels; the simulator's behaviour depends only on
the unit count.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.work.spec import WorkSpec


def valve_shutdown(n: int) -> WorkSpec:
    """The nuclear-reactor scenario from the introduction: ``n`` valves
    must each be verified closed before fuel is added."""
    return WorkSpec(
        n=n,
        name="valve-shutdown",
        describe_unit=lambda unit: f"verify valve #{unit} is closed",
    )


def proof_checking(n: int) -> WorkSpec:
    """Verify each step of an ``n``-step formal proof."""
    return WorkSpec(
        n=n,
        name="proof-checking",
        describe_unit=lambda unit: f"check proof step {unit}",
    )


def formula_evaluation(n: int) -> WorkSpec:
    """Evaluate a boolean formula at ``n`` assignments (e.g. SAT search)."""
    return WorkSpec(
        n=n,
        name="formula-evaluation",
        describe_unit=lambda unit: f"evaluate formula at assignment {unit}",
    )


def database_scan(n: int) -> WorkSpec:
    """Read ``n`` record ranges of a distributed database."""
    return WorkSpec(
        n=n,
        name="database-scan",
        describe_unit=lambda unit: f"read record range {unit}",
    )


def idle_workstation_jobs(n: int) -> WorkSpec:
    """The LAN scenario: ``n`` batch jobs farmed out to idle workstations;
    a "failure" is a user reclaiming her machine."""
    return WorkSpec(
        n=n,
        name="idle-workstations",
        describe_unit=lambda unit: f"run batch job {unit}",
    )


SCENARIOS: Dict[str, Callable[[int], WorkSpec]] = {
    "valve-shutdown": valve_shutdown,
    "proof-checking": proof_checking,
    "formula-evaluation": formula_evaluation,
    "database-scan": database_scan,
    "idle-workstations": idle_workstation_jobs,
}


def scenario(name: str, n: int) -> WorkSpec:
    """Look up a scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return factory(n)


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)
