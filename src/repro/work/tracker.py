"""Completion tracking for the pool of work units.

The tracker is the simulation's ground truth about which of the ``n``
idempotent units have been performed, how often, by whom and when.  It is
deliberately separate from any process state: the protocols' *knowledge*
of completed work lives inside the processes, while the tracker records
what physically happened - the gap between the two is exactly the
redundant work the paper's theorems bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


class WorkTracker:
    """Records executions of units ``1..n``."""

    def __init__(self, n: int):
        if n < 0:
            raise ConfigurationError(f"cannot track a negative number of units: {n}")
        self.n = n
        self._count: Dict[int, int] = {}
        self._first: Dict[int, Tuple[int, int]] = {}  # unit -> (round, pid)

    # ---- recording ---------------------------------------------------

    def record(self, pid: int, unit: int, round_number: int) -> None:
        if not 1 <= unit <= self.n:
            raise ConfigurationError(
                f"process {pid} performed unit {unit}, outside 1..{self.n}"
            )
        self._count[unit] = self._count.get(unit, 0) + 1
        self._first.setdefault(unit, (round_number, pid))

    # ---- queries -----------------------------------------------------

    def times_done(self, unit: int) -> int:
        return self._count.get(unit, 0)

    def all_done(self) -> bool:
        return len(self._count) == self.n

    def missing_units(self) -> List[int]:
        return [unit for unit in range(1, self.n + 1) if unit not in self._count]

    def total_executions(self) -> int:
        return sum(self._count.values())

    def redundant_executions(self) -> int:
        return sum(count - 1 for count in self._count.values())

    def first_execution(self, unit: int) -> Optional[Tuple[int, int]]:
        """(round, pid) of the first execution of ``unit``, if any."""
        return self._first.get(unit)

    def completion_round(self) -> Optional[int]:
        """Round by which every unit had been performed at least once."""
        if not self.all_done():
            return None
        return max(
            (round_number for round_number, _ in self._first.values()), default=0
        )

    def max_multiplicity(self) -> int:
        return max(self._count.values(), default=0)
