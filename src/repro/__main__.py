"""Command-line interface: ``python -m repro ...``

Subcommands:

* ``run`` - simulate one protocol execution and print its accounting::

      python -m repro run B --n 256 --t 16 --crashes 8 --seed 7
      python -m repro run a-async --engine async --n 128 --t 16 --json
      python -m repro run B --adversary "kill-active:7,actions_before_kill=3"
      python -m repro run --scenario scenario.json --json

* ``compare`` - run several protocols on the same workload and print the
  comparison table::

      python -m repro compare --n 256 --t 16 --crashes 8 [--json]

* ``report`` - regenerate EXPERIMENTS.md (same as
  ``python -m repro.analysis.report``)::

      python -m repro report --quick

* ``list`` - list registered protocols with engine kind and description.

Adversaries come from declarative specs (``--adversary KIND:ARGS``, see
``docs/api.md``); ``--crashes`` and ``--kill-active`` remain as
shorthands and *compose* when both are given.  ``--json`` emits the
machine-readable :meth:`RunResult.to_dict` payload (metrics, completion,
scenario config echo) instead of the table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.api import ENGINE_CHOICES, Scenario
from repro.core.registry import available_protocols, get_entry


def _adversary_spec(args):
    """Merge ``--adversary`` with the ``--crashes``/``--kill-active``
    shorthands into one spec (composing when several are given)."""
    specs = []
    if getattr(args, "adversary", None):
        specs.append(args.adversary)
    if getattr(args, "kill_active", 0):
        specs.append(
            {
                "kind": "kill-active",
                "budget": args.kill_active,
                "actions_before_kill": args.actions_before_kill,
            }
        )
    if getattr(args, "crashes", 0):
        specs.append(
            {
                "kind": "random",
                "count": args.crashes,
                "max_action_index": args.max_action_index,
            }
        )
    if not specs:
        return None
    if len(specs) == 1:
        return specs[0]
    return {"kind": "compose", "parts": specs}


def _scenario_from_args(args, protocol: str) -> Scenario:
    return Scenario(
        protocol=protocol,
        n=args.n,
        t=args.t,
        engine=args.engine,
        seed=args.seed,
        adversary=_adversary_spec(args),
        delay=getattr(args, "delay", None),
    )


def _emit_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return
    rows = sorted(result.summary().items())
    print(render_table(["measure", "value"], [[k, _fmt(v)] for k, v in rows]))


def _cmd_run(args) -> int:
    if args.scenario:
        if args.protocol:
            print(
                "error: give either a protocol name or --scenario FILE, not both",
                file=sys.stderr,
            )
            return 2
        scenario = Scenario.from_file(args.scenario)
    else:
        if not args.protocol:
            print(
                "error: a protocol name (or --scenario FILE) is required",
                file=sys.stderr,
            )
            return 2
        scenario = _scenario_from_args(args, args.protocol)
    result = scenario.run()
    _emit_result(result, args.json)
    return 0 if result.completed else 1


def _fmt(value):
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in sorted(value.items())) or "-"
    return value


def _cmd_compare(args) -> int:
    rows = []
    payload = []
    failures = 0
    for protocol in args.protocols:
        result = _scenario_from_args(args, protocol).run()
        metrics = result.metrics
        payload.append(result.to_dict())
        rows.append(
            [
                protocol,
                metrics.work_total,
                metrics.messages_total,
                metrics.effort,
                float(metrics.retire_round),
                "yes" if result.completed else "NO",
            ]
        )
        failures += 0 if result.completed else 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            render_table(
                ["protocol", "work", "messages", "effort", "rounds", "completed"], rows
            )
        )
    return 0 if failures == 0 else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import main as report_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.out:
        forwarded.extend(["--out", args.out])
    return report_main(forwarded)


def _cmd_list(_args) -> int:
    for name in available_protocols():
        entry = get_entry(name)
        suffix = f"  [{entry.engine}]"
        if entry.description:
            suffix += f"  {entry.description}"
        print(f"{name}{suffix}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Do-All protocols from Dwork-Halpern-Waarts 1992"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--n", type=int, default=256, help="work units")
        p.add_argument("--t", type=int, default=16, help="processes")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--engine",
            choices=list(ENGINE_CHOICES),
            default="auto",
            help="simulator kind (auto resolves from the protocol registry)",
        )
        p.add_argument(
            "--adversary",
            default=None,
            metavar="SPEC",
            help="adversary spec, e.g. 'random:8,max_action_index=25' or "
            "'kill-active:7' (see docs/api.md for the grammar)",
        )
        p.add_argument(
            "--delay",
            default=None,
            metavar="SPEC",
            help="async delay model spec, e.g. 'uniform:0.5,4.0' or 'fixed:1'",
        )
        p.add_argument(
            "--crashes",
            type=int,
            default=0,
            help="shorthand for the random-crashes adversary (composes with "
            "--kill-active and --adversary)",
        )
        p.add_argument(
            "--max-action-index",
            type=int,
            default=25,
            help="latest action at which a --crashes victim may die",
        )
        p.add_argument(
            "--kill-active",
            type=int,
            default=0,
            help="shorthand for the kill-the-active-process adversary (budget)",
        )
        p.add_argument(
            "--actions-before-kill",
            type=int,
            default=2,
            help="how many actions each active victim survives (--kill-active)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of the table",
        )

    run_p = sub.add_parser("run", help="simulate one protocol execution")
    run_p.add_argument(
        "protocol",
        nargs="?",
        default=None,
        type=str.lower,  # registry names are case-insensitive
        choices=[None] + available_protocols(),
        help="registered protocol name (omit when using --scenario)",
    )
    run_p.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="run a serialized Scenario JSON file instead of CLI flags",
    )
    add_common(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare protocols on one workload")
    cmp_p.add_argument(
        "--protocols",
        nargs="+",
        default=["replicate", "naive", "a", "b", "c", "d"],
    )
    add_common(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    rep_p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep_p.add_argument("--quick", action="store_true")
    rep_p.add_argument("--out", default=None)
    rep_p.set_defaults(func=_cmd_report)

    list_p = sub.add_parser("list", help="list registered protocols")
    list_p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
