"""Command-line interface: ``python -m repro ...``

Subcommands:

* ``run`` - simulate one protocol execution and print its accounting::

      python -m repro run B --n 256 --t 16 --crashes 8 --seed 7

* ``compare`` - run several protocols on the same workload and print the
  comparison table::

      python -m repro compare --n 256 --t 16 --crashes 8

* ``report`` - regenerate EXPERIMENTS.md (same as
  ``python -m repro.analysis.report``)::

      python -m repro report --quick

* ``list`` - list registered protocols.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.core.registry import available_protocols, run_protocol
from repro.sim.adversary import KillActive, RandomCrashes


def _make_adversary(args):
    if getattr(args, "kill_active", 0):
        return KillActive(args.kill_active, actions_before_kill=2)
    if getattr(args, "crashes", 0):
        return RandomCrashes(args.crashes, max_action_index=25)
    return None


def _cmd_run(args) -> int:
    result = run_protocol(
        args.protocol,
        args.n,
        args.t,
        adversary=_make_adversary(args),
        seed=args.seed,
    )
    rows = sorted(result.summary().items())
    print(render_table(["measure", "value"], [[k, _fmt(v)] for k, v in rows]))
    return 0 if result.completed else 1


def _fmt(value):
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in sorted(value.items())) or "-"
    return value


def _cmd_compare(args) -> int:
    rows = []
    failures = 0
    for protocol in args.protocols:
        result = run_protocol(
            protocol,
            args.n,
            args.t,
            adversary=_make_adversary(args),
            seed=args.seed,
        )
        metrics = result.metrics
        rows.append(
            [
                protocol,
                metrics.work_total,
                metrics.messages_total,
                metrics.effort,
                float(metrics.retire_round),
                "yes" if result.completed else "NO",
            ]
        )
        failures += 0 if result.completed else 1
    print(
        render_table(
            ["protocol", "work", "messages", "effort", "rounds", "completed"], rows
        )
    )
    return 0 if failures == 0 else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import main as report_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.out:
        forwarded.extend(["--out", args.out])
    return report_main(forwarded)


def _cmd_list(_args) -> int:
    for name in available_protocols():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Do-All protocols from Dwork-Halpern-Waarts 1992"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--n", type=int, default=256, help="work units")
        p.add_argument("--t", type=int, default=16, help="processes")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--crashes", type=int, default=0, help="random crash count"
        )
        p.add_argument(
            "--kill-active",
            type=int,
            default=0,
            help="kill-the-active-process budget (overrides --crashes)",
        )

    run_p = sub.add_parser("run", help="simulate one protocol execution")
    run_p.add_argument("protocol", choices=[p for p in available_protocols()])
    add_common(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare protocols on one workload")
    cmp_p.add_argument(
        "--protocols",
        nargs="+",
        default=["replicate", "naive", "a", "b", "c", "d"],
    )
    add_common(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    rep_p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep_p.add_argument("--quick", action="store_true")
    rep_p.add_argument("--out", default=None)
    rep_p.set_defaults(func=_cmd_report)

    list_p = sub.add_parser("list", help="list registered protocols")
    list_p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
