"""Command-line interface: ``python -m repro ...``

Subcommands:

* ``run`` - simulate one protocol execution and print its accounting::

      python -m repro run B --n 256 --t 16 --crashes 8 --seed 7
      python -m repro run a-async --engine async --n 128 --t 16 --json
      python -m repro run B --adversary "kill-active:7,actions_before_kill=3"
      python -m repro run --scenario scenario.json --json

* ``compare`` - run several protocols on the same workload and print the
  comparison table::

      python -m repro compare --n 256 --t 16 --crashes 8 [--json]

* ``report`` - regenerate EXPERIMENTS.md (same as
  ``python -m repro.analysis.report``)::

      python -m repro report --quick

* ``list`` - list registered protocols with engine kind and description.

* ``adversaries`` - list adversary spec kinds with their required and
  optional parameters (``--json`` for machine-readable rows).

* ``serve`` - run the simulation-as-a-service daemon (see
  ``docs/serve.md``): an HTTP/JSON server that executes submitted
  Scenario/Sweep/Suite documents and memoizes results in a
  content-addressed cache, so duplicate submissions cost one run::

      python -m repro serve --port 8123 --job-workers 4
      python -m repro serve --cache-file cache.jsonl --cache-size 10000

* ``submit`` - send scenario/sweep/suite JSON files to a running server
  and wait for the (possibly cached) results::

      python -m repro submit scenario.json --server http://127.0.0.1:8123
      python -m repro submit scenarios/paper_battery.json --json

* ``campaign`` - sharded, resumable large-grid experiment campaigns
  (see ``docs/campaigns.md``): plan a grid spec into deterministic
  chunks, execute them with per-chunk ledger checkpoints, resume after
  an interruption by skipping checkpointed chunks, and merge everything
  into one per-cell worst/mean report::

      python -m repro campaign plan campaigns/paper_grid.json
      python -m repro campaign run campaigns/paper_grid.json --ledger grid.ledger
      python -m repro campaign resume campaigns/paper_grid.json --ledger grid.ledger
      python -m repro campaign status campaigns/paper_grid.json --ledger grid.ledger
      python -m repro campaign report campaigns/paper_grid.json --ledger grid.ledger

  ``run`` accepts ``--workers N`` (local pool), ``--cache-file PATH``
  (shared content-addressed cache), ``--server URL`` (execute on a
  remote ``repro serve`` so shards share one memo), ``--shard i/k``
  (this invocation only runs chunks with ``index % k == i``) and
  ``--max-chunks N`` (deliberate interruption).  ``resume`` is ``run``
  that *requires* an existing ledger.  ``status`` exits 0 only when the
  grid is complete; ``report`` accepts several ``--ledger`` files (one
  per shard) and exits 1 when campaign pins fail.

* ``cache`` - maintain content-addressed result-cache journals::

      python -m repro cache compact cache.jsonl

  ``compact`` rewrites an append-only journal to its live entries
  (atomically), dropping dead lines left by re-stores and evictions.

* ``bench`` - commit-stamped bench history (see ``docs/perf.md``)::

      python -m repro bench snapshot --label pr8
      python -m repro bench timeline --measure seconds_best

  ``snapshot`` copies ``BENCH_engine.json`` into
  ``benchmarks/history/NNNN_<commit>.json``; ``timeline`` pivots every
  snapshot into per-scenario trend tables across the PR series.

* ``suite`` - versioned, regression-pinned scenario suites (see
  ``docs/suites.md``)::

      python -m repro suite list                                  # shipped suites
      python -m repro suite run scenarios/paper_battery.json --workers 4
      python -m repro suite check scenarios/*.json --out report.json
      python -m repro suite diff old-report.json new-report.json

  ``run`` executes a suite and prints/exports the per-entry worst-case
  report (exit 1 if any run fails to complete); ``check`` additionally
  enforces the regression pins exactly (``--update-pins`` rewrites them
  from the observed values instead).  ``--workers N`` pools each
  entry's runs on a multiprocessing pool (per-entry ``workers`` hints
  in the suite file override it; single-scenario entries run
  in-process); metrics are bit-identical to ``--workers 1``.
  ``diff`` compares two ``--out`` report artifacts -
  typically from two commits - printing per-entry metric deltas and
  exiting 1 on any regression (a metric increased, an entry vanished,
  or completion flipped; wall-clock ``seconds`` never counts).

Adversaries come from declarative specs (``--adversary KIND:ARGS``, see
``docs/api.md``); ``--crashes`` and ``--kill-active`` remain as
shorthands and *compose* when both are given.  ``--json`` emits the
machine-readable :meth:`RunResult.to_dict` payload (metrics, completion,
scenario config echo) instead of the table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.api import ENGINE_CHOICES, Scenario
from repro.core.registry import available_protocols, get_entry
from repro.errors import ConfigurationError
from repro.sim.columnar import FASTPATH_CHOICES


def _adversary_spec(args):
    """Merge ``--adversary`` with the ``--crashes``/``--kill-active``
    shorthands into one spec (composing when several are given)."""
    specs = []
    if getattr(args, "adversary", None):
        specs.append(args.adversary)
    if getattr(args, "kill_active", 0):
        specs.append(
            {
                "kind": "kill-active",
                "budget": args.kill_active,
                "actions_before_kill": args.actions_before_kill,
            }
        )
    if getattr(args, "crashes", 0):
        specs.append(
            {
                "kind": "random",
                "count": args.crashes,
                "max_action_index": args.max_action_index,
            }
        )
    if not specs:
        return None
    if len(specs) == 1:
        return specs[0]
    return {"kind": "compose", "parts": specs}


def _scenario_from_args(args, protocol: str) -> Scenario:
    options = {}
    if getattr(args, "schedule", None):
        options["schedule"] = args.schedule
    return Scenario(
        protocol=protocol,
        n=args.n,
        t=args.t,
        engine=args.engine,
        seed=args.seed,
        adversary=_adversary_spec(args),
        delay=getattr(args, "delay", None),
        congestion=getattr(args, "congestion", None),
        fastpath=getattr(args, "fastpath", "auto"),
        options=options,
    )


def _emit_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return
    rows = sorted(result.summary().items())
    print(render_table(["measure", "value"], [[k, _fmt(v)] for k, v in rows]))


def _cmd_run(args) -> int:
    if args.scenario:
        if args.protocol:
            print(
                "error: give either a protocol name or --scenario FILE, not both",
                file=sys.stderr,
            )
            return 2
        scenario = Scenario.from_file(args.scenario)
    else:
        if not args.protocol:
            print(
                "error: a protocol name (or --scenario FILE) is required",
                file=sys.stderr,
            )
            return 2
        scenario = _scenario_from_args(args, args.protocol)
    result = scenario.run()
    _emit_result(result, args.json)
    return 0 if result.completed else 1


def _fmt(value):
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in sorted(value.items())) or "-"
    return value


def _cmd_compare(args) -> int:
    rows = []
    payload = []
    failures = 0
    for protocol in args.protocols:
        result = _scenario_from_args(args, protocol).run()
        metrics = result.metrics
        payload.append(result.to_dict())
        rows.append(
            [
                protocol,
                metrics.work_total,
                metrics.messages_total,
                metrics.effort,
                float(metrics.retire_round),
                "yes" if result.completed else "NO",
            ]
        )
        failures += 0 if result.completed else 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            render_table(
                ["protocol", "work", "messages", "effort", "rounds", "completed"], rows
            )
        )
    return 0 if failures == 0 else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import main as report_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.out:
        forwarded.extend(["--out", args.out])
    return report_main(forwarded)


def _cmd_list(_args) -> int:
    for name in available_protocols():
        entry = get_entry(name)
        suffix = f"  [{entry.engine}]"
        if entry.description:
            suffix += f"  {entry.description}"
        print(f"{name}{suffix}")
    return 0


def _cmd_adversaries(args) -> int:
    from repro.sim.adversary import adversary_kind_info

    rows = adversary_kind_info()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    table = []
    for row in rows:
        required = ", ".join(row["required"]) or "-"
        optional = ", ".join(row["optional"]) or "-"
        table.append([row["kind"], required, optional, row["summary"]])
    print(render_table(["kind", "required", "optional", "summary"], table))
    return 0


def _cmd_serve(args) -> int:
    from repro.server import MAX_BODY_BYTES, ReproServer

    max_body = (
        args.max_body_bytes if args.max_body_bytes is not None else MAX_BODY_BYTES
    )
    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_entries=args.cache_size,
        cache_path=args.cache_file,
        job_workers=args.job_workers,
        run_workers=args.run_workers,
        max_body_bytes=max_body,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        client_quota=args.client_quota,
        request_deadline=args.request_deadline,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        chaos=args.chaos,
    )
    cache = server.store.cache
    print(
        f"repro serve listening on {server.url}  "
        f"(job workers: {args.job_workers}, "
        f"run workers: {args.run_workers or 'in-thread'}, "
        f"cache: {len(cache)} entries"
        + (f", journal {cache.path}" if cache.path else "")
        + (f", rate limit {args.rate_limit}/s" if args.rate_limit else "")
        + (", chaos ON" if args.chaos else "")
        + ")",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight jobs)", file=sys.stderr)
    finally:
        report = server.shutdown()
        print(
            f"drained: {report['drained_jobs']} jobs resolved, "
            f"{len(report['leaked_jobs'])} interrupted, "
            f"cache holds {report['cache']['size']} entries",
            file=sys.stderr,
        )
    return 0


def _cmd_submit(args) -> int:
    from repro.client import Client
    from repro.errors import ServerError

    client = Client(args.server, timeout=args.http_timeout)
    payloads = []
    rows = []
    failures = 0
    for path in args.files:
        try:
            with open(path) as handle:
                document = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read document {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"document {path} is not valid JSON: {exc}")
        try:
            snapshot = client.submit(document)
            if snapshot["status"] != "done":
                client.wait(snapshot["job"], timeout=args.timeout)
            final = client.job(snapshot["job"])
        except ServerError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        payloads.append({"file": str(path), **final})
        for source, result in zip(final["sources"], final["results"]):
            metrics = result["metrics"]
            completed = result["completed"]
            failures += 0 if completed else 1
            rows.append(
                [
                    str(path),
                    result.get("config", {}).get("protocol", "?"),
                    source,
                    metrics["work"],
                    metrics["messages"],
                    metrics["effort"],
                    float(metrics["rounds"]),
                    "yes" if completed else "NO",
                ]
            )
    if args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    else:
        print(
            render_table(
                [
                    "file",
                    "protocol",
                    "source",
                    "work",
                    "messages",
                    "effort",
                    "rounds",
                    "completed",
                ],
                rows,
            )
        )
        stats = payloads[-1]["cache"]
        print(
            f"cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['size']} entries",
            file=sys.stderr,
        )
    return 0 if failures == 0 else 1


def _cmd_suite_list(args) -> int:
    from repro.suites import discover_suites, load_suite

    paths = discover_suites(args.directory)
    if not paths:
        print(f"no suite files found under {args.directory}/", file=sys.stderr)
        return 1
    invalid = 0
    for path in paths:
        try:
            suite = load_suite(path)
        except Exception as exc:  # surface broken files instead of hiding them
            print(f"{path}: INVALID ({exc})")
            invalid += 1
            continue
        pinned = sum(1 for entry in suite.entries if entry.pins)
        print(
            f"{path}  [{suite.name} v{suite.version}]  "
            f"{len(suite.entries)} entries ({pinned} pinned)"
            + (f"  {suite.description}" if suite.description else "")
        )
    return 1 if invalid else 0


def _run_suites(args, *, enforce_pins: bool) -> int:
    from repro.suites import load_suite

    if getattr(args, "update_pins", False):
        # Fail before running anything: pins are written back as JSON.
        for path in args.files:
            if not str(path).lower().endswith(".json"):
                raise ConfigurationError(
                    f"--update-pins writes the suite back as JSON and cannot "
                    f"rewrite {path}; convert the suite to .json first"
                )
    reports = []
    failed = False
    for path in args.files:
        suite = load_suite(path)
        report = suite.run(workers=args.workers)
        reports.append(report)
        if getattr(args, "update_pins", False):
            incomplete = [e.name for e in report.entries if not e.all_completed]
            if incomplete:
                raise ConfigurationError(
                    f"refusing to rebaseline {path}: {incomplete} did not "
                    "complete every run; pins must come from healthy runs"
                )
            updated = suite.with_pins_from(report)
            updated.save()
            # Re-diff the observations against the pins that now exist,
            # so --json/--out artifacts reflect the rebaselined state.
            reports[-1] = report.repinned(updated)
            print(f"rewrote pins of {path} from observed values")
            continue
        if not args.json:
            print(report.table())
        if enforce_pins:
            messages = report.failures()
        else:  # ``run`` reports pins but only completion is fatal
            messages = [
                f"{report.suite}/{entry.name}: not every run completed its work"
                for entry in report.entries
                if not entry.all_completed
            ]
        for message in messages:
            print(f"FAIL {message}", file=sys.stderr)
            failed = True
    if args.json:
        payload = [report.as_dict() for report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        payload = [report.as_dict() for report in reports]
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_suite_run(args) -> int:
    return _run_suites(args, enforce_pins=False)


def _cmd_suite_check(args) -> int:
    return _run_suites(args, enforce_pins=True)


def _load_report_artifact(path: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read report artifact {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"report artifact {path} is not valid JSON: {exc}")


def _cmd_suite_diff(args) -> int:
    from repro.suites import diff_reports

    diff = diff_reports(
        _load_report_artifact(args.old),
        _load_report_artifact(args.new),
        old_label=args.old,
        new_label=args.new,
    )
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(diff.table())
        for note in diff.informational:
            print(f"note: {note}")
    for message in diff.regressions():
        print(f"REGRESSION {message}", file=sys.stderr)
    return 0 if diff.passed else 1


def _load_campaign(args):
    from repro.campaign import load_campaign

    return load_campaign(args.file)


def _cmd_campaign_plan(args) -> int:
    spec = _load_campaign(args)
    summary = spec.plan_summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"campaign {spec.name}  (digest {spec.digest()[:12]})")
    if spec.description:
        print(f"  {spec.description}")
    for axis in ("protocols", "adversaries", "n", "t"):
        values = summary["axes"][axis]
        print(f"  {axis}: {', '.join(str(v) for v in values)}")
    print(f"  seeds: {len(spec.seeds)}")
    print(
        f"  {summary['runs']} runs = {summary['cells']} cells x "
        f"{len(spec.seeds)} seeds, in {summary['chunks']} chunks of "
        f"<= {spec.chunk_size}"
    )
    if spec.pins:
        print(f"  pins: {', '.join(sorted(spec.pins))}")
    return 0


def _run_or_resume_campaign(args, *, require_ledger: bool) -> int:
    from pathlib import Path

    from repro.campaign import parse_shard, run_campaign
    from repro.cache import ResultCache

    spec = _load_campaign(args)
    if require_ledger and not Path(args.ledger).exists():
        raise ConfigurationError(
            f"cannot resume: ledger {args.ledger} does not exist yet "
            "(use 'campaign run' to start a campaign)"
        )
    cache = None
    if args.cache_file:
        cache = ResultCache(path=args.cache_file)
    shard = parse_shard(args.shard) if args.shard else None
    outcome = run_campaign(
        spec,
        args.ledger,
        workers=args.workers,
        cache=cache,
        server=args.server,
        timeout=args.timeout,
        shard=shard,
        max_chunks=args.max_chunks,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if not outcome.complete:
        status = outcome.status_dict()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(
                f"campaign {spec.name}: {status['chunks']['done']}/"
                f"{status['chunks']['total']} chunks checkpointed "
                f"({status['runs']['done']}/{status['runs']['total']} runs); "
                "resume to continue",
                file=sys.stderr,
            )
        return 1
    report = outcome.report()
    if args.json:
        print(report.to_json())
    else:
        print(report.table())
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.report}", file=sys.stderr)
    for message in report.failures():
        print(f"FAIL {message}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_campaign_run(args) -> int:
    return _run_or_resume_campaign(args, require_ledger=False)


def _cmd_campaign_resume(args) -> int:
    return _run_or_resume_campaign(args, require_ledger=True)


def _cmd_campaign_status(args) -> int:
    from repro.campaign import campaign_status

    spec = _load_campaign(args)
    state = campaign_status(spec, args.ledger)
    status = state.status_dict()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(
            f"campaign {spec.name}: {status['chunks']['done']}/"
            f"{status['chunks']['total']} chunks checkpointed "
            f"({status['runs']['done']}/{status['runs']['total']} runs)"
            + ("  COMPLETE" if state.complete else "")
        )
        if state.torn_tails:
            print(
                f"  {state.torn_tails} torn ledger tail(s) discarded "
                "(interrupted mid-append; the chunk re-runs)"
            )
    return 0 if state.complete else 1


def _cmd_campaign_report(args) -> int:
    from repro.campaign import build_report, campaign_status

    spec = _load_campaign(args)
    state = campaign_status(spec, args.ledger)
    report = build_report(spec, state, partial=args.partial)
    if args.json:
        print(report.to_json())
    else:
        print(report.table())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    for message in report.failures():
        print(f"FAIL {message}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_cache_compact(args) -> int:
    from repro.cache import ResultCache

    from pathlib import Path

    if not Path(args.file).exists():
        raise ConfigurationError(f"cache journal {args.file} does not exist")
    cache = ResultCache(max_entries=args.max_entries, path=args.file)
    stats = cache.compact()
    print(
        f"{args.file}: {stats['lines_before']} -> {stats['lines_after']} "
        f"lines ({stats['bytes_before']} -> {stats['bytes_after']} bytes, "
        f"{stats['entries']} live entries)"
    )
    return 0


def _cmd_cache_verify(args) -> int:
    from repro.cache import verify_journal

    audit = verify_journal(args.file)
    if args.json:
        print(json.dumps(audit, indent=2, sort_keys=True))
    else:
        print(
            f"{audit['path']}: {audit['lines']} lines, "
            f"{audit['live']} live, {audit['stale']} stale, "
            f"{audit['corrupt']} corrupt, "
            f"{audit['unchecksummed']} unchecksummed"
        )
        if not audit["ok"]:
            print(
                f"FAIL {audit['corrupt']} corrupt line(s); a replay would "
                "skip them (run 'repro cache compact' to drop them for "
                "good)",
                file=sys.stderr,
            )
    return 0 if audit["ok"] else 1


def _cmd_bench_snapshot(args) -> int:
    from repro.bench_history import snapshot

    path = snapshot(args.bench, args.dir, label=args.label)
    print(f"wrote {path}")
    return 0


def _cmd_bench_timeline(args) -> int:
    from repro.bench_history import timeline

    line = timeline(args.dir)
    if args.json:
        print(json.dumps(line.as_dict(measure=args.measure), indent=2, sort_keys=True))
        return 0
    print(line.table(measure=args.measure))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Do-All protocols from Dwork-Halpern-Waarts 1992"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--n", type=int, default=256, help="work units")
        p.add_argument("--t", type=int, default=16, help="processes")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--engine",
            choices=list(ENGINE_CHOICES),
            default="auto",
            help="simulator kind (auto resolves from the protocol registry)",
        )
        p.add_argument(
            "--adversary",
            default=None,
            metavar="SPEC",
            help="adversary spec, e.g. 'random:8,max_action_index=25' or "
            "'kill-active:7' (see docs/api.md for the grammar)",
        )
        p.add_argument(
            "--delay",
            default=None,
            metavar="SPEC",
            help="async delay model spec, e.g. 'uniform:0.5,4.0' or 'fixed:1'",
        )
        p.add_argument(
            "--congestion",
            default=None,
            metavar="SPEC",
            help="per-process per-round message budget spec, e.g. "
            "'budget:send=4,receive=8' (both engines; see docs/faults.md)",
        )
        p.add_argument(
            "--schedule",
            default=None,
            metavar="SPEC",
            help="arrival-schedule spec for dynamic-workload protocols "
            "(D-dynamic), e.g. 'arrivals:0x8,3x4' or 'uniform:every=2'",
        )
        p.add_argument(
            "--fastpath",
            choices=list(FASTPATH_CHOICES),
            default="auto",
            help="columnar numpy delivery path for the sync engine: auto "
            "uses it when numpy is importable, on requires it, off forces "
            "the pure-python path (bit-identical either way)",
        )
        p.add_argument(
            "--crashes",
            type=int,
            default=0,
            help="shorthand for the random-crashes adversary (composes with "
            "--kill-active and --adversary)",
        )
        p.add_argument(
            "--max-action-index",
            type=int,
            default=25,
            help="latest action at which a --crashes victim may die",
        )
        p.add_argument(
            "--kill-active",
            type=int,
            default=0,
            help="shorthand for the kill-the-active-process adversary (budget)",
        )
        p.add_argument(
            "--actions-before-kill",
            type=int,
            default=2,
            help="how many actions each active victim survives (--kill-active)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of the table",
        )

    run_p = sub.add_parser("run", help="simulate one protocol execution")
    run_p.add_argument(
        "protocol",
        nargs="?",
        default=None,
        type=str.lower,  # registry names are case-insensitive
        choices=[None] + available_protocols(),
        help="registered protocol name (omit when using --scenario)",
    )
    run_p.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="run a serialized Scenario JSON file instead of CLI flags",
    )
    add_common(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare protocols on one workload")
    cmp_p.add_argument(
        "--protocols",
        nargs="+",
        default=["replicate", "naive", "a", "b", "c", "d"],
    )
    add_common(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    rep_p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep_p.add_argument("--quick", action="store_true")
    rep_p.add_argument("--out", default=None)
    rep_p.set_defaults(func=_cmd_report)

    list_p = sub.add_parser("list", help="list registered protocols")
    list_p.set_defaults(func=_cmd_list)

    adv_p = sub.add_parser(
        "adversaries", help="list adversary spec kinds and their parameters"
    )
    adv_p.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable rows instead of the table",
    )
    adv_p.set_defaults(func=_cmd_adversaries)

    serve_p = sub.add_parser(
        "serve", help="run the HTTP simulation service (see docs/serve.md)"
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument("--port", type=int, default=8123, help="bind port (0 = ephemeral)")
    serve_p.add_argument(
        "--job-workers",
        type=int,
        default=4,
        help="threads executing submitted jobs concurrently",
    )
    serve_p.add_argument(
        "--run-workers",
        type=int,
        default=None,
        metavar="N",
        help="multiprocessing pool size per job batch (default: run "
        "in-thread; metrics are bit-identical either way)",
    )
    serve_p.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="LRU capacity of the result cache (default: unbounded)",
    )
    serve_p.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="append-only JSONL journal; replayed on restart so the "
        "memo survives",
    )
    serve_p.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        metavar="N",
        help="cap on submission body size (HTTP 413 beyond it)",
    )
    serve_p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="per-client submissions per second (HTTP 429 + Retry-After "
        "beyond the burst)",
    )
    serve_p.add_argument(
        "--rate-burst",
        type=int,
        default=None,
        metavar="N",
        help="token-bucket burst size (default: ceil of the rate)",
    )
    serve_p.add_argument(
        "--client-quota",
        type=int,
        default=None,
        metavar="N",
        help="lifetime submissions per client (429 with no Retry-After "
        "once spent)",
    )
    serve_p.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="bound on how long one request may hold a handler thread",
    )
    serve_p.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per job before quarantine (unexpected worker "
        "crashes only; scenario errors never retry)",
    )
    serve_p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base of the doubling delay between job retries",
    )
    serve_p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'journal_write=0.02,worker=0.01,seed=7' (see docs/chaos.md)",
    )
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="submit scenario/sweep/suite files to a run server"
    )
    submit_p.add_argument(
        "files", nargs="+", metavar="FILE", help="scenario/sweep/suite JSON file(s)"
    )
    submit_p.add_argument(
        "--server",
        default="http://127.0.0.1:8123",
        metavar="URL",
        help="base URL of a running 'repro serve'",
    )
    submit_p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for each job to finish",
    )
    submit_p.add_argument(
        "--http-timeout",
        type=float,
        default=30.0,
        help="per-request HTTP timeout in seconds",
    )
    submit_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable job payloads instead of the table",
    )
    submit_p.set_defaults(func=_cmd_submit)

    suite_p = sub.add_parser(
        "suite", help="run, list and check versioned scenario suites"
    )
    suite_sub = suite_p.add_subparsers(dest="suite_command", required=True)

    def add_suite_common(p):
        p.add_argument(
            "files", nargs="+", metavar="FILE", help="suite file(s) (.json/.toml)"
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="multiprocessing pool size (1 = serial; metrics are "
            "bit-identical either way)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit the machine-readable report instead of tables",
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="PATH",
            help="also write the JSON report to PATH (CI artifact)",
        )

    suite_run_p = suite_sub.add_parser(
        "run", help="execute suites and report observed worst-case metrics"
    )
    add_suite_common(suite_run_p)
    suite_run_p.set_defaults(func=_cmd_suite_run, update_pins=False)

    suite_check_p = suite_sub.add_parser(
        "check", help="execute suites and enforce their regression pins"
    )
    add_suite_common(suite_check_p)
    suite_check_p.add_argument(
        "--update-pins",
        action="store_true",
        help="rewrite each suite file's pins from the observed values "
        "instead of enforcing them (rebaselining)",
    )
    suite_check_p.set_defaults(func=_cmd_suite_check)

    suite_list_p = suite_sub.add_parser("list", help="list shipped suite files")
    suite_list_p.add_argument(
        "directory", nargs="?", default="scenarios", help="suite directory"
    )
    suite_list_p.set_defaults(func=_cmd_suite_list)

    suite_diff_p = suite_sub.add_parser(
        "diff",
        help="compare two suite report artifacts (exit 1 on regressions)",
    )
    suite_diff_p.add_argument(
        "old", metavar="OLD", help="baseline report JSON (from --out)"
    )
    suite_diff_p.add_argument(
        "new", metavar="NEW", help="candidate report JSON (from --out)"
    )
    suite_diff_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable diff instead of the table",
    )
    suite_diff_p.set_defaults(func=_cmd_suite_diff)

    campaign_p = sub.add_parser(
        "campaign",
        help="plan, run, resume and report large-grid campaigns "
        "(see docs/campaigns.md)",
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_file(p):
        p.add_argument("file", metavar="FILE", help="campaign spec JSON file")
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of tables",
        )

    campaign_plan_p = campaign_sub.add_parser(
        "plan", help="show the grid, chunking and digest without running"
    )
    add_campaign_file(campaign_plan_p)
    campaign_plan_p.set_defaults(func=_cmd_campaign_plan)

    def add_campaign_run(p):
        add_campaign_file(p)
        p.add_argument(
            "--ledger",
            required=True,
            metavar="PATH",
            help="chunk-checkpoint ledger file (created if absent)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="multiprocessing pool size per chunk (local mode; "
            "metrics are bit-identical either way)",
        )
        p.add_argument(
            "--cache-file",
            default=None,
            metavar="PATH",
            help="shared content-addressed cache journal consulted "
            "before executing and filled after",
        )
        p.add_argument(
            "--server",
            default=None,
            metavar="URL",
            help="execute chunks on a running 'repro serve' instead of "
            "locally (shards then share the server's cache)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            help="seconds to wait for each remote chunk (with --server)",
        )
        p.add_argument(
            "--shard",
            default=None,
            metavar="I/K",
            help="only run chunks with index %% K == I (one ledger per shard)",
        )
        p.add_argument(
            "--max-chunks",
            type=int,
            default=None,
            metavar="N",
            help="stop after executing N chunks (deliberate interruption; "
            "resume later)",
        )
        p.add_argument(
            "--report",
            default=None,
            metavar="PATH",
            help="when the campaign completes, also write the JSON report "
            "to PATH (CI artifact)",
        )

    campaign_run_p = campaign_sub.add_parser(
        "run", help="execute the remaining chunks, checkpointing each"
    )
    add_campaign_run(campaign_run_p)
    campaign_run_p.set_defaults(func=_cmd_campaign_run)

    campaign_resume_p = campaign_sub.add_parser(
        "resume", help="like run, but requires an existing ledger"
    )
    add_campaign_run(campaign_resume_p)
    campaign_resume_p.set_defaults(func=_cmd_campaign_resume)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="replay ledgers and show progress (exit 0 iff complete)"
    )
    add_campaign_file(campaign_status_p)
    campaign_status_p.add_argument(
        "--ledger",
        required=True,
        nargs="+",
        metavar="PATH",
        help="ledger file(s); several shards' ledgers merge",
    )
    campaign_status_p.set_defaults(func=_cmd_campaign_status)

    campaign_report_p = campaign_sub.add_parser(
        "report",
        help="merge ledgers into the per-cell worst/mean report "
        "(exit 1 on pin failures)",
    )
    add_campaign_file(campaign_report_p)
    campaign_report_p.add_argument(
        "--ledger",
        required=True,
        nargs="+",
        metavar="PATH",
        help="ledger file(s); several shards' ledgers merge",
    )
    campaign_report_p.add_argument(
        "--partial",
        action="store_true",
        help="report the checkpointed chunks even if the grid is incomplete",
    )
    campaign_report_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    campaign_report_p.set_defaults(func=_cmd_campaign_report)

    cache_p = sub.add_parser(
        "cache", help="maintain content-addressed result-cache journals"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_compact_p = cache_sub.add_parser(
        "compact",
        help="rewrite an append-only cache journal to its live entries",
    )
    cache_compact_p.add_argument(
        "file", metavar="PATH", help="cache journal (JSONL) to compact"
    )
    cache_compact_p.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="replay through an LRU of N entries first (keeps only the "
        "N most recently stored results)",
    )
    cache_compact_p.set_defaults(func=_cmd_cache_compact)
    cache_verify_p = cache_sub.add_parser(
        "verify",
        help="audit a cache journal's checksums without loading it "
        "(exit 1 on corruption)",
    )
    cache_verify_p.add_argument(
        "file", metavar="PATH", help="cache journal (JSONL) to audit"
    )
    cache_verify_p.add_argument(
        "--json", action="store_true", help="emit the audit as JSON"
    )
    cache_verify_p.set_defaults(func=_cmd_cache_verify)

    bench_p = sub.add_parser(
        "bench", help="commit-stamped bench history (see docs/perf.md)"
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bench_snapshot_p = bench_sub.add_parser(
        "snapshot", help="record BENCH_engine.json as the next history snapshot"
    )
    bench_snapshot_p.add_argument(
        "--bench",
        default="BENCH_engine.json",
        metavar="PATH",
        help="bench report to snapshot (from benchmarks/run_bench.py)",
    )
    bench_snapshot_p.add_argument(
        "--dir",
        default="benchmarks/history",
        metavar="DIR",
        help="history directory",
    )
    bench_snapshot_p.add_argument(
        "--label",
        default=None,
        help="column label for the timeline (default: the commit hash)",
    )
    bench_snapshot_p.set_defaults(func=_cmd_bench_snapshot)

    bench_timeline_p = bench_sub.add_parser(
        "timeline", help="per-scenario trend tables across bench snapshots"
    )
    bench_timeline_p.add_argument(
        "--dir",
        default="benchmarks/history",
        metavar="DIR",
        help="history directory",
    )
    bench_timeline_p.add_argument(
        "--measure",
        default="seconds_best",
        help="bench measure to pivot on (seconds_best, work, messages, "
        "virtual_rounds)",
    )
    bench_timeline_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable timeline instead of the table",
    )
    bench_timeline_p.set_defaults(func=_cmd_bench_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        # Misconfiguration is a user error: one named line, exit 2 (the
        # same code argparse uses), never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
