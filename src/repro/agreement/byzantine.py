"""Byzantine agreement from work protocols (Section 5).

The construction: the general broadcasts its value to senders ``0..t``
(it may crash mid-broadcast, informing an arbitrary subset); the ``t+1``
senders then run one of the work protocols where performing unit ``p``
means sending "the general's value is x" to process ``p``.  Every
process holds a current value (initially 0) and adopts any value it is
informed of; at a predetermined time by which the work protocol has
certainly terminated, everyone decides its current value.

Two value-piggybacking rules from the paper's proof are load-bearing:

* Protocols A and B must **not** attach the value to their checkpoint
  messages (checkpoints are broadcast, so a crash mid-checkpoint could
  leak a value past the takeover order and break agreement);
* Protocol C **must** attach the value to its ordinary messages (when a
  process takes over as most-knowledgeable it must also hold the last
  reported value).

Message complexities (for ``N`` system processes, ``t`` failures):
via Protocol B - ``O(N + t sqrt(t))`` messages and ``O(N)`` rounds
(matching Bracha's nonconstructive bound, constructively); via Protocol
C - ``O(N + t log t)`` messages at exponential time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.protocol_a import ProtocolAProcess
from repro.core.protocol_b import ProtocolBProcess
from repro.core.protocol_c import ProtocolCProcess
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, Send, broadcast
from repro.sim.engine import Adversary, Engine
from repro.sim.metrics import Metrics
from repro.sim.process import Process
from repro.work.tracker import WorkTracker

DEFAULT_VALUE = 0


class SenderProcess(Process):
    """Wraps a work-protocol process with the value-holding behaviour."""

    def __init__(self, inner: Process, *, is_general: bool, num_senders: int):
        super().__init__(inner.pid, inner.t)
        self.inner = inner
        self.value: Any = DEFAULT_VALUE
        self.is_general = is_general
        self.num_senders = num_senders
        self._general_pending = is_general
        if hasattr(inner, "attachment"):
            inner.attachment = self.value  # Protocol C piggybacking

    # ---- plumbing ---------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.inner.is_active

    def set_value(self, value: Any) -> None:
        self.value = value
        if hasattr(self.inner, "attachment"):
            self.inner.attachment = value

    # Scheduling contract (see repro.sim.process): the engine caches this
    # value between engine-observed events, which is sound because every
    # field it reads is mutated only inside on_round / the lifecycle hooks.
    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self._general_pending:
            return 0
        return self.inner.wake_round()

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        forwarded = []
        for envelope in inbox:
            if envelope.kind is MessageKind.VALUE:
                self.set_value(envelope.payload[1])
            else:
                forwarded.append(envelope)
        if self._general_pending:
            self._general_pending = False
            recipients = [pid for pid in range(self.num_senders) if pid != self.pid]
            return Action(
                sends=broadcast(
                    recipients, ("general", self.value), MessageKind.VALUE
                )
            )
        action = self.inner.on_round(round_number, forwarded)
        if hasattr(self.inner, "attachment") and self.inner.attachment is not None:
            self.value = self.inner.attachment
        return action


class ReceiverProcess(Process):
    """A system process outside the sender set: holds a value, decides at
    the predetermined decision round."""

    def __init__(self, pid: int, t: int, decide_round: int):
        super().__init__(pid, t)
        self.value: Any = DEFAULT_VALUE
        self.decide_round = decide_round

    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        return self.decide_round

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        for envelope in inbox:
            if envelope.kind is MessageKind.VALUE:
                self.value = envelope.payload[1]
        if round_number >= self.decide_round:
            return Action.halting()
        return Action.idle()


@dataclass
class AgreementOutcome:
    """Result of one Byzantine agreement execution."""

    decisions: Dict[int, Any]       # pid -> decided value (non-crashed only)
    general_crashed: bool
    metrics: Metrics
    work_messages: int              # messages counting the value informs

    @property
    def agreement(self) -> bool:
        values = set(self.decisions.values())
        return len(values) <= 1

    @property
    def decided_value(self) -> Optional[Any]:
        values = set(self.decisions.values())
        return next(iter(values)) if len(values) == 1 else None

    def valid_for(self, general_value: Any) -> bool:
        """Validity: if the general never crashed, everyone decided its value."""
        if self.general_crashed:
            return True
        return self.agreement and self.decided_value == general_value


class ByzantineAgreement:
    """Builder/runner for the Section 5 construction.

    ``n_system`` is the paper's ``n`` (total processes to be informed);
    ``t`` is the failure bound, so ``t + 1`` senders run the work
    protocol on ``n_system`` units.
    """

    def __init__(
        self,
        n_system: int,
        t: int,
        *,
        protocol: str = "B",
        slack: int = 2,
    ):
        if t + 1 > n_system:
            raise ConfigurationError(
                f"need at least t+1={t + 1} processes, got n_system={n_system}"
            )
        self.n_system = n_system
        self.t = t
        self.num_senders = t + 1
        self.protocol = protocol.upper()
        self.slack = slack

    # ---- construction ------------------------------------------------------

    def _build_inner(self, pid: int, epoch: int):
        n, senders = self.n_system, self.num_senders
        if self.protocol == "A":
            return ProtocolAProcess(pid, senders, n, epoch=epoch, slack=self.slack)
        if self.protocol == "B":
            return ProtocolBProcess(pid, senders, n, epoch=epoch, slack=self.slack)
        if self.protocol == "C":
            return ProtocolCProcess(pid, senders, n, epoch=epoch, slack=self.slack)
        raise ConfigurationError(
            f"Byzantine agreement supports protocols A, B, C; got {self.protocol!r}"
        )

    def decide_round(self, epoch: int = 1) -> int:
        probe = self._build_inner(0, epoch)
        return epoch + probe.deadlines.retirement_bound() + 2 * self.t + 4

    def run(
        self,
        general_value: Any,
        *,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        max_steps: int = 5_000_000,
        trace=None,
    ) -> AgreementOutcome:
        epoch = 1  # round 0 is the general's broadcast
        decide = self.decide_round(epoch)
        processes: List[Process] = []
        senders: List[SenderProcess] = []
        for pid in range(self.num_senders):
            inner = self._build_inner(pid, epoch)
            sender = SenderProcess(
                inner, is_general=(pid == 0), num_senders=self.num_senders
            )
            senders.append(sender)
            processes.append(sender)
        for pid in range(self.num_senders, self.n_system):
            processes.append(ReceiverProcess(pid, self.n_system, decide))
        senders[0].set_value(general_value)

        def inform(pid: int, unit: int, round_number: int) -> List[Send]:
            target = unit - 1
            if target == pid:
                return []
            value = senders[pid].value
            return [Send(target, ("inform", value), MessageKind.VALUE)]

        tracker = WorkTracker(self.n_system)
        engine = Engine(
            processes,
            tracker=tracker,
            adversary=adversary,
            seed=seed,
            strict_invariants=False,
            unit_effect=inform,
            max_steps=max_steps,
            trace=trace,
        )
        result = engine.run()
        decisions = {
            p.pid: getattr(p, "value") for p in processes if not p.crashed
        }
        return AgreementOutcome(
            decisions=decisions,
            general_crashed=processes[0].crashed,
            metrics=result.metrics,
            work_messages=result.metrics.messages_total,
        )
