"""Bootstrapping the work pool when it is not common knowledge (Section 1).

"If even one process knows about this work, then it can act as a
general, run Byzantine agreement on the pool of work using one of the
three algorithms, and then the actual work is performed by running the
same algorithm a second time on the real work.  If n, the amount of
actual work, is Omega(t), then the overall cost at most doubles."

Stage 1 runs the Section 5 Byzantine agreement with the *pool
description* as the value (the paper's remark on message length
O(log n + log^2 |V|) is about exactly this: values may be structured).
Stage 2 runs the chosen work protocol on the agreed pool.  The combined
metrics demonstrate the at-most-doubling claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.agreement.byzantine import ByzantineAgreement
from repro.core.registry import run_protocol
from repro.errors import ConfigurationError
from repro.sim.engine import Adversary
from repro.sim.metrics import RunResult


@dataclass
class BootstrapOutcome:
    """Combined result of the two-stage execution."""

    agreed_pool: Optional[Tuple[int, ...]]
    pool_agreement: bool
    work_result: Optional[RunResult]
    stage1_messages: int
    stage2_messages: int
    stage2_work: int

    @property
    def total_messages(self) -> int:
        return self.stage1_messages + self.stage2_messages

    @property
    def completed(self) -> bool:
        return self.work_result is not None and self.work_result.completed


def run_with_unknown_pool(
    pool: Sequence[int],
    t: int,
    *,
    protocol: str = "B",
    adversary_stage1: Optional[Adversary] = None,
    adversary_stage2: Optional[Adversary] = None,
    seed: int = 0,
) -> BootstrapOutcome:
    """Process 0 alone knows ``pool``; agree on it, then perform it.

    The agreement stage runs among the ``t`` processes of the work system
    (so ``t - 1`` of them are senders tolerating ``t - 2`` failures,
    mirroring the construction's "general plus t senders" shape scaled to
    the work system).  The returned outcome carries per-stage costs so
    callers can verify the at-most-doubling claim.
    """
    if t < 2:
        raise ConfigurationError("bootstrapping needs at least two processes")
    pool_tuple = tuple(pool)
    stage1 = ByzantineAgreement(t, t - 2 if t > 2 else 1, protocol=protocol)
    outcome = stage1.run(
        pool_tuple, adversary=adversary_stage1, seed=seed
    )
    if not outcome.agreement:
        return BootstrapOutcome(
            agreed_pool=None,
            pool_agreement=False,
            work_result=None,
            stage1_messages=outcome.metrics.messages_total,
            stage2_messages=0,
            stage2_work=0,
        )
    agreed = outcome.decided_value
    agreed_pool = tuple(agreed) if isinstance(agreed, tuple) else ()
    work_result = run_protocol(
        protocol,
        len(agreed_pool),
        t,
        adversary=adversary_stage2,
        seed=seed + 1,
    )
    return BootstrapOutcome(
        agreed_pool=agreed_pool,
        pool_agreement=True,
        work_result=work_result,
        stage1_messages=outcome.metrics.messages_total,
        stage2_messages=work_result.metrics.messages_total,
        stage2_work=work_result.metrics.work_total,
    )
