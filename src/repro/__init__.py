"""repro - a reproduction of Dwork, Halpern & Waarts,
"Performing Work Efficiently in the Presence of Faults" (PODC 1992).

The package implements the paper's Do-All problem end to end: the
synchronous crash-failure simulator, Protocols A-D, the straw-man
baselines, the asynchronous variant with a failure detector, the
Byzantine-agreement application of Section 5, and an analysis harness
that regenerates every quantitative claim of the paper.

Quickstart::

    from repro import Scenario

    result = Scenario(protocol="A", n=400, t=16, adversary="random:8", seed=1).run()
    assert result.completed
    print(result.summary())

or, the classic synchronous shorthand::

    from repro import run_protocol
    from repro.sim.adversary import RandomCrashes

    result = run_protocol("A", n=400, t=16, adversary=RandomCrashes(8), seed=1)

See ``docs/api.md`` for the declarative Scenario/Sweep tour.
"""

from repro.agreement.byzantine import AgreementOutcome, ByzantineAgreement
from repro.analysis.verify import VerificationReport, verify_run
from repro.api import ResultSet, Scenario, Sweep, run_scenarios
from repro.cache import ResultCache, verify_journal
from repro.chaos import (
    ChaosInjector,
    ChaosLog,
    ChaosInterrupt,
    InjectedFault,
    chaos_from_spec,
    normalize_chaos_spec,
)
from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    CampaignState,
    load_campaign,
    run_campaign,
)
from repro.client import Client
from repro.core.registry import available_protocols, build_processes, run_protocol
from repro.suites import Suite, SuiteReport, load_suite
from repro.errors import (
    AdversaryError,
    BudgetExceeded,
    ConfigurationError,
    InvariantViolation,
    ReproError,
    ServerError,
    SimulationStalled,
)
from repro.sim.congestion import CongestionBudget
from repro.sim.engine import Adversary, Engine
from repro.sim.metrics import Metrics, RunResult
from repro.work.spec import WorkSpec
from repro.work.tracker import WorkTracker

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AdversaryError",
    "AgreementOutcome",
    "ByzantineAgreement",
    "BudgetExceeded",
    "CampaignReport",
    "CampaignSpec",
    "CampaignState",
    "ChaosInjector",
    "ChaosInterrupt",
    "ChaosLog",
    "Client",
    "ConfigurationError",
    "CongestionBudget",
    "Engine",
    "InjectedFault",
    "InvariantViolation",
    "Metrics",
    "ReproError",
    "ResultCache",
    "ResultSet",
    "RunResult",
    "Scenario",
    "ServerError",
    "SimulationStalled",
    "Suite",
    "SuiteReport",
    "Sweep",
    "VerificationReport",
    "WorkSpec",
    "WorkTracker",
    "verify_run",
    "available_protocols",
    "chaos_from_spec",
    "normalize_chaos_spec",
    "verify_journal",
    "build_processes",
    "load_campaign",
    "load_suite",
    "run_campaign",
    "run_protocol",
    "run_scenarios",
    "__version__",
]
