"""Simulation-as-a-service: the ``repro serve`` run server.

A stdlib-only HTTP/JSON daemon that accepts Scenario / Sweep / Suite
documents, executes them on the :func:`repro.api.run_scenarios` worker
pool, and memoizes completed runs in a content-addressed
:class:`~repro.cache.ResultCache` keyed by
:meth:`repro.api.Scenario.cache_key` - so duplicate submissions cost one
run.  See ``docs/serve.md`` for the wire format and consistency
guarantees, and :mod:`repro.client` for the matching client API.
"""

from repro.server.app import (
    MAX_BODY_BYTES,
    MAX_WAIT_SECONDS,
    RateLimiter,
    ReproServer,
    serve,
)
from repro.server.jobs import (
    DOCUMENT_KINDS,
    JOB_STATES,
    Job,
    JobStore,
    scenarios_from_document,
)

__all__ = [
    "DOCUMENT_KINDS",
    "JOB_STATES",
    "MAX_BODY_BYTES",
    "MAX_WAIT_SECONDS",
    "Job",
    "JobStore",
    "RateLimiter",
    "ReproServer",
    "scenarios_from_document",
    "serve",
]
