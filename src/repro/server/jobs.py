"""Job queue for the run server: submissions, dedup, execution.

A *job* is one submitted document (scenario, sweep, suite, or explicit
scenario list) expanded into an ordered list of scenario *slots*.  Each
slot resolves from exactly one of three sources:

* ``cache`` - the content-addressed :class:`~repro.cache.ResultCache`
  already holds the key (counted as a cache hit);
* ``coalesced`` - another job is *currently executing* the same key, so
  this slot subscribes to that in-flight execution instead of running
  again (the ``coalesced`` counter is the duplicate-submission proof:
  thousands of concurrent identical submissions resolve to one run);
* ``run`` - this job claims the key and executes it on the store's
  worker pool via :func:`repro.api.run_scenarios` (counted as a cache
  miss, then stored).

Job states are ``submitted`` (queued, nothing started), ``running``,
``done`` and ``failed``.  Results are served in submission order as
lossless :meth:`~repro.sim.metrics.RunResult.to_dict` (``full=True``)
payloads with the *submitting* scenario echoed as ``config`` - so a
served result is bit-identical to what ``Scenario.run()`` returns
in-process, hit or miss.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api import Scenario, Sweep, run_scenarios
from repro.cache import ResultCache
from repro.errors import ConfigurationError
from repro.suites import Suite

JOB_STATES = ("submitted", "running", "done", "failed")

#: Top-level keys a job document may use, exactly one per submission.
DOCUMENT_KINDS = ("scenario", "sweep", "suite", "scenarios")


def scenarios_from_document(document: Any) -> Tuple[str, List[Scenario]]:
    """``(kind, scenarios)`` from a wire document.

    The wire format is one dict holding exactly one of ``scenario`` (a
    Scenario dict), ``sweep`` (a Sweep dict, expanded to its grid),
    ``suite`` (a Suite dict, expanded to every entry's runs; pins are
    ignored - the server executes, it does not referee), or
    ``scenarios`` (an explicit non-empty list of Scenario dicts).
    Malformed documents raise :class:`ConfigurationError` naming the
    offending field and value - the server maps that to HTTP 400.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"a job document must be a dict, got {type(document).__name__}"
        )
    kinds = [kind for kind in DOCUMENT_KINDS if kind in document]
    if len(kinds) != 1:
        raise ConfigurationError(
            "a job document must hold exactly one of "
            + ", ".join(repr(kind) for kind in DOCUMENT_KINDS)
            + (f"; got field(s) {sorted(document)}" if document else "; got an empty dict")
        )
    kind = kinds[0]
    extra = set(document) - {kind}
    if extra:
        raise ConfigurationError(
            f"unknown job document field(s) {sorted(extra)} alongside {kind!r}"
        )
    if kind == "scenario":
        return kind, [Scenario.from_dict(document["scenario"])]
    if kind == "sweep":
        return kind, list(Sweep.from_dict(document["sweep"]).scenarios())
    if kind == "scenarios":
        raw = document["scenarios"]
        if not isinstance(raw, list) or not raw:
            raise ConfigurationError(
                f"'scenarios' must be a non-empty list of scenario dicts, "
                f"got {raw!r}"
            )
        return kind, [Scenario.from_dict(item) for item in raw]
    suite = Suite.from_dict(document["suite"])
    return kind, [
        scenario for entry in suite.entries for scenario in entry.scenarios()
    ]


class _Execution:
    """One in-flight run of a distinct cache key; duplicates subscribe."""

    __slots__ = ("key", "scenario", "event", "started", "payload", "error_type", "error")

    def __init__(self, key: str, scenario: Scenario):
        self.key = key
        self.scenario = scenario
        self.event = threading.Event()
        self.started = False
        self.payload: Optional[Dict[str, Any]] = None
        self.error_type: Optional[str] = None
        self.error: Optional[str] = None


@dataclass
class _Slot:
    """One scenario position of a job and how it resolves."""

    scenario: Scenario
    key: str
    source: str  # "cache" | "run" | "coalesced"
    payload: Optional[Dict[str, Any]] = None
    execution: Optional[_Execution] = None

    def result_payload(self) -> Optional[Dict[str, Any]]:
        if self.payload is not None:
            return self.payload
        if self.execution is not None:
            return self.execution.payload
        return None


@dataclass
class Job:
    """One submitted document, tracked through to its results."""

    id: str
    kind: str
    slots: List[_Slot] = field(default_factory=list)

    @property
    def error(self) -> Optional[Tuple[str, str]]:
        """``(type name, message)`` of the first failed execution."""
        for slot in self.slots:
            execution = slot.execution
            if execution is not None and execution.error is not None:
                return execution.error_type, execution.error
        return None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        if all(slot.result_payload() is not None for slot in self.slots):
            return "done"
        if any(
            slot.execution is not None and slot.execution.started
            for slot in self.slots
        ):
            return "running"
        return "submitted"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every slot resolves (or fails); ``False`` on
        timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for slot in self.slots:
            if slot.execution is None:
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not slot.execution.event.wait(remaining):
                return False
        return True

    def as_dict(self, *, results: bool = True) -> Dict[str, Any]:
        status = self.status
        payload: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "status": status,
            "runs": len(self.slots),
            "keys": [slot.key for slot in self.slots],
            "sources": [slot.source for slot in self.slots],
        }
        if status == "failed":
            error_type, message = self.error
            payload["error"] = {"type": error_type, "message": message}
        if results and status == "done":
            payload["results"] = [
                # Hit or miss, the served result echoes the *submitting*
                # scenario - exactly what Scenario.run() would have set.
                {**slot.result_payload(), "config": slot.scenario.to_dict()}
                for slot in self.slots
            ]
        return payload


class JobStore:
    """Submission front end: dedup against the cache and in-flight runs,
    execute the rest on a worker pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        job_workers: int = 4,
        run_workers: Optional[int] = None,
        max_jobs: int = 10_000,
    ):
        if isinstance(job_workers, bool) or not isinstance(job_workers, int) or job_workers < 1:
            raise ConfigurationError(
                f"job_workers must be a positive integer, got {job_workers!r}"
            )
        if run_workers is not None and (
            isinstance(run_workers, bool)
            or not isinstance(run_workers, int)
            or run_workers < 1
        ):
            raise ConfigurationError(
                f"run_workers must be a positive integer or None, got {run_workers!r}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.run_workers = run_workers
        self.max_jobs = max_jobs
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, _Execution] = {}
        self._counter = 0
        self.submitted = 0     # documents accepted
        self.executions = 0    # scenario runs actually executed
        self.coalesced = 0     # slots attached to an in-flight duplicate

    # ---- submission --------------------------------------------------

    def submit(self, scenarios: List[Scenario], *, kind: str = "scenario") -> Job:
        """Register one job; claim un-cached, un-inflight keys and hand
        them to the worker pool.  Returns immediately."""
        for scenario in scenarios:
            scenario.validate()  # 400 now, not a failed job later
        claimed: List[_Execution] = []
        with self._lock:
            self._counter += 1
            self.submitted += 1
            job = Job(id=f"j-{self._counter:06d}", kind=kind)
            for scenario in scenarios:
                key = scenario.cache_key()
                execution = self._inflight.get(key)
                if execution is not None:
                    self.coalesced += 1
                    job.slots.append(
                        _Slot(scenario, key, "coalesced", execution=execution)
                    )
                    continue
                payload = self.cache.get_payload(key)
                if payload is not None:
                    job.slots.append(
                        _Slot(scenario, key, "cache", payload=payload)
                    )
                    continue
                execution = _Execution(key, scenario)
                self._inflight[key] = execution
                claimed.append(execution)
                job.slots.append(
                    _Slot(scenario, key, "run", execution=execution)
                )
            self._jobs[job.id] = job
            self._evict_done_jobs()
        if claimed:
            self._executor.submit(self._run_batch, claimed)
        return job

    def _evict_done_jobs(self) -> None:
        # Called under the lock.  Drop the oldest finished jobs beyond
        # the cap; running jobs are never evicted.
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].status in ("done", "failed"):
                del self._jobs[job_id]

    # ---- execution ---------------------------------------------------

    def _run_batch(self, claimed: List[_Execution]) -> None:
        for execution in claimed:
            execution.started = True
        scenarios = [execution.scenario for execution in claimed]
        try:
            results = run_scenarios(scenarios, workers=self.run_workers)
        except Exception as exc:
            # One engine error fails the whole claimed batch: the keys
            # stay un-cached and a resubmission re-executes them.
            with self._lock:
                for execution in claimed:
                    self._inflight.pop(execution.key, None)
            for execution in claimed:
                execution.error_type = type(exc).__name__
                execution.error = str(exc)
                execution.event.set()
            return
        with self._lock:
            self.executions += len(claimed)
        for execution, result in zip(claimed, results):
            payload = self.cache.put(execution.key, result)
            execution.payload = payload
            with self._lock:
                self._inflight.pop(execution.key, None)
            execution.event.set()

    # ---- lookup ------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_status = Counter(job.status for job in self._jobs.values())
            return {
                "jobs": {
                    "submitted": self.submitted,
                    "tracked": len(self._jobs),
                    "by_status": dict(sorted(by_status.items())),
                },
                "executions": self.executions,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight),
                "cache": self.cache.stats(),
            }

    def close(self) -> None:
        self._executor.shutdown(wait=True)


__all__ = [
    "DOCUMENT_KINDS",
    "JOB_STATES",
    "Job",
    "JobStore",
    "scenarios_from_document",
]
