"""Job queue for the run server: submissions, dedup, execution.

A *job* is one submitted document (scenario, sweep, suite, or explicit
scenario list) expanded into an ordered list of scenario *slots*.  Each
slot resolves from exactly one of three sources:

* ``cache`` - the content-addressed :class:`~repro.cache.ResultCache`
  already holds the key (counted as a cache hit);
* ``coalesced`` - another job is *currently executing* the same key, so
  this slot subscribes to that in-flight execution instead of running
  again (the ``coalesced`` counter is the duplicate-submission proof:
  thousands of concurrent identical submissions resolve to one run);
* ``run`` - this job claims the key and executes it on the store's
  worker pool via :func:`repro.api.run_scenarios` (counted as a cache
  miss, then stored).

Job states are ``submitted`` (queued, nothing started), ``running``,
``done`` and ``failed``.  Results are served in submission order as
lossless :meth:`~repro.sim.metrics.RunResult.to_dict` (``full=True``)
payloads with the *submitting* scenario echoed as ``config`` - so a
served result is bit-identical to what ``Scenario.run()`` returns
in-process, hit or miss.

Failure handling (see ``docs/chaos.md``): an execution that dies on an
*unexpected* exception (a worker crash, an injected
:class:`~repro.chaos.InjectedFault`) is retried up to ``retries`` times
with a bounded deterministic backoff; one that keeps failing is
**quarantined** - its key is released (never cached) and the job turns
``failed`` with the error surfaced through ``GET /jobs/<id>`` and the
client, instead of leaving submitters long-polling forever.  Errors in
the package's own taxonomy (:class:`~repro.errors.ReproError`) are
deterministic answers and fail fast without retry.
:meth:`JobStore.drain` is the graceful-shutdown half: refuse new
submissions, finish everything queued, then resolve any leaked
execution with a typed error so every waiter returns promptly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api import Scenario, Sweep, run_scenarios
from repro.cache import ResultCache
from repro.errors import ConfigurationError, ReproError, ServerError
from repro.suites import Suite

#: Seconds an injected ``worker=delay`` chaos fault adds to one
#: execution (small on purpose: visible to assertions, cheap in tests).
CHAOS_WORKER_DELAY_SECONDS = 0.02

JOB_STATES = ("submitted", "running", "done", "failed")

#: Top-level keys a job document may use, exactly one per submission.
DOCUMENT_KINDS = ("scenario", "sweep", "suite", "scenarios")


def scenarios_from_document(document: Any) -> Tuple[str, List[Scenario]]:
    """``(kind, scenarios)`` from a wire document.

    The wire format is one dict holding exactly one of ``scenario`` (a
    Scenario dict), ``sweep`` (a Sweep dict, expanded to its grid),
    ``suite`` (a Suite dict, expanded to every entry's runs; pins are
    ignored - the server executes, it does not referee), or
    ``scenarios`` (an explicit non-empty list of Scenario dicts).
    Malformed documents raise :class:`ConfigurationError` naming the
    offending field and value - the server maps that to HTTP 400.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"a job document must be a dict, got {type(document).__name__}"
        )
    kinds = [kind for kind in DOCUMENT_KINDS if kind in document]
    if len(kinds) != 1:
        raise ConfigurationError(
            "a job document must hold exactly one of "
            + ", ".join(repr(kind) for kind in DOCUMENT_KINDS)
            + (f"; got field(s) {sorted(document)}" if document else "; got an empty dict")
        )
    kind = kinds[0]
    extra = set(document) - {kind}
    if extra:
        raise ConfigurationError(
            f"unknown job document field(s) {sorted(extra)} alongside {kind!r}"
        )
    if kind == "scenario":
        return kind, [Scenario.from_dict(document["scenario"])]
    if kind == "sweep":
        return kind, list(Sweep.from_dict(document["sweep"]).scenarios())
    if kind == "scenarios":
        raw = document["scenarios"]
        if not isinstance(raw, list) or not raw:
            raise ConfigurationError(
                f"'scenarios' must be a non-empty list of scenario dicts, "
                f"got {raw!r}"
            )
        return kind, [Scenario.from_dict(item) for item in raw]
    suite = Suite.from_dict(document["suite"])
    return kind, [
        scenario for entry in suite.entries for scenario in entry.scenarios()
    ]


class _Execution:
    """One in-flight run of a distinct cache key; duplicates subscribe."""

    __slots__ = ("key", "scenario", "event", "started", "payload", "error_type", "error")

    def __init__(self, key: str, scenario: Scenario):
        self.key = key
        self.scenario = scenario
        self.event = threading.Event()
        self.started = False
        self.payload: Optional[Dict[str, Any]] = None
        self.error_type: Optional[str] = None
        self.error: Optional[str] = None


@dataclass
class _Slot:
    """One scenario position of a job and how it resolves."""

    scenario: Scenario
    key: str
    source: str  # "cache" | "run" | "coalesced"
    payload: Optional[Dict[str, Any]] = None
    execution: Optional[_Execution] = None

    def result_payload(self) -> Optional[Dict[str, Any]]:
        if self.payload is not None:
            return self.payload
        if self.execution is not None:
            return self.execution.payload
        return None


@dataclass
class Job:
    """One submitted document, tracked through to its results."""

    id: str
    kind: str
    slots: List[_Slot] = field(default_factory=list)

    @property
    def error(self) -> Optional[Tuple[str, str]]:
        """``(type name, message)`` of the first failed execution."""
        for slot in self.slots:
            execution = slot.execution
            if execution is not None and execution.error is not None:
                return execution.error_type, execution.error
        return None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        if all(slot.result_payload() is not None for slot in self.slots):
            return "done"
        if any(
            slot.execution is not None and slot.execution.started
            for slot in self.slots
        ):
            return "running"
        return "submitted"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every slot resolves (or fails); ``False`` on
        timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for slot in self.slots:
            if slot.execution is None:
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not slot.execution.event.wait(remaining):
                return False
        return True

    def as_dict(self, *, results: bool = True) -> Dict[str, Any]:
        status = self.status
        payload: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "status": status,
            "runs": len(self.slots),
            "keys": [slot.key for slot in self.slots],
            "sources": [slot.source for slot in self.slots],
        }
        if status == "failed":
            error_type, message = self.error
            payload["error"] = {"type": error_type, "message": message}
        if results and status == "done":
            payload["results"] = [
                # Hit or miss, the served result echoes the *submitting*
                # scenario - exactly what Scenario.run() would have set.
                {**slot.result_payload(), "config": slot.scenario.to_dict()}
                for slot in self.slots
            ]
        return payload


class JobStore:
    """Submission front end: dedup against the cache and in-flight runs,
    execute the rest on a worker pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        job_workers: int = 4,
        run_workers: Optional[int] = None,
        max_jobs: int = 10_000,
        retries: int = 3,
        retry_backoff: float = 0.05,
        chaos=None,
    ):
        if isinstance(job_workers, bool) or not isinstance(job_workers, int) or job_workers < 1:
            raise ConfigurationError(
                f"job_workers must be a positive integer, got {job_workers!r}"
            )
        if run_workers is not None and (
            isinstance(run_workers, bool)
            or not isinstance(run_workers, int)
            or run_workers < 1
        ):
            raise ConfigurationError(
                f"run_workers must be a positive integer or None, got {run_workers!r}"
            )
        if isinstance(retries, bool) or not isinstance(retries, int) or retries < 1:
            raise ConfigurationError(
                f"retries must be a positive integer (total attempts per "
                f"execution), got {retries!r}"
            )
        if (
            isinstance(retry_backoff, bool)
            or not isinstance(retry_backoff, (int, float))
            or retry_backoff < 0
        ):
            raise ConfigurationError(
                f"retry_backoff must be a non-negative number, got {retry_backoff!r}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.run_workers = run_workers
        self.max_jobs = max_jobs
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.chaos = chaos  # a repro.chaos.ChaosInjector, or None
        self._sleep = time.sleep  # injectable for deterministic tests
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, _Execution] = {}
        self._counter = 0
        self._closing = False
        self.submitted = 0     # documents accepted
        self.executions = 0    # scenario runs actually executed
        self.coalesced = 0     # slots attached to an in-flight duplicate
        self.retried = 0       # execution attempts after a worker crash
        self.quarantined = 0   # executions failed after all retries

    # ---- submission --------------------------------------------------

    def submit(self, scenarios: List[Scenario], *, kind: str = "scenario") -> Job:
        """Register one job; claim un-cached, un-inflight keys and hand
        them to the worker pool.  Returns immediately."""
        for scenario in scenarios:
            scenario.validate()  # 400 now, not a failed job later
        claimed: List[_Execution] = []
        with self._lock:
            if self._closing:
                raise ServerError(
                    "the job store is draining for shutdown and accepts no "
                    "new submissions"
                )
            self._counter += 1
            self.submitted += 1
            job = Job(id=f"j-{self._counter:06d}", kind=kind)
            for scenario in scenarios:
                key = scenario.cache_key()
                execution = self._inflight.get(key)
                if execution is not None:
                    self.coalesced += 1
                    job.slots.append(
                        _Slot(scenario, key, "coalesced", execution=execution)
                    )
                    continue
                payload = self.cache.get_payload(key)
                if payload is not None:
                    job.slots.append(
                        _Slot(scenario, key, "cache", payload=payload)
                    )
                    continue
                execution = _Execution(key, scenario)
                self._inflight[key] = execution
                claimed.append(execution)
                job.slots.append(
                    _Slot(scenario, key, "run", execution=execution)
                )
            self._jobs[job.id] = job
            self._evict_done_jobs()
        for execution in claimed:
            # One pool task per execution (not per batch): a crash or a
            # quarantine is then isolated to one scenario, and retries
            # never hold up the rest of the submission.
            self._executor.submit(self._run_one, execution)
        return job

    def _evict_done_jobs(self) -> None:
        # Called under the lock.  Drop the oldest finished jobs beyond
        # the cap; running jobs are never evicted.
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].status in ("done", "failed"):
                del self._jobs[job_id]

    # ---- execution ---------------------------------------------------

    def _retry_delays(self) -> List[float]:
        """Bounded deterministic backoff: one sleep before each retry
        (``retry_backoff * 2**i``)."""
        return [self.retry_backoff * (2 ** i) for i in range(self.retries - 1)]

    def _run_one(self, execution: _Execution) -> None:
        """Execute one claimed key: bounded retries on unexpected
        crashes, quarantine (a surfaced ``failed`` state, never cached)
        when every attempt dies."""
        execution.started = True
        delays = self._retry_delays()
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries):
            if attempt:
                with self._lock:
                    self.retried += 1
                self._sleep(delays[attempt - 1])
            try:
                mode = (
                    self.chaos.fire("worker", execution.key)
                    if self.chaos is not None
                    else None
                )
                if mode == "crash":
                    from repro.chaos import InjectedFault

                    raise InjectedFault(
                        f"chaos: injected worker crash running {execution.key}"
                    )
                if mode == "delay":
                    self._sleep(CHAOS_WORKER_DELAY_SECONDS)
                result = run_scenarios(
                    [execution.scenario], workers=self.run_workers
                )[0]
            except ReproError as exc:
                # The package's own taxonomy is deterministic: the same
                # scenario fails the same way every time, so retrying
                # only burns backoff.  Fail fast.
                last_exc = exc
                break
            except Exception as exc:
                last_exc = exc
                continue
            payload = self.cache.put(execution.key, result)
            execution.payload = payload
            with self._lock:
                self.executions += 1
                self._inflight.pop(execution.key, None)
            execution.event.set()
            return
        # Quarantine: release the key un-cached, surface the error.  A
        # later resubmission re-executes from scratch.
        with self._lock:
            self.quarantined += 1
            self._inflight.pop(execution.key, None)
        execution.error_type = type(last_exc).__name__
        execution.error = str(last_exc)
        execution.event.set()

    # ---- lookup ------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_status = Counter(job.status for job in self._jobs.values())
            return {
                "jobs": {
                    "submitted": self.submitted,
                    "tracked": len(self._jobs),
                    "by_status": dict(sorted(by_status.items())),
                },
                "executions": self.executions,
                "coalesced": self.coalesced,
                "retried": self.retried,
                "quarantined": self.quarantined,
                "inflight": len(self._inflight),
                "draining": self._closing,
                "cache": self.cache.stats(),
            }

    # ---- shutdown ----------------------------------------------------

    def drain(self) -> Dict[str, Any]:
        """Graceful shutdown: refuse new work, finish everything queued,
        resolve any leaked execution with a typed error.

        Returns the drain report::

            {"drained_jobs": N, "leaked_keys": [...], "leaked_jobs":
             [...], "cache": {...}}

        On a clean drain ``leaked_keys``/``leaked_jobs`` are empty -
        every in-flight execution either completed (and was journaled)
        or quarantined.  Anything still unresolved after the worker pool
        stops (which should not happen) gets a :class:`ServerError` set
        and its event fired, so long-pollers return promptly instead of
        hanging out their full wait.
        """
        with self._lock:
            self._closing = True
        # Finish queued + running executions; every _run_one resolves
        # its execution (payload or quarantine) before returning.
        self._executor.shutdown(wait=True)
        leaked_keys: List[str] = []
        with self._lock:
            for key, execution in list(self._inflight.items()):
                if not execution.event.is_set():
                    execution.error_type = "ServerError"
                    execution.error = (
                        f"server shut down before execution {key} completed; "
                        "resubmit to re-run"
                    )
                    execution.event.set()
                    leaked_keys.append(key)
            self._inflight.clear()
            leaked_jobs = sorted(
                job.id
                for job in self._jobs.values()
                if job.status not in ("done", "failed")
            )
            drained = sum(
                1 for job in self._jobs.values() if job.status == "done"
            )
        return {
            "drained_jobs": drained,
            "leaked_keys": leaked_keys,
            "leaked_jobs": leaked_jobs,
            "cache": self.cache.stats(),
        }

    def close(self) -> None:
        with self._lock:
            self._closing = True
        self._executor.shutdown(wait=True)


__all__ = [
    "DOCUMENT_KINDS",
    "JOB_STATES",
    "Job",
    "JobStore",
    "scenarios_from_document",
]
