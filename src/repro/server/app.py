"""The HTTP face of simulation-as-a-service: routing + wire format.

Stdlib only (``http.server`` + JSON); see ``docs/serve.md`` for the
full wire-format reference.  Endpoints:

* ``POST /jobs`` - submit a job document (``{"scenario": ...}``,
  ``{"sweep": ...}``, ``{"suite": ...}`` or ``{"scenarios": [...]}``).
  Returns the job snapshot; results are inlined when every slot was
  already cached.
* ``GET /jobs/<id>`` - poll one job (``?wait=SECONDS`` long-polls up to
  :data:`MAX_WAIT_SECONDS`, further capped by the server's per-request
  deadline).  Done jobs carry ``results`` in submission order.
* ``GET /results/<key>`` - the cached result for one
  :meth:`~repro.api.Scenario.cache_key` content address.
* ``GET /stats`` - job/cache counters (hits, misses, executions,
  coalesced, retried, quarantined, journal CRC counters - the
  single-execution and no-silent-corruption proofs).
* ``GET /healthz`` - liveness: 200 while the process serves.
* ``GET /readyz`` - readiness: 200 while accepting work, 503 once
  draining (load balancers stop routing before shutdown completes).
* ``GET /`` - service manifest (version, protocols, endpoints).

Errors are JSON ``{"error": {"type", "message"}}``: configuration
mistakes are HTTP 400 with the package's own
:class:`~repro.errors.ConfigurationError` message (field and value
named), unknown routes/ids are 404, an oversized body is 413, a
rate-limited or over-quota client is 429 with a ``Retry-After`` header,
submissions during drain are 503, anything unexpected is 500.

Robustness (see ``docs/chaos.md``): construction accepts a ``chaos``
spec that threads a :class:`~repro.chaos.ChaosInjector` through the
cache journal, the job workers and the request handler;
:meth:`ReproServer.shutdown` performs a graceful drain - stop accepting
submissions, finish in-flight jobs, resolve stragglers with typed
errors so long-polls return promptly - and returns the drain report.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

import repro
from repro.cache import ResultCache
from repro.chaos import chaos_from_spec
from repro.core.registry import available_protocols
from repro.errors import ConfigurationError, ServerError
from repro.server.jobs import JobStore, scenarios_from_document

#: Ceiling on ``?wait=`` long-polls, so a stuck client cannot pin a
#: handler thread forever.
MAX_WAIT_SECONDS = 30.0

#: Default cap on submission bodies; override per server with
#: ``max_body_bytes=``.
MAX_BODY_BYTES = 64 * 1024 * 1024


class RateLimiter:
    """Per-client token bucket plus an optional absolute quota.

    ``rate`` tokens refill per second up to ``burst``; each submission
    spends one.  ``quota`` (when set) caps a client's *total accepted*
    submissions for the server's lifetime - multi-tenant fairness for
    long-lived shared instances.  ``allow`` returns ``(True, 0.0)`` or
    ``(False, retry_after_seconds)`` (0 retry-after means "never":
    quota exhausted).  The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        *,
        quota: Optional[int] = None,
        clock=time.monotonic,
    ):
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate <= 0:
            raise ConfigurationError(
                f"rate limit must be a positive number of requests per "
                f"second, got {rate!r}"
            )
        if burst is None:
            burst = max(1, int(rate))
        if isinstance(burst, bool) or not isinstance(burst, int) or burst < 1:
            raise ConfigurationError(
                f"rate-limit burst must be a positive integer, got {burst!r}"
            )
        if quota is not None and (
            isinstance(quota, bool) or not isinstance(quota, int) or quota < 1
        ):
            raise ConfigurationError(
                f"client quota must be a positive integer or None, got {quota!r}"
            )
        self.rate = float(rate)
        self.burst = burst
        self.quota = quota
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens: Dict[str, float] = {}
        self._stamp: Dict[str, float] = {}
        self._spent: Dict[str, int] = {}
        self.throttled = 0  # observability: how many requests got a 429

    def allow(self, client: str):
        now = self._clock()
        with self._lock:
            if self.quota is not None and self._spent.get(client, 0) >= self.quota:
                self.throttled += 1
                return False, 0.0
            tokens = min(
                float(self.burst),
                self._tokens.get(client, float(self.burst))
                + (now - self._stamp.get(client, now)) * self.rate,
            )
            self._stamp[client] = now
            if tokens < 1.0:
                self._tokens[client] = tokens
                self.throttled += 1
                return False, (1.0 - tokens) / self.rate
            self._tokens[client] = tokens - 1.0
            self._spent[client] = self._spent.get(client, 0) + 1
            return True, 0.0


class _ServerState:
    """Shared mutable knobs the handler consults per request."""

    def __init__(
        self,
        *,
        max_body_bytes: int,
        request_deadline: Optional[float],
        limiter: Optional[RateLimiter],
        chaos,
    ):
        self.max_body_bytes = max_body_bytes
        self.request_deadline = request_deadline
        self.limiter = limiter
        self.chaos = chaos
        self.draining = False


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    # Concurrent duplicate submissions arrive in bursts; the default
    # accept backlog of 5 drops connections under load.
    request_queue_size = 128


def _make_handler(store: JobStore, state: _ServerState):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-serve/{repro.__version__}"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging is the CLI's choice, not the handler's

        # ---- plumbing ------------------------------------------------

        def _send(
            self,
            code: int,
            payload: Dict[str, Any],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _error(
            self,
            code: int,
            type_name: str,
            message: str,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            self._send(
                code, {"error": {"type": type_name, "message": message}}, headers
            )

        def _read_document(self) -> Optional[Any]:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._error(400, "ConfigurationError", "bad Content-Length header")
                return None
            if length <= 0:
                self._error(
                    400, "ConfigurationError",
                    "a job submission needs a JSON body",
                )
                return None
            if length > state.max_body_bytes:
                self._error(
                    413, "ConfigurationError",
                    f"job document of {length} bytes exceeds this server's "
                    f"{state.max_body_bytes}-byte limit (serve "
                    "--max-body-bytes raises it)",
                )
                return None
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(
                    400, "ConfigurationError",
                    f"job document does not parse as JSON: {exc}",
                )
                return None

        def _chaos_handler_fault(self, path: str) -> bool:
            """Injected handler failure (HTTP 500); health endpoints are
            exempt so liveness stays honest."""
            if state.chaos is None or path in ("/healthz", "/readyz"):
                return False
            mode = state.chaos.fire("handler", path)
            if mode is None:
                return False
            self._error(
                500, "InjectedFault",
                f"chaos: injected handler exception on {path}",
            )
            return True

        # ---- routes --------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            try:
                url = urlsplit(self.path)
                if self._chaos_handler_fault(url.path):
                    return
                parts = [part for part in url.path.split("/") if part]
                if not parts or parts == ["about"]:
                    self._send(200, _manifest())
                elif parts == ["healthz"]:
                    self._send(200, {"status": "ok"})
                elif parts == ["readyz"]:
                    if state.draining:
                        self._send(503, {"status": "draining"})
                    else:
                        self._send(200, {"status": "ready"})
                elif parts == ["stats"]:
                    payload = store.stats()
                    if state.limiter is not None:
                        payload["throttled"] = state.limiter.throttled
                    if state.chaos is not None:
                        payload["chaos"] = state.chaos.log.as_dict()
                        payload["chaos"].pop("events", None)  # counters only
                    self._send(200, payload)
                elif len(parts) == 2 and parts[0] == "jobs":
                    self._get_job(parts[1], url.query)
                elif len(parts) == 2 and parts[0] == "results":
                    self._get_result(parts[1])
                else:
                    self._error(404, "NotFound", f"unknown path {url.path!r}")
            except BrokenPipeError:
                pass  # client hung up mid-response
            except Exception as exc:  # never leak a traceback to the wire
                self._error(500, type(exc).__name__, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            try:
                url = urlsplit(self.path)
                if url.path.rstrip("/") != "/jobs":
                    self._error(404, "NotFound", f"unknown path {url.path!r}")
                    return
                if self._chaos_handler_fault(url.path):
                    return
                if state.draining:
                    self._error(
                        503, "ServerError",
                        "server is draining for shutdown and accepts no new "
                        "submissions",
                    )
                    return
                if state.limiter is not None:
                    allowed, retry_after = state.limiter.allow(
                        self.client_address[0]
                    )
                    if not allowed:
                        if retry_after > 0:
                            self._error(
                                429, "ServerError",
                                "rate limit exceeded; retry after "
                                f"{retry_after:.2f}s",
                                {"Retry-After": f"{max(1, int(retry_after + 0.999))}"},
                            )
                        else:
                            self._error(
                                429, "ServerError",
                                "client quota exhausted on this server",
                                {"Retry-After": "3600"},
                            )
                        return
                document = self._read_document()
                if document is None:
                    return
                try:
                    kind, scenarios = scenarios_from_document(document)
                    job = store.submit(scenarios, kind=kind)
                except ConfigurationError as exc:
                    self._error(400, "ConfigurationError", str(exc))
                    return
                except ServerError as exc:
                    self._error(503, "ServerError", str(exc))
                    return
                payload = job.as_dict()
                payload["cache"] = store.cache.stats()
                self._send(200, payload)
            except BrokenPipeError:
                pass
            except Exception as exc:
                self._error(500, type(exc).__name__, str(exc))

        def _get_job(self, job_id: str, query: str) -> None:
            job = store.get(job_id)
            if job is None:
                self._error(404, "NotFound", f"no job {job_id!r}")
                return
            wait_values = parse_qs(query).get("wait")
            if wait_values:
                try:
                    wait = float(wait_values[-1])
                except ValueError:
                    self._error(
                        400, "ConfigurationError",
                        f"'wait' must be a number of seconds, got "
                        f"{wait_values[-1]!r}",
                    )
                    return
                ceiling = MAX_WAIT_SECONDS
                if state.request_deadline is not None:
                    ceiling = min(ceiling, state.request_deadline)
                job.wait(min(max(wait, 0.0), ceiling))
            payload = job.as_dict()
            payload["cache"] = store.cache.stats()
            self._send(200, payload)

        def _get_result(self, key: str) -> None:
            payload = store.cache.peek(key)
            if payload is None:
                self._error(404, "NotFound", f"no cached result for key {key!r}")
                return
            self._send(200, {"key": key, "result": payload})

    def _manifest() -> Dict[str, Any]:
        return {
            "service": "repro-serve",
            "version": repro.__version__,
            "protocols": available_protocols(),
            "endpoints": [
                "POST /jobs",
                "GET /jobs/<id>[?wait=SECONDS]",
                "GET /results/<cache-key>",
                "GET /stats",
                "GET /healthz",
                "GET /readyz",
            ],
        }

    return Handler


class ReproServer:
    """A live ``repro serve`` instance: threading HTTP server + job store.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    concrete address either way.  ``start()`` serves from a daemon
    thread (in-process use), ``serve_forever()`` blocks (the CLI).

    Hardening knobs: ``max_body_bytes`` caps submission bodies (413),
    ``rate_limit``/``rate_burst``/``client_quota`` throttle per-client
    submissions (429 + ``Retry-After``), ``request_deadline`` bounds how
    long any single request may hold a handler thread, ``retries`` /
    ``retry_backoff`` configure worker-crash retry, and ``chaos`` (a
    spec string/dict or a live :class:`~repro.chaos.ChaosInjector`)
    injects deterministic faults for testing.  :meth:`shutdown` drains
    gracefully and returns the drain report.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: Optional[ResultCache] = None,
        cache_entries: Optional[int] = None,
        cache_path=None,
        job_workers: int = 4,
        run_workers: Optional[int] = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        client_quota: Optional[int] = None,
        request_deadline: Optional[float] = None,
        retries: int = 3,
        retry_backoff: float = 0.05,
        chaos=None,
    ):
        if (
            isinstance(max_body_bytes, bool)
            or not isinstance(max_body_bytes, int)
            or max_body_bytes < 1
        ):
            raise ConfigurationError(
                f"max_body_bytes must be a positive integer, got "
                f"{max_body_bytes!r}"
            )
        if request_deadline is not None and (
            isinstance(request_deadline, bool)
            or not isinstance(request_deadline, (int, float))
            or request_deadline <= 0
        ):
            raise ConfigurationError(
                f"request_deadline must be a positive number of seconds or "
                f"None, got {request_deadline!r}"
            )
        self.chaos = chaos_from_spec(chaos)
        if cache is None:
            cache = ResultCache(
                max_entries=cache_entries, path=cache_path, chaos=self.chaos
            )
        elif self.chaos is not None and getattr(cache, "_chaos", None) is None:
            cache._chaos = self.chaos
        limiter = None
        if rate_limit is not None or client_quota is not None:
            limiter = RateLimiter(
                rate_limit if rate_limit is not None else 1_000_000.0,
                rate_burst,
                quota=client_quota,
            )
        self.store = JobStore(
            cache=cache,
            job_workers=job_workers,
            run_workers=run_workers,
            retries=retries,
            retry_backoff=retry_backoff,
            chaos=self.chaos,
        )
        self._state = _ServerState(
            max_body_bytes=max_body_bytes,
            request_deadline=request_deadline,
            limiter=limiter,
            chaos=self.chaos,
        )
        self.drain_report: Optional[Dict[str, Any]] = None
        try:
            self._http = _ThreadingServer(
                (host, port), _make_handler(self.store, self._state)
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind repro serve to {host}:{port}: {exc}"
            ) from exc
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._state.draining

    def start(self) -> "ReproServer":
        """Serve from a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def shutdown(self) -> Dict[str, Any]:
        """Graceful drain, then stop serving.  Idempotent.

        1. flip ``readyz`` to 503 and refuse new submissions;
        2. finish (or quarantine) every in-flight execution and resolve
           stragglers with typed errors, so blocked long-polls return
           promptly instead of timing out;
        3. stop the accept loop and close the socket (handler threads
           finish their in-flight responses first);
        4. return the drain report (``leaked_keys``/``leaked_jobs`` are
           empty on a clean drain; completed work is already journaled -
           cache appends flush per write).
        """
        if self.drain_report is not None:
            return self.drain_report
        self._state.draining = True
        report = self.store.drain()
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.chaos is not None:
            report["chaos"] = self.chaos.log.as_dict()
        self.drain_report = report
        return report

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    host: str = "127.0.0.1",
    port: int = 8123,
    **kwargs,
) -> ReproServer:
    """Construct a :class:`ReproServer` (not yet serving); the CLI's
    entry point."""
    return ReproServer(host, port, **kwargs)


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_WAIT_SECONDS",
    "RateLimiter",
    "ReproServer",
    "serve",
]
