"""The HTTP face of simulation-as-a-service: routing + wire format.

Stdlib only (``http.server`` + JSON); see ``docs/serve.md`` for the
full wire-format reference.  Endpoints:

* ``POST /jobs`` - submit a job document (``{"scenario": ...}``,
  ``{"sweep": ...}``, ``{"suite": ...}`` or ``{"scenarios": [...]}``).
  Returns the job snapshot; results are inlined when every slot was
  already cached.
* ``GET /jobs/<id>`` - poll one job (``?wait=SECONDS`` long-polls up to
  :data:`MAX_WAIT_SECONDS`).  Done jobs carry ``results`` in submission
  order.
* ``GET /results/<key>`` - the cached result for one
  :meth:`~repro.api.Scenario.cache_key` content address.
* ``GET /stats`` - job/cache counters (hits, misses, executions,
  coalesced - the single-execution proof).
* ``GET /`` - service manifest (version, protocols, endpoints).

Errors are JSON ``{"error": {"type", "message"}}``: configuration
mistakes are HTTP 400 with the package's own
:class:`~repro.errors.ConfigurationError` message (field and value
named), unknown routes/ids are 404, anything unexpected is 500.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

import repro
from repro.cache import ResultCache
from repro.core.registry import available_protocols
from repro.errors import ConfigurationError
from repro.server.jobs import JobStore, scenarios_from_document

#: Ceiling on ``?wait=`` long-polls, so a stuck client cannot pin a
#: handler thread forever.
MAX_WAIT_SECONDS = 30.0

#: Submission documents larger than this are rejected outright.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    # Concurrent duplicate submissions arrive in bursts; the default
    # accept backlog of 5 drops connections under load.
    request_queue_size = 128


def _make_handler(store: JobStore):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-serve/{repro.__version__}"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging is the CLI's choice, not the handler's

        # ---- plumbing ------------------------------------------------

        def _send(self, code: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, type_name: str, message: str) -> None:
            self._send(code, {"error": {"type": type_name, "message": message}})

        def _read_document(self) -> Optional[Any]:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._error(400, "ConfigurationError", "bad Content-Length header")
                return None
            if length <= 0:
                self._error(
                    400, "ConfigurationError",
                    "a job submission needs a JSON body",
                )
                return None
            if length > MAX_BODY_BYTES:
                self._error(
                    413, "ConfigurationError",
                    f"job document of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                )
                return None
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(
                    400, "ConfigurationError",
                    f"job document does not parse as JSON: {exc}",
                )
                return None

        # ---- routes --------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            try:
                url = urlsplit(self.path)
                parts = [part for part in url.path.split("/") if part]
                if not parts or parts == ["about"]:
                    self._send(200, _manifest())
                elif parts == ["stats"]:
                    self._send(200, store.stats())
                elif len(parts) == 2 and parts[0] == "jobs":
                    self._get_job(parts[1], url.query)
                elif len(parts) == 2 and parts[0] == "results":
                    self._get_result(parts[1])
                else:
                    self._error(404, "NotFound", f"unknown path {url.path!r}")
            except BrokenPipeError:
                pass  # client hung up mid-response
            except Exception as exc:  # never leak a traceback to the wire
                self._error(500, type(exc).__name__, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            try:
                url = urlsplit(self.path)
                if url.path.rstrip("/") != "/jobs":
                    self._error(404, "NotFound", f"unknown path {url.path!r}")
                    return
                document = self._read_document()
                if document is None:
                    return
                try:
                    kind, scenarios = scenarios_from_document(document)
                    job = store.submit(scenarios, kind=kind)
                except ConfigurationError as exc:
                    self._error(400, "ConfigurationError", str(exc))
                    return
                payload = job.as_dict()
                payload["cache"] = store.cache.stats()
                self._send(200, payload)
            except BrokenPipeError:
                pass
            except Exception as exc:
                self._error(500, type(exc).__name__, str(exc))

        def _get_job(self, job_id: str, query: str) -> None:
            job = store.get(job_id)
            if job is None:
                self._error(404, "NotFound", f"no job {job_id!r}")
                return
            wait_values = parse_qs(query).get("wait")
            if wait_values:
                try:
                    wait = float(wait_values[-1])
                except ValueError:
                    self._error(
                        400, "ConfigurationError",
                        f"'wait' must be a number of seconds, got "
                        f"{wait_values[-1]!r}",
                    )
                    return
                job.wait(min(max(wait, 0.0), MAX_WAIT_SECONDS))
            payload = job.as_dict()
            payload["cache"] = store.cache.stats()
            self._send(200, payload)

        def _get_result(self, key: str) -> None:
            payload = store.cache.peek(key)
            if payload is None:
                self._error(404, "NotFound", f"no cached result for key {key!r}")
                return
            self._send(200, {"key": key, "result": payload})

    def _manifest() -> Dict[str, Any]:
        return {
            "service": "repro-serve",
            "version": repro.__version__,
            "protocols": available_protocols(),
            "endpoints": [
                "POST /jobs",
                "GET /jobs/<id>[?wait=SECONDS]",
                "GET /results/<cache-key>",
                "GET /stats",
            ],
        }

    return Handler


class ReproServer:
    """A live ``repro serve`` instance: threading HTTP server + job store.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    concrete address either way.  ``start()`` serves from a daemon
    thread (in-process use), ``serve_forever()`` blocks (the CLI).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: Optional[ResultCache] = None,
        cache_entries: Optional[int] = None,
        cache_path=None,
        job_workers: int = 4,
        run_workers: Optional[int] = None,
    ):
        if cache is None:
            cache = ResultCache(max_entries=cache_entries, path=cache_path)
        self.store = JobStore(
            cache=cache, job_workers=job_workers, run_workers=run_workers
        )
        try:
            self._http = _ThreadingServer((host, port), _make_handler(self.store))
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind repro serve to {host}:{port}: {exc}"
            ) from exc
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve from a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def shutdown(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        self.store.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    host: str = "127.0.0.1",
    port: int = 8123,
    **kwargs,
) -> ReproServer:
    """Construct a :class:`ReproServer` (not yet serving); the CLI's
    entry point."""
    return ReproServer(host, port, **kwargs)


__all__ = ["MAX_WAIT_SECONDS", "ReproServer", "serve"]
