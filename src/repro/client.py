"""Client API for the ``repro serve`` run server.

Stdlib-only (``urllib``).  The client speaks the wire format documented
in ``docs/serve.md`` and rehydrates every served result through
:meth:`~repro.sim.metrics.RunResult.from_dict`, so remote callers get
the *same objects* in-process callers do - bit-identical metrics, same
``config`` echo, same error taxonomy::

    from repro import Client, Scenario

    client = Client("http://127.0.0.1:8123")
    result = client.run(Scenario(protocol="D", n=256, t=16, seed=1))
    assert result == Scenario(protocol="D", n=256, t=16, seed=1).run()

Errors: HTTP 400 re-raises as :class:`~repro.errors.ConfigurationError`
with the server's message (which names the offending field and value);
transport failures, timeouts and 5xx raise
:class:`~repro.errors.ServerError`.  A job that *failed on the server*
re-raises its recorded error type the same way.

Transient *connection* failures (refused, reset, DNS hiccups - anything
``urllib`` surfaces as a ``URLError`` without an HTTP status) are
retried with a bounded, deterministic backoff schedule before
:class:`~repro.errors.ServerError` is raised: ``attempts`` tries total,
sleeping ``backoff * 2**i`` between them (default 4 tries: 0.05s, 0.1s,
0.2s).  Long-running campaigns polling a shared serve instance survive
a server restart or a dropped socket instead of dying on the first
hiccup.  HTTP 429 (rate limited - the server's ``Retry-After`` header
overrides the backoff sleep) and retryable 5xx (500/502/503/504) are
also retried; every *other* HTTP status (400/404/413...) is a real
answer and is never retried.

Hardening knobs (see ``docs/chaos.md``): ``deadline`` bounds the whole
retry loop in wall-clock seconds, so a flapping server cannot hold a
caller for ``attempts x timeout``; ``jitter`` (a fraction, default 0)
stretches each backoff sleep by up to that share, drawn from a seeded
RNG (``jitter_seed``) so retry storms decorrelate across clients while
any single client stays reproducible.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Union

from repro.api import ResultSet, Scenario, Sweep
from repro.errors import ConfigurationError, ServerError
from repro.sim.metrics import RunResult
from repro.suites import Suite

#: HTTP statuses that signal a transient server-side condition and are
#: retried like connection failures (429 additionally honors
#: ``Retry-After``).
RETRYABLE_HTTP_STATUSES = (429, 500, 502, 503, 504)

#: Seconds an injected ``transport=slow`` chaos fault adds to a request.
CHAOS_SLOW_SECONDS = 0.02

#: Anything :meth:`Client.submit` accepts.
Document = Union[Scenario, Sweep, Suite, Dict[str, Any]]

_DEFAULT_POLL_SECONDS = 0.05
_LONG_POLL_SECONDS = 10.0


def _wire_document(document: Document) -> Dict[str, Any]:
    """Normalize ``document`` to the server's one-key wire form."""
    if isinstance(document, Scenario):
        return {"scenario": document.to_dict()}
    if isinstance(document, Sweep):
        return {"sweep": document.to_dict()}
    if isinstance(document, Suite):
        return {"suite": document.to_dict()}
    if not isinstance(document, dict):
        raise ConfigurationError(
            "a submission must be a Scenario, Sweep, Suite or dict, got "
            f"{type(document).__name__}"
        )
    # A bare Suite dict spells its *name* under "suite"; the wire format
    # nests the whole dict there instead - disambiguate by value type.
    if isinstance(document.get("suite"), str):
        return {"suite": document}
    if any(key in document for key in ("scenario", "sweep", "suite", "scenarios")):
        return document
    if "base" in document:
        return {"sweep": document}
    return {"scenario": document}


class Client:
    """HTTP client for one run server; see the module docstring."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        attempts: int = 4,
        backoff: float = 0.05,
        deadline: Optional[float] = None,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        chaos=None,
    ):
        if isinstance(attempts, bool) or not isinstance(attempts, int) or attempts < 1:
            raise ConfigurationError(
                f"client attempts must be a positive integer, got {attempts!r}"
            )
        if isinstance(backoff, bool) or not isinstance(backoff, (int, float)) or backoff < 0:
            raise ConfigurationError(
                f"client backoff must be a non-negative number, got {backoff!r}"
            )
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ConfigurationError(
                f"client deadline must be a positive number of seconds or "
                f"None, got {deadline!r}"
            )
        if (
            isinstance(jitter, bool)
            or not isinstance(jitter, (int, float))
            or not 0.0 <= jitter <= 1.0
        ):
            raise ConfigurationError(
                f"client jitter must be a fraction in [0, 1], got {jitter!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.attempts = attempts
        self.backoff = backoff
        self.deadline = deadline
        self.jitter = jitter
        self.chaos = chaos  # a repro.chaos.ChaosInjector, or None
        self._jitter_rng = random.Random(jitter_seed)
        self._sleep = time.sleep  # injectable for deterministic tests

    # ---- transport ---------------------------------------------------

    def _retry_delays(self) -> List[float]:
        """The deterministic backoff schedule: one sleep before each
        retry after the first attempt (``backoff * 2**i``)."""
        return [self.backoff * (2 ** i) for i in range(self.attempts - 1)]

    def _jittered(self, delay: float) -> float:
        """``delay`` stretched by up to ``jitter`` (seeded draw); the
        exact base schedule when jitter is 0."""
        if self.jitter <= 0.0:
            return delay
        return delay * (1.0 + self.jitter * self._jitter_rng.random())

    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        delays = self._retry_delays()
        last_reason: Any = None
        started = time.monotonic()
        next_delay: Optional[float] = None  # a 429's Retry-After override
        for attempt in range(self.attempts):
            if attempt:
                delay = self._jittered(
                    delays[attempt - 1] if next_delay is None else next_delay
                )
                next_delay = None
                if (
                    self.deadline is not None
                    and time.monotonic() - started + delay > self.deadline
                ):
                    break
                self._sleep(delay)
            if (
                self.deadline is not None
                and time.monotonic() - started > self.deadline
            ):
                break
            if self.chaos is not None:
                mode = self.chaos.fire("transport", path)
                if mode == "refused":
                    last_reason = "chaos: injected connection refused"
                    continue
                if mode == "error_5xx":
                    last_reason = "chaos: injected HTTP 503"
                    continue
                if mode == "slow":
                    self._sleep(CHAOS_SLOW_SECONDS)
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                if exc.code in RETRYABLE_HTTP_STATUSES:
                    # Transient server-side condition: drain the body,
                    # honor Retry-After (429), and retry on schedule.
                    last_reason = f"HTTP {exc.code}"
                    retry_after = exc.headers.get("Retry-After")
                    if exc.code == 429 and retry_after is not None:
                        try:
                            next_delay = max(0.0, float(retry_after))
                        except ValueError:
                            pass
                    try:
                        exc.read()
                    except Exception:
                        pass
                    continue
                # Any other HTTP status is a real answer, not a
                # transport hiccup - never retried.
                self._raise_http_error(exc)
            except urllib.error.URLError as exc:
                last_reason = exc.reason
                continue
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ServerError(
                    f"repro server at {self.base_url} sent a non-JSON response: {exc}"
                ) from exc
        if (
            self.deadline is not None
            and time.monotonic() - started > self.deadline - 1e-9
        ):
            raise ServerError(
                f"gave up on repro server at {self.base_url} after "
                f"{self.deadline:g}s wall-clock deadline: {last_reason}"
            )
        raise ServerError(
            f"cannot reach repro server at {self.base_url} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}: "
            f"{last_reason}"
        )

    def _raise_http_error(self, exc: urllib.error.HTTPError) -> None:
        try:
            error = json.loads(exc.read().decode("utf-8")).get("error", {})
        except Exception:
            error = {}
        message = error.get("message") or f"HTTP {exc.code}"
        if exc.code == 400 and error.get("type") == "ConfigurationError":
            raise ConfigurationError(message) from exc
        raise ServerError(f"server returned HTTP {exc.code}: {message}") from exc

    # ---- the job protocol --------------------------------------------

    def submit(self, document: Document) -> Dict[str, Any]:
        """POST one document; returns the server's job snapshot
        (``job``, ``status``, ``keys``, ``sources``, plus inlined
        ``results`` when everything was already cached)."""
        return self._request("/jobs", _wire_document(document))

    def job(self, job_id: str, *, wait: Optional[float] = None) -> Dict[str, Any]:
        """Poll one job; ``wait`` long-polls server-side."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request(path)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = _DEFAULT_POLL_SECONDS,
    ) -> List[RunResult]:
        """Block until ``job_id`` finishes; rehydrated results in
        submission order.  A failed job re-raises the server-side error
        (``ConfigurationError`` stays a ``ConfigurationError``)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServerError(
                    f"timed out after {timeout:g}s waiting for job {job_id}"
                )
            snapshot = self.job(
                job_id, wait=min(_LONG_POLL_SECONDS, max(poll, remaining))
            )
            status = snapshot["status"]
            if status == "done":
                return [
                    RunResult.from_dict(result) for result in snapshot["results"]
                ]
            if status == "failed":
                error = snapshot.get("error") or {}
                message = error.get("message", "unknown server-side failure")
                if error.get("type") == "ConfigurationError":
                    raise ConfigurationError(message)
                raise ServerError(
                    f"job {job_id} failed on the server: "
                    f"{error.get('type', 'Error')}: {message}"
                )
            time.sleep(poll)

    def _submit_and_wait(
        self, document: Document, timeout: float
    ) -> List[RunResult]:
        snapshot = self.submit(document)
        if snapshot["status"] == "done":
            return [RunResult.from_dict(result) for result in snapshot["results"]]
        return self.wait(snapshot["job"], timeout=timeout)

    # ---- convenience surface -----------------------------------------

    def run(self, scenario: Scenario, *, timeout: float = 300.0) -> RunResult:
        """Submit one scenario and block for its result - the remote
        equivalent of :meth:`Scenario.run`, bit-identical metrics and
        config echo included."""
        return self._submit_and_wait(scenario, timeout)[0]

    def run_sweep(self, sweep: Sweep, *, timeout: float = 300.0) -> ResultSet:
        """Submit a sweep and aggregate the served results into the same
        :class:`ResultSet` an in-process :meth:`Sweep.run` returns."""
        scenarios = list(sweep.scenarios())
        results = self._submit_and_wait(sweep, timeout)
        return ResultSet(list(zip(scenarios, results)))

    def result(self, key: str) -> RunResult:
        """Fetch the cached result for one
        :meth:`~repro.api.Scenario.cache_key` content address."""
        payload = self._request(f"/results/{key}")
        return RunResult.from_dict(payload["result"])

    def stats(self) -> Dict[str, Any]:
        """Server job/cache counters (hits, misses, executions, ...)."""
        return self._request("/stats")

    def about(self) -> Dict[str, Any]:
        """The service manifest: version, protocols, endpoints."""
        return self._request("/")


__all__ = ["Client", "Document"]
