"""Client API for the ``repro serve`` run server.

Stdlib-only (``urllib``).  The client speaks the wire format documented
in ``docs/serve.md`` and rehydrates every served result through
:meth:`~repro.sim.metrics.RunResult.from_dict`, so remote callers get
the *same objects* in-process callers do - bit-identical metrics, same
``config`` echo, same error taxonomy::

    from repro import Client, Scenario

    client = Client("http://127.0.0.1:8123")
    result = client.run(Scenario(protocol="D", n=256, t=16, seed=1))
    assert result == Scenario(protocol="D", n=256, t=16, seed=1).run()

Errors: HTTP 400 re-raises as :class:`~repro.errors.ConfigurationError`
with the server's message (which names the offending field and value);
transport failures, timeouts and 5xx raise
:class:`~repro.errors.ServerError`.  A job that *failed on the server*
re-raises its recorded error type the same way.

Transient *connection* failures (refused, reset, DNS hiccups - anything
``urllib`` surfaces as a ``URLError`` without an HTTP status) are
retried with a bounded, deterministic backoff schedule before
:class:`~repro.errors.ServerError` is raised: ``attempts`` tries total,
sleeping ``backoff * 2**i`` between them (default 4 tries: 0.05s, 0.1s,
0.2s).  Long-running campaigns polling a shared serve instance survive
a server restart or a dropped socket instead of dying on the first
hiccup.  HTTP-level errors (400/404/5xx) are real answers and are never
retried.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Union

from repro.api import ResultSet, Scenario, Sweep
from repro.errors import ConfigurationError, ServerError
from repro.sim.metrics import RunResult
from repro.suites import Suite

#: Anything :meth:`Client.submit` accepts.
Document = Union[Scenario, Sweep, Suite, Dict[str, Any]]

_DEFAULT_POLL_SECONDS = 0.05
_LONG_POLL_SECONDS = 10.0


def _wire_document(document: Document) -> Dict[str, Any]:
    """Normalize ``document`` to the server's one-key wire form."""
    if isinstance(document, Scenario):
        return {"scenario": document.to_dict()}
    if isinstance(document, Sweep):
        return {"sweep": document.to_dict()}
    if isinstance(document, Suite):
        return {"suite": document.to_dict()}
    if not isinstance(document, dict):
        raise ConfigurationError(
            "a submission must be a Scenario, Sweep, Suite or dict, got "
            f"{type(document).__name__}"
        )
    # A bare Suite dict spells its *name* under "suite"; the wire format
    # nests the whole dict there instead - disambiguate by value type.
    if isinstance(document.get("suite"), str):
        return {"suite": document}
    if any(key in document for key in ("scenario", "sweep", "suite", "scenarios")):
        return document
    if "base" in document:
        return {"sweep": document}
    return {"scenario": document}


class Client:
    """HTTP client for one run server; see the module docstring."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        attempts: int = 4,
        backoff: float = 0.05,
    ):
        if isinstance(attempts, bool) or not isinstance(attempts, int) or attempts < 1:
            raise ConfigurationError(
                f"client attempts must be a positive integer, got {attempts!r}"
            )
        if isinstance(backoff, bool) or not isinstance(backoff, (int, float)) or backoff < 0:
            raise ConfigurationError(
                f"client backoff must be a non-negative number, got {backoff!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.attempts = attempts
        self.backoff = backoff
        self._sleep = time.sleep  # injectable for deterministic tests

    # ---- transport ---------------------------------------------------

    def _retry_delays(self) -> List[float]:
        """The deterministic backoff schedule: one sleep before each
        retry after the first attempt (``backoff * 2**i``)."""
        return [self.backoff * (2 ** i) for i in range(self.attempts - 1)]

    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        delays = self._retry_delays()
        last_reason: Any = None
        for attempt in range(self.attempts):
            if attempt:
                self._sleep(delays[attempt - 1])
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # An HTTP status is a real answer, not a transport
                # hiccup - never retried.
                self._raise_http_error(exc)
            except urllib.error.URLError as exc:
                last_reason = exc.reason
                continue
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ServerError(
                    f"repro server at {self.base_url} sent a non-JSON response: {exc}"
                ) from exc
        raise ServerError(
            f"cannot reach repro server at {self.base_url} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}: "
            f"{last_reason}"
        )

    def _raise_http_error(self, exc: urllib.error.HTTPError) -> None:
        try:
            error = json.loads(exc.read().decode("utf-8")).get("error", {})
        except Exception:
            error = {}
        message = error.get("message") or f"HTTP {exc.code}"
        if exc.code == 400 and error.get("type") == "ConfigurationError":
            raise ConfigurationError(message) from exc
        raise ServerError(f"server returned HTTP {exc.code}: {message}") from exc

    # ---- the job protocol --------------------------------------------

    def submit(self, document: Document) -> Dict[str, Any]:
        """POST one document; returns the server's job snapshot
        (``job``, ``status``, ``keys``, ``sources``, plus inlined
        ``results`` when everything was already cached)."""
        return self._request("/jobs", _wire_document(document))

    def job(self, job_id: str, *, wait: Optional[float] = None) -> Dict[str, Any]:
        """Poll one job; ``wait`` long-polls server-side."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request(path)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = _DEFAULT_POLL_SECONDS,
    ) -> List[RunResult]:
        """Block until ``job_id`` finishes; rehydrated results in
        submission order.  A failed job re-raises the server-side error
        (``ConfigurationError`` stays a ``ConfigurationError``)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServerError(
                    f"timed out after {timeout:g}s waiting for job {job_id}"
                )
            snapshot = self.job(
                job_id, wait=min(_LONG_POLL_SECONDS, max(poll, remaining))
            )
            status = snapshot["status"]
            if status == "done":
                return [
                    RunResult.from_dict(result) for result in snapshot["results"]
                ]
            if status == "failed":
                error = snapshot.get("error") or {}
                message = error.get("message", "unknown server-side failure")
                if error.get("type") == "ConfigurationError":
                    raise ConfigurationError(message)
                raise ServerError(
                    f"job {job_id} failed on the server: "
                    f"{error.get('type', 'Error')}: {message}"
                )
            time.sleep(poll)

    def _submit_and_wait(
        self, document: Document, timeout: float
    ) -> List[RunResult]:
        snapshot = self.submit(document)
        if snapshot["status"] == "done":
            return [RunResult.from_dict(result) for result in snapshot["results"]]
        return self.wait(snapshot["job"], timeout=timeout)

    # ---- convenience surface -----------------------------------------

    def run(self, scenario: Scenario, *, timeout: float = 300.0) -> RunResult:
        """Submit one scenario and block for its result - the remote
        equivalent of :meth:`Scenario.run`, bit-identical metrics and
        config echo included."""
        return self._submit_and_wait(scenario, timeout)[0]

    def run_sweep(self, sweep: Sweep, *, timeout: float = 300.0) -> ResultSet:
        """Submit a sweep and aggregate the served results into the same
        :class:`ResultSet` an in-process :meth:`Sweep.run` returns."""
        scenarios = list(sweep.scenarios())
        results = self._submit_and_wait(sweep, timeout)
        return ResultSet(list(zip(scenarios, results)))

    def result(self, key: str) -> RunResult:
        """Fetch the cached result for one
        :meth:`~repro.api.Scenario.cache_key` content address."""
        payload = self._request(f"/results/{key}")
        return RunResult.from_dict(payload["result"])

    def stats(self) -> Dict[str, Any]:
        """Server job/cache counters (hits, misses, executions, ...)."""
        return self._request("/stats")

    def about(self) -> Dict[str, Any]:
        """The service manifest: version, protocols, endpoints."""
        return self._request("/")


__all__ = ["Client", "Document"]
