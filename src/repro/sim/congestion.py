"""Per-process per-round congestion budgets.

The paper's model lets a process send arbitrarily many messages per
round; the faulty-congested-clique line of work caps the per-round
*bandwidth* of each process instead.  This module defines that cap as a
declarative capability spec - the same grammar discipline as adversary,
delay and schedule specs - and both engines enforce it:

* **send budget**: a process may emit at most ``send`` point-to-point
  copies per round.  Excess copies are deferred *deterministically* to
  the process's following round(s), in recipient order for broadcasts
  and list order otherwise.  Deferred copies are charged (metrics and
  trace) at their actual departure round, and survive the sender
  crashing in between - they were already handed to the network.
* **receive budget**: a process may absorb at most ``receive`` envelopes
  per round; the rest stay queued, oldest first, and arrive at the next
  round(s).

Spec grammar::

    "budget:4"                     send=4 (receive unlimited)
    "budget:send=4,receive=8"     named form
    {"kind": "budget", "send": 4, "receive": 8}

Budgets are integers >= 1; at least one of ``send``/``receive`` must be
given.  :func:`normalize_congestion_spec` canonicalises to the dict form
(JSON round-trippable, what :class:`repro.api.Scenario` stores), and
:func:`congestion_from_spec` materialises the :class:`CongestionBudget`
both engines consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.specs import bind_positionals, split_spec_string, to_int

#: What congestion-accepting entry points take: ``None`` (uncongested),
#: a grammar string, a JSON-compatible dict, or the budget itself.
CongestionSpec = Union[None, str, Dict[str, object], "CongestionBudget"]

CONGESTION_KINDS = ("budget",)


@dataclass(frozen=True)
class CongestionBudget:
    """Per-process per-round send/receive caps (``None`` = unlimited)."""

    send: Optional[int] = None
    receive: Optional[int] = None

    def to_spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"kind": "budget"}
        if self.send is not None:
            spec["send"] = self.send
        if self.receive is not None:
            spec["receive"] = self.receive
        return spec


def normalize_congestion_spec(spec: CongestionSpec) -> Optional[Dict[str, object]]:
    """Canonicalise ``spec`` to ``{"kind": "budget", ...}`` or ``None``.

    Raises :class:`ConfigurationError` naming the offending parameter and
    value for malformed specs.
    """
    if spec is None:
        return None
    if isinstance(spec, CongestionBudget):
        spec = spec.to_spec()
    if isinstance(spec, str):
        kind, positional, named = split_spec_string(spec)
        bound = bind_positionals(kind, ("send",), positional, what="congestion kind")
        spec = {"kind": kind, **bound, **named}
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"congestion spec must be None, a string, or a dict, got "
            f"{type(spec).__name__}: {spec!r}"
        )
    if "kind" not in spec:
        raise ConfigurationError(
            "congestion spec dicts need a 'kind' key; known kinds: "
            + ", ".join(CONGESTION_KINDS)
        )
    kind = str(spec["kind"]).strip().lower()
    if kind not in CONGESTION_KINDS:
        raise ConfigurationError(
            f"unknown congestion kind {spec['kind']!r}; known kinds: "
            + ", ".join(CONGESTION_KINDS)
        )
    params = {str(k).replace("-", "_"): v for k, v in spec.items() if k != "kind"}
    unknown = set(params) - {"send", "receive"}
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for congestion kind "
            "'budget'; accepted: send, receive"
        )
    if not params:
        raise ConfigurationError(
            "congestion kind 'budget' needs at least one of 'send'/'receive' "
            "(e.g. 'budget:send=4,receive=8')"
        )
    result: Dict[str, object] = {"kind": "budget"}
    for name in ("send", "receive"):
        if name in params:
            result[name] = to_int(
                params[name], what=f"{name!r} for congestion 'budget'", minimum=1
            )
    return result


def congestion_from_spec(spec: CongestionSpec) -> Optional[CongestionBudget]:
    """Materialise the budget both engines consume (``None`` = uncongested)."""
    if isinstance(spec, CongestionBudget):
        return spec
    params = normalize_congestion_spec(spec)
    if params is None:
        return None
    return CongestionBudget(send=params.get("send"), receive=params.get("receive"))
