"""Shared tokenizer for the declarative spec string grammar, plus the
arrival-*schedule* spec grammar for dynamic-workload protocols.

Adversary specs (:mod:`repro.sim.adversary`), delay-model specs
(:mod:`repro.sim.async_engine`) and schedule specs (below) all use the
same surface syntax::

    KIND                      e.g.  "kill-active"
    KIND:ARG,ARG,...          e.g.  "random:5,max_action_index=25"

This module owns the ``KIND:ARG`` splitting so the parsers cannot
drift; value *coercion* stays domain-specific (adversaries take ranges
and pid lists, delay models take numbers, schedules take round/count
batches).

Schedule specs
--------------

Dynamic-workload protocols (``D-dynamic``) are driven by an
:class:`~repro.core.protocol_d_dynamic.ArrivalSchedule` - work units
arrive at sites over time - so they take a *schedule spec* instead of
assuming all ``n`` units are known at round 0.  The grammar:

``"uniform"`` / ``"uniform:every=3,start=0"``
    Unit ``u`` (1-based) arrives at site ``(u - 1) % t`` at round
    ``start + (u - 1) * every`` - the default when no spec is given.

``"arrivals:0x8,3x4"``
    Explicit arrival *batches*: each positional ``ROUNDxCOUNT`` pair
    drops ``COUNT`` units at round ``ROUND``.  Units are numbered
    sequentially across batches in the order written and land
    round-robin on sites.  The batch counts must sum to the scenario's
    ``n``.

dict forms
    ``{"kind": "uniform", "every": 3, "start": 0}``,
    ``{"kind": "arrivals", "batches": [[0, 8], [3, 4]]}``, and
    ``{"kind": "explicit", "arrivals": [[round, site, unit], ...]}``
    (the fully general form; the unit set must be exactly ``1..n``).

:func:`normalize_schedule_spec` canonicalises any of these to the dict
form (so specs embedded in scenario ``options`` serialize and compare
cleanly); :func:`schedule_from_spec` materialises an
:class:`ArrivalSchedule` for a concrete ``(n, t)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError


def split_spec_string(text: str) -> Tuple[str, List[str], Dict[str, str]]:
    """Split ``"kind:a,b=c"`` into ``("kind", ["a"], {"b": "c"})``.

    Values are returned as raw strings; callers coerce them.  Named
    argument names are normalised to underscores.
    """
    head, sep, rest = text.partition(":")
    kind = head.strip().lower()
    positional: List[str] = []
    named: Dict[str, str] = {}
    if sep:
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, _, value = part.partition("=")
                named[name.strip().replace("-", "_")] = value.strip()
            else:
                positional.append(part)
    return kind, positional, named


def bind_positionals(
    kind: str, names: Tuple[str, ...], positional: List[str], *, what: str
) -> Dict[str, str]:
    """Map positional raw values onto their parameter names, raising the
    standard too-many-positionals error."""
    if len(positional) > len(names):
        raise ConfigurationError(
            f"{what} {kind!r} takes at most {len(names)} positional "
            f"argument(s) ({', '.join(names) or 'none'}); got extra "
            f"{positional[len(names)]!r}"
        )
    return dict(zip(names, positional))


def to_number(value, *, what: str) -> float:
    """Coerce a spec value to float, raising ConfigurationError (never a
    bare ValueError) on junk."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be a number, got {value!r}")


# =====================================================================
# Arrival-schedule specs (dynamic-workload protocols)
# =====================================================================

#: What schedule-accepting entry points take: ``None`` (the uniform
#: default), a grammar string, or a JSON-compatible dict.
ScheduleSpec = Union[None, str, Dict[str, object]]

SCHEDULE_KINDS = ("uniform", "arrivals", "explicit")


def to_int(value, *, what: str, minimum: Optional[int] = None) -> int:
    """Coerce a spec value to int, raising ConfigurationError naming the
    parameter *and the offending value* (never a bare ValueError)."""
    try:
        result = int(value)
        if isinstance(value, float) and value != result:
            raise ValueError
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    if minimum is not None and result < minimum:
        raise ConfigurationError(f"{what} must be >= {minimum}, got {result}")
    return result


# Internal alias kept for the schedule parsers below.
_to_int = to_int


def _normalize_batches(raw, *, what: str) -> List[List[int]]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigurationError(
            f"{what} must be a non-empty list of [round, count] pairs, got {raw!r}"
        )
    batches = []
    for pair in raw:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ConfigurationError(
                f"each batch in {what} must be a [round, count] pair "
                f"(string form: ROUNDxCOUNT), got {pair!r}"
            )
        batches.append(
            [
                _to_int(pair[0], what=f"{what} round", minimum=0),
                _to_int(pair[1], what=f"{what} count", minimum=1),
            ]
        )
    return batches


def _parse_schedule_string(text: str) -> Dict[str, object]:
    kind, positional, named = split_spec_string(text)
    if kind == "uniform":
        bound = bind_positionals(
            kind, ("every",), positional, what="schedule kind"
        )
        # Unknown-parameter validation happens in the dict path of
        # normalize_schedule_spec, which every string spec flows through.
        return {"kind": "uniform", **bound, **named}
    if kind == "arrivals":
        if named:
            raise ConfigurationError(
                "schedule kind 'arrivals' takes only positional ROUNDxCOUNT "
                f"batches, got named argument(s) {sorted(named)}"
            )
        batches = []
        for part in positional:
            head, sep, tail = part.partition("x")
            if not sep:
                raise ConfigurationError(
                    f"bad arrival batch {part!r}; expected ROUNDxCOUNT "
                    "(e.g. 'arrivals:0x8,3x4')"
                )
            batches.append([head, tail])
        return {"kind": "arrivals", "batches": batches}
    if kind == "explicit":
        raise ConfigurationError(
            "schedule kind 'explicit' has no string form; pass the dict "
            'form {"kind": "explicit", "arrivals": [[round, site, unit], ...]}'
        )
    raise ConfigurationError(
        f"unknown schedule kind {kind!r}; known kinds: "
        + ", ".join(SCHEDULE_KINDS)
    )


def normalize_schedule_spec(spec: ScheduleSpec) -> Dict[str, object]:
    """Canonicalise ``spec`` to a validated, JSON-compatible
    ``{"kind": ..., <param>: ...}`` dict.

    ``None`` means the uniform default.  Raises
    :class:`ConfigurationError` naming the offending kind or parameter.
    """
    if spec is None:
        spec = {"kind": "uniform"}
    if isinstance(spec, str):
        spec = _parse_schedule_string(spec)
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"schedule spec must be None, a string, or a dict, got "
            f"{type(spec).__name__}"
        )
    if "kind" not in spec:
        raise ConfigurationError(
            "schedule spec dicts need a 'kind' key; known kinds: "
            + ", ".join(SCHEDULE_KINDS)
        )
    kind = str(spec["kind"]).strip().lower()
    if kind not in SCHEDULE_KINDS:
        raise ConfigurationError(
            f"unknown schedule kind {spec['kind']!r}; known kinds: "
            + ", ".join(SCHEDULE_KINDS)
        )
    params = {str(k).replace("-", "_"): v for k, v in spec.items() if k != "kind"}
    if kind == "uniform":
        unknown = set(params) - {"every", "start"}
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for schedule kind "
                "'uniform'; accepted: every, start"
            )
        result: Dict[str, object] = {"kind": "uniform"}
        if "every" in params:
            result["every"] = _to_int(
                params["every"], what="'every' for schedule 'uniform'", minimum=1
            )
        if "start" in params:
            result["start"] = _to_int(
                params["start"], what="'start' for schedule 'uniform'", minimum=0
            )
        return result
    if kind == "arrivals":
        unknown = set(params) - {"batches"}
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for schedule kind "
                "'arrivals'; accepted: batches"
            )
        if "batches" not in params:
            raise ConfigurationError(
                "schedule kind 'arrivals' requires parameter(s) ['batches']"
            )
        return {
            "kind": "arrivals",
            "batches": _normalize_batches(
                params["batches"], what="'batches' for schedule 'arrivals'"
            ),
        }
    # explicit
    unknown = set(params) - {"arrivals"}
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for schedule kind "
            "'explicit'; accepted: arrivals"
        )
    if "arrivals" not in params:
        raise ConfigurationError(
            "schedule kind 'explicit' requires parameter(s) ['arrivals']"
        )
    raw = params["arrivals"]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigurationError(
            "'arrivals' for schedule 'explicit' must be a non-empty list of "
            f"[round, site, unit] triples, got {raw!r}"
        )
    arrivals = []
    for triple in raw:
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            raise ConfigurationError(
                "each arrival for schedule 'explicit' must be a "
                f"[round, site, unit] triple, got {triple!r}"
            )
        arrivals.append(
            [
                _to_int(triple[0], what="arrival round", minimum=0),
                _to_int(triple[1], what="arrival site", minimum=0),
                _to_int(triple[2], what="arrival unit", minimum=1),
            ]
        )
    return {"kind": "explicit", "arrivals": arrivals}


def schedule_from_spec(n: int, t: int, spec: ScheduleSpec):
    """Materialise an :class:`~repro.core.protocol_d_dynamic.ArrivalSchedule`
    covering exactly units ``1..n`` on ``t`` sites from a schedule spec.

    Raises :class:`ConfigurationError` when the spec's unit count does
    not match ``n`` or a site is out of range - the mistakes a suite
    author actually makes.
    """
    # Imported lazily: the schedule *grammar* lives with the other spec
    # grammars, but the materialised object belongs to the protocol layer.
    from repro.core.protocol_d_dynamic import ArrivalSchedule, uniform_arrivals

    params = normalize_schedule_spec(spec)
    kind = params["kind"]
    if kind == "uniform":
        return uniform_arrivals(
            n, t, every=params.get("every", 3), start=params.get("start", 0)
        )
    if kind == "arrivals":
        batches = params["batches"]
        total = sum(count for _, count in batches)
        if total != n:
            raise ConfigurationError(
                f"schedule batches deliver {total} unit(s) but the scenario "
                f"has n={n}; counts must sum to n"
            )
        arrivals = []
        unit = 1
        for round_number, count in batches:
            for _ in range(count):
                arrivals.append((round_number, (unit - 1) % t, unit))
                unit += 1
        return ArrivalSchedule(arrivals)
    # explicit
    arrivals = [tuple(triple) for triple in params["arrivals"]]
    bad_sites = sorted({site for _, site, _ in arrivals if site >= t})
    if bad_sites:
        raise ConfigurationError(
            f"arrival site(s) {bad_sites} out of range for t={t} processes"
        )
    units = {unit for _, _, unit in arrivals}
    if units != set(range(1, n + 1)):
        raise ConfigurationError(
            f"explicit arrivals must cover exactly units 1..{n}; got "
            f"{len(units)} distinct unit(s) "
            f"spanning {min(units)}..{max(units)}"
        )
    return ArrivalSchedule(arrivals)
