"""Shared tokenizer for the declarative spec string grammar.

Both adversary specs (:mod:`repro.sim.adversary`) and delay-model specs
(:mod:`repro.sim.async_engine`) use the same surface syntax::

    KIND                      e.g.  "kill-active"
    KIND:ARG,ARG,...          e.g.  "random:5,max_action_index=25"

This module owns the ``KIND:ARG`` splitting so the two parsers cannot
drift; value *coercion* stays domain-specific (adversaries take ranges
and pid lists, delay models take numbers).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


def split_spec_string(text: str) -> Tuple[str, List[str], Dict[str, str]]:
    """Split ``"kind:a,b=c"`` into ``("kind", ["a"], {"b": "c"})``.

    Values are returned as raw strings; callers coerce them.  Named
    argument names are normalised to underscores.
    """
    head, sep, rest = text.partition(":")
    kind = head.strip().lower()
    positional: List[str] = []
    named: Dict[str, str] = {}
    if sep:
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, _, value = part.partition("=")
                named[name.strip().replace("-", "_")] = value.strip()
            else:
                positional.append(part)
    return kind, positional, named


def bind_positionals(
    kind: str, names: Tuple[str, ...], positional: List[str], *, what: str
) -> Dict[str, str]:
    """Map positional raw values onto their parameter names, raising the
    standard too-many-positionals error."""
    if len(positional) > len(names):
        raise ConfigurationError(
            f"{what} {kind!r} takes at most {len(names)} positional "
            f"argument(s) ({', '.join(names) or 'none'}); got extra "
            f"{positional[len(names)]!r}"
        )
    return dict(zip(names, positional))


def to_number(value, *, what: str) -> float:
    """Coerce a spec value to float, raising ConfigurationError (never a
    bare ValueError) on junk."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be a number, got {value!r}")
