"""Base class for simulated processes.

A process is a state machine driven by the engine.  The engine calls
:meth:`Process.on_round` whenever the process is *due*: it has undelivered
mail, or its self-declared wake round has arrived.  Between due rounds the
process is quiescent by contract, which is what allows the engine to
fast-forward over the enormous idle stretches that Protocol C's
exponential deadlines create.

Scheduling contract
-------------------

The engine schedules processes through an event index: it queries
:meth:`wake_round` once after every event that can change the answer
(construction, each :meth:`on_round` call, retirement) and caches the
result rather than polling every process every round.  Two obligations
follow for implementations:

* ``wake_round()`` must be a pure function of process state - calling it
  twice without an intervening state change must return the same value;
* state that influences ``wake_round()`` may only change inside
  ``on_round`` or the ``mark_crashed``/``mark_halted`` lifecycle hooks.
  Code that mutates such state through any other path (e.g. an external
  controller poking a process between rounds) must call
  :meth:`notify_wake_changed` afterwards so the engine can refresh its
  cached schedule entry.

Every protocol in this repository satisfies the contract naturally: their
deadlines and scripts advance only inside ``on_round``.

Crash-recover lifecycle
-----------------------

A crash is permanent by default.  Protocols that maintain a checkpoint
from which a crashed process can meaningfully rejoin opt in by setting
the class attribute :attr:`Process.supports_recovery` to ``True`` and
overriding :meth:`Process.on_recover`, which must restore the process to
its *stale* (last-checkpoint) state - never its crash-instant state.
The engine drives the rejoin through :meth:`Process.mark_recovered` when
a crash directive carried ``recover_after``; it refuses (with
``AdversaryError``) to recover a process whose class does not opt in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.sim.actions import Action, Envelope


class Process(ABC):
    """One of the ``t`` crash-prone processes of the paper's model."""

    def __init__(self, pid: int, t: int):
        self.pid = pid
        self.t = t
        self.crashed = False
        self.crash_round: Optional[int] = None
        self.halted = False
        self.halt_round: Optional[int] = None
        #: Set by the engine: called with ``pid`` when this process's
        #: schedule entry must be recomputed (see module docstring).
        self._wake_listener: Optional[Callable[[int], None]] = None

    # ---- lifecycle -------------------------------------------------

    @property
    def retired(self) -> bool:
        """Crashed or terminated - the paper's notion of a retired process."""
        return self.crashed or self.halted

    @property
    def is_active(self) -> bool:
        """Whether this process currently holds the single "active" role.

        Only meaningful for Protocols A, B and C, where the paper proves
        at most one process is active at any time; the engine's strict
        mode asserts exactly this.  Protocols without the notion return
        False.
        """
        return False

    def mark_crashed(self, round_number: int) -> None:
        self.crashed = True
        if self.crash_round is None:
            self.crash_round = round_number
        self.notify_wake_changed()

    def mark_halted(self, round_number: int) -> None:
        self.halted = True
        if self.halt_round is None:
            self.halt_round = round_number
        self.notify_wake_changed()

    #: Whether this protocol keeps a checkpoint that makes crash-recover
    #: directives meaningful.  Recovery-aware subclasses set this to True
    #: and override :meth:`on_recover`.
    supports_recovery = False

    def mark_recovered(self, round_number: int) -> None:
        """Rejoin after a ``recover_after`` crash (engine-driven).

        Clears the crash flags, asks the protocol to restore its last
        checkpoint via :meth:`on_recover`, then refreshes the engine's
        cached schedule entry.
        """
        self.crashed = False
        self.crash_round = None
        self.on_recover(round_number)
        self.notify_wake_changed()

    def on_recover(self, round_number: int) -> None:
        """Restore this process to its last checkpoint.

        Called by :meth:`mark_recovered` exactly once per rejoin, with the
        round at which the process comes back to life.  Implementations
        must rebuild *stale* state (the checkpoint, not the crash-instant
        state) and leave ``wake_round()`` consistent with it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support crash-recover faults; "
            "recovery-aware protocols must set supports_recovery = True and "
            "override on_recover()"
        )

    # ---- scheduling ------------------------------------------------

    @abstractmethod
    def wake_round(self) -> Optional[int]:
        """Next round at which this process will act *without* receiving
        any message, or ``None`` if it only reacts to messages.

        Returning a round in the past is allowed and means "as soon as
        possible"; the engine treats it as the next processed round.
        """

    @abstractmethod
    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        """Perform one round.

        ``inbox`` contains every envelope stamped before ``round_number``
        that has not been delivered yet (the engine guarantees stamps are
        strictly smaller than ``round_number``).  The returned action's
        sends are stamped ``round_number``.
        """

    def notify_wake_changed(self) -> None:
        """Tell the engine that :meth:`wake_round`'s answer (or retirement
        status) changed outside the engine-driven call points.

        The engine re-queries ``wake_round()`` only after events it
        observes; any other mutation of wake-relevant state must be
        followed by a call to this method or the process may be stepped
        too late (never too early).  Safe to call when no engine is
        attached, and idempotent.
        """
        listener = self._wake_listener
        if listener is not None:
            listener(self.pid)

    # ---- debugging -------------------------------------------------

    def state_label(self) -> str:
        """Short human-readable state tag for traces."""
        if self.crashed:
            return "crashed"
        if self.halted:
            return "halted"
        return "alive"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} pid={self.pid} {self.state_label()}>"
