"""A sound and complete crash failure detector for the asynchronous model.

The end of Section 2.1 observes that Protocol A runs unchanged in a
completely asynchronous system "equipped with an appropriate failure
detection mechanism [Chandra-Toueg]": the mechanism must eventually
inform every live process of every crash (*completeness*) and must never
report a process that has not crashed (*soundness*).

This module implements such a detector as an oracle with bounded but
adversary-controlled notification delay: when a process crashes at time
``tau``, every live process receives a suspicion event at
``tau + delay`` where ``delay`` is drawn per observer from the
configured window.  Soundness holds by construction (only actual crashes
generate suspicions; clean termination is never reported, which is what
the async takeover rule relies on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

DelayFn = Callable[[random.Random, int, int], float]
"""(rng, observer pid, crashed pid) -> notification delay."""


@dataclass(frozen=True)
class FailureDetector:
    """Configuration of the oracle failure detector."""

    min_delay: float = 1.0
    max_delay: float = 8.0
    delay_fn: DelayFn = None  # type: ignore[assignment]

    def notification_delay(
        self, rng: random.Random, observer: int, crashed: int
    ) -> float:
        if self.delay_fn is not None:
            return max(0.0, self.delay_fn(rng, observer, crashed))
        if self.max_delay <= self.min_delay:
            return self.min_delay
        return rng.uniform(self.min_delay, self.max_delay)
