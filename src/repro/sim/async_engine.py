"""Event-driven asynchronous simulator.

Used for the paper's remark (end of Section 2.1) that Protocol A needs
no synchrony beyond failure detection: here there are no rounds, message
delays are arbitrary (adversary- or distribution-controlled) but finite,
and takeovers are triggered by a sound-and-complete failure detector
rather than by deadlines.

Processes are event handlers; the engine maintains a priority queue of
timed events (message deliveries, self-scheduled wake-ups, crashes, and
failure-detector suspicions) and runs until every process has retired.

Batched delivery
----------------

Message deliveries are batched per ``(recipient, due_time)``, mirroring
the stamp-sorted mailbox design of the synchronous engine: the first
copy due at a given instant pushes one ``deliver_batch`` heap event and
later copies for the same instant append to the batch list, so the heap
holds one entry per distinct delivery instant per recipient instead of
one per message copy.  Dispatch order is *exactly* the per-copy order:
each copy keeps its own sequence number, and the batch loop yields back
to the heap whenever another queued event (a crash, a wake, another
recipient's batch) sorts before the next copy at the same instant
(``tests/test_async_equivalence.py`` diffs this against a per-copy
reference engine).

Lazy broadcast fan-out
----------------------

A packed :class:`~repro.sim.actions.Broadcast` submitted through
:meth:`AsyncContext.broadcast` (or :meth:`AsyncContext.send_batch`)
extends that batching across recipients: the engine draws each copy's
delay in ascending-recipient order (the same RNG stream as per-copy
sends), groups the copies by due instant, and schedules **one**
``deliver_bcast`` heap event per distinct due time - O(distinct
due_times) events instead of O(copies), with the payload and kind
stored once per broadcast.  Metrics are recorded with one
:meth:`Metrics.record_send_batch` call per broadcast.  Per-copy
sequence numbers and the same yield-to-heap-head rule keep global
dispatch order exactly the per-copy engine's
(``tests/test_broadcast_equivalence.py`` pins this against an engine
that expands every broadcast).

Congestion budgets
------------------

A :class:`~repro.sim.congestion.CongestionBudget` maps the synchronous
engine's per-round caps onto continuous time via unit *windows*
``[k, k + 1)``:

* **send**: each process departs at most ``send`` copies per window.  A
  copy over budget departs at the start of the next free window (the
  per-src window cursor persists, so backlogs cascade); its delay is
  drawn in the usual order and measured from the delayed departure.
* **receive**: each process absorbs at most ``receive`` copies per
  window; an over-budget copy is re-queued as a per-copy delivery at the
  start of the next window, where it competes under that window's
  budget again.  Deferral order is deterministic (fresh sequence numbers
  in arrival order).
"""

from __future__ import annotations

import heapq
import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BudgetExceeded, ConfigurationError, SimulationStalled
from repro.sim.actions import Broadcast, MessageKind, SendBatch
from repro.sim.congestion import CongestionBudget
from repro.sim.failure_detector import FailureDetector
from repro.sim.metrics import Metrics, RunResult
from repro.sim.rng import derive_rng, make_rng
from repro.sim.specs import bind_positionals, split_spec_string, to_number
from repro.work.tracker import WorkTracker

DelayModel = Callable[[random.Random, int, int], float]
"""(rng, src, dst) -> message delay."""


def uniform_delays(low: float = 0.5, high: float = 4.0) -> DelayModel:
    def model(rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(low, high)

    return model


def fixed_delays(delay: float = 1.0) -> DelayModel:
    """Every message takes exactly ``delay`` time units.

    Deterministic delays make concurrent senders' copies coincide at the
    recipient, which is the regime where per-instant delivery batching
    collapses many heap events into one.
    """

    def model(rng: random.Random, src: int, dst: int) -> float:
        return delay

    return model


# ---- declarative delay-model specs ----------------------------------------
#
# Mirrors the adversary spec grammar of ``repro.sim.adversary``: strings
# like ``"uniform:0.5,4.0"`` / ``"fixed:1.0"`` or dicts like
# ``{"kind": "uniform", "low": 0.5, "high": 4.0}``.  This is what
# :class:`repro.api.Scenario` serialises.

#: str spec, dict spec, a ready-made model callable, or None (default).
DelaySpec = Any

_DELAY_KINDS: Dict[str, Tuple[Tuple[str, ...], Callable[..., DelayModel]]] = {
    "uniform": (("low", "high"), uniform_delays),
    "fixed": (("delay",), fixed_delays),
}


def _delay_params(spec) -> Dict[str, Any]:
    if isinstance(spec, str):
        kind, positional, named = split_spec_string(spec)
        params: Dict[str, Any] = {"kind": kind}
        raw: Dict[str, Any] = dict(named)
        if kind in _DELAY_KINDS:
            raw.update(
                bind_positionals(
                    kind, _DELAY_KINDS[kind][0], positional, what="delay model"
                )
            )
    elif isinstance(spec, dict):
        if "kind" not in spec:
            raise ConfigurationError(
                "delay model spec dicts need a 'kind' key; known kinds: "
                + ", ".join(sorted(_DELAY_KINDS))
            )
        params = {"kind": str(spec["kind"]).strip().lower()}
        raw = {k: v for k, v in spec.items() if k != "kind"}
    else:
        raise ConfigurationError(
            f"delay model spec must be None, a string, a dict, or a callable, "
            f"got {type(spec).__name__}"
        )
    kind = params["kind"]
    if kind not in _DELAY_KINDS:
        raise ConfigurationError(
            f"unknown delay model {kind!r}; known kinds: "
            + ", ".join(sorted(_DELAY_KINDS))
        )
    accepted = _DELAY_KINDS[kind][0]
    unknown = set(raw) - set(accepted)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for delay model "
            f"{kind!r}; accepted: {', '.join(accepted)}"
        )
    for name, value in raw.items():
        params[name] = to_number(
            value, what=f"delay model {kind!r} parameter {name!r}"
        )
    return params


def normalize_delay_spec(spec: DelaySpec) -> Optional[Dict[str, Any]]:
    """Canonicalise a delay spec to ``None`` or a JSON-compatible dict."""
    if spec is None:
        return None
    if callable(spec):
        raise ConfigurationError(
            "a delay-model callable is not serializable; pass a string or "
            "dict spec instead (known kinds: "
            + ", ".join(sorted(_DELAY_KINDS))
            + ")"
        )
    return _delay_params(spec)


def delay_model_from_spec(spec: DelaySpec) -> DelayModel:
    """Build a delay model from a spec; ``None`` yields the default
    :func:`uniform_delays`, a callable passes through unchanged."""
    if spec is None:
        return uniform_delays()
    if callable(spec):
        return spec
    params = _delay_params(spec)
    names, factory = _DELAY_KINDS[params["kind"]]
    return factory(**{name: params[name] for name in names if name in params})


@dataclass(order=True, slots=True)
class _Event:
    time: float
    seq: int
    # deliver_batch | deliver (oracle path) | wake | crash | suspect
    kind: str = field(compare=False)
    pid: int = field(compare=False)
    payload: Any = field(compare=False, default=None)


class AsyncContext:
    """Handler-facing API: everything a process may do during an event."""

    def __init__(self, engine: "AsyncEngine", pid: int):
        self._engine = engine
        self._pid = pid

    @property
    def now(self) -> float:
        return self._engine.now

    def send(self, dst: int, payload: Any, kind: MessageKind) -> None:
        self._engine._send(self._pid, dst, payload, kind)

    def broadcast(self, bcast: Broadcast) -> None:
        """Submit one packed broadcast (kept un-expanded by the engine)."""
        self._engine._broadcast(self._pid, bcast)

    def send_batch(self, batch: SendBatch) -> None:
        """Submit a send batch in either spelling: a packed
        :class:`Broadcast` stays packed, a legacy ``List[Send]`` goes
        through the per-copy path."""
        if isinstance(batch, Broadcast):
            self._engine._broadcast(self._pid, batch)
        else:
            for send in batch:
                self._engine._send(self._pid, send.dst, send.payload, send.kind)

    def perform(self, unit: int) -> None:
        self._engine._perform(self._pid, unit)

    def wake_in(self, delay: float, tag: Any = None) -> None:
        self._engine._schedule(delay, "wake", self._pid, tag)

    def halt(self) -> None:
        self._engine._halt(self._pid)


class AsyncProcess(ABC):
    """Base class for asynchronous event-driven processes."""

    def __init__(self, pid: int, t: int):
        self.pid = pid
        self.t = t
        self.crashed = False
        self.halted = False

    @property
    def retired(self) -> bool:
        return self.crashed or self.halted

    def on_start(self, ctx: AsyncContext) -> None:
        """Called once at time 0."""

    @abstractmethod
    def on_message(
        self, ctx: AsyncContext, src: int, payload: Any, kind: MessageKind
    ) -> None:
        ...

    def on_wake(self, ctx: AsyncContext, tag: Any) -> None:
        """A self-scheduled timer fired."""

    def on_suspect(self, ctx: AsyncContext, crashed_pid: int) -> None:
        """The failure detector reports that ``crashed_pid`` has crashed."""


class AsyncEngine:
    """Priority-queue event loop with an oracle failure detector."""

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        *,
        tracker: Optional[WorkTracker] = None,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        failure_detector: Optional[FailureDetector] = None,
        crash_times: Optional[Dict[int, float]] = None,
        max_events: int = 2_000_000,
        congestion: Optional[CongestionBudget] = None,
    ):
        self.processes: List[AsyncProcess] = list(processes)
        self.t = len(self.processes)
        self.tracker = tracker
        self.rng = make_rng(seed)
        self.delay_rng = derive_rng(self.rng, "delays")
        self.fd_rng = derive_rng(self.rng, "failure-detector")
        self.delay_model = delay_model or uniform_delays()
        self.failure_detector = failure_detector or FailureDetector()
        self.max_events = max_events
        self.congestion = congestion
        # Congestion window cursors: src -> (window, copies departed) and
        # dst -> (window, copies absorbed); see module docstring.
        self._send_windows: Dict[int, Tuple[int, int]] = {}
        self._recv_windows: Dict[int, Tuple[int, int]] = {}
        self.metrics = Metrics()
        self.now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        #: (dst, due_time) -> [(seq, src, payload, kind), ...] in send order.
        self._batches: Dict[Tuple[int, float], List[Tuple[int, int, Any, MessageKind]]] = {}
        for pid, crash_time in sorted((crash_times or {}).items()):
            self._schedule_abs(crash_time, "crash", pid, None)

    # ---- scheduling primitives ------------------------------------------------

    def _schedule(self, delay: float, kind: str, pid: int, payload: Any) -> None:
        self._schedule_abs(self.now + max(0.0, delay), kind, pid, payload)

    def _schedule_abs(self, time: float, kind: str, pid: int, payload: Any) -> None:
        heapq.heappush(self._heap, _Event(time, next(self._seq), kind, pid, payload))

    def _departure(self, src: int) -> float:
        """Send-budget departure instant for one copy from ``src``.

        Consumes one slot in the earliest window with capacity at or
        after ``now``; the copy departs immediately when that window is
        the current one, else at the start of the later window.
        """
        budget = self.congestion.send
        base = int(self.now)
        window, used = self._send_windows.get(src, (base, 0))
        if window < base:
            window, used = base, 0
        while used >= budget:
            window += 1
            used = 0
        self._send_windows[src] = (window, used + 1)
        return self.now if window == base else float(window)

    def _admit(self, dst: int) -> bool:
        """Consume one receive-budget slot for ``dst`` in the current
        window; False means the copy must be retried next window."""
        budget = self.congestion.receive
        window = int(self.now)
        slot, used = self._recv_windows.get(dst, (window, 0))
        if slot < window:
            slot, used = window, 0
        if used < budget:
            self._recv_windows[dst] = (window, used + 1)
            return True
        return False

    def _send(self, src: int, dst: int, payload: Any, kind: MessageKind) -> None:
        from repro.sim.actions import Envelope

        envelope = Envelope(
            src=src, dst=dst, payload=payload, kind=kind, sent_round=int(self.now)
        )
        self.metrics.record_send(envelope)
        delay = max(0.0, self.delay_model(self.delay_rng, src, dst))
        congestion = self.congestion
        if congestion is not None and congestion.send is not None:
            due = self._departure(src) + delay
        else:
            due = self.now + delay
        key = (dst, due)
        batch = self._batches.get(key)
        seq = next(self._seq)
        if batch is None:
            self._batches[key] = [(seq, src, payload, kind)]
            heapq.heappush(self._heap, _Event(due, seq, "deliver_batch", dst, None))
        else:
            batch.append((seq, src, payload, kind))

    def _broadcast(self, src: int, bcast: Broadcast) -> None:
        """Schedule one packed broadcast: per-copy delay draws (ascending
        recipients, same RNG stream as :meth:`_send`), then one
        ``deliver_bcast`` heap event per *distinct due instant* instead
        of one event per copy.  Each copy keeps its own sequence number,
        so dispatch interleaves with every other queued event exactly as
        the expanded per-copy schedule would."""
        count = len(bcast)
        if count == 0:
            return
        self.metrics.record_send_batch(src, {bcast.kind: count}, count, int(self.now))
        delay_model = self.delay_model
        delay_rng = self.delay_rng
        now = self.now
        take_seq = self._seq
        congestion = self.congestion
        budgeted = congestion is not None and congestion.send is not None
        by_due: Dict[float, List[Tuple[int, int]]] = {}
        bits = bcast.recipients.to_int()
        while bits:
            low = bits & -bits
            bits ^= low
            dst = low.bit_length() - 1
            delay = max(0.0, delay_model(delay_rng, src, dst))
            due = (self._departure(src) if budgeted else now) + delay
            seq = next(take_seq)
            copies = by_due.get(due)
            if copies is None:
                by_due[due] = [(seq, dst)]
            else:
                copies.append((seq, dst))
        payload, kind = bcast.payload, bcast.kind
        for due, copies in by_due.items():
            first_seq, first_dst = copies[0]
            record = (src, payload, kind, copies)
            heapq.heappush(
                self._heap,
                _Event(due, first_seq, "deliver_bcast", first_dst, (record, 0)),
            )

    def _perform(self, pid: int, unit: int) -> None:
        if self.tracker is not None:
            self.tracker.record(pid, unit, int(self.now))
        self.metrics.record_work(pid, unit, int(self.now))

    def _halt(self, pid: int) -> None:
        process = self.processes[pid]
        if not process.retired:
            process.halted = True
            self.metrics.record_retire(pid, int(self.now))

    # ---- the event loop ----------------------------------------------------------

    def run(self) -> RunResult:
        for process in self.processes:
            if not process.retired:
                process.on_start(AsyncContext(self, process.pid))
        events = 0
        while self._heap and not self._all_retired():
            event = heapq.heappop(self._heap)
            self.now = max(self.now, event.time)
            events += self._dispatch(event)
            if events > self.max_events:
                raise BudgetExceeded(f"exceeded max_events={self.max_events}")
        if not self._all_retired() and self._any_live():
            raise SimulationStalled(
                "event queue drained with live asynchronous processes remaining"
            )
        return self._result()

    def _dispatch(self, event: _Event) -> int:
        """Handle one popped event; return how many events it consumed
        against ``max_events`` (a delivery batch counts one per copy)."""
        process = self.processes[event.pid]
        if event.kind == "crash":
            if not process.retired:
                process.crashed = True
                self.metrics.record_crash(event.pid, int(self.now))
                for observer in self.processes:
                    if observer.retired or observer.pid == event.pid:
                        continue
                    delay = self.failure_detector.notification_delay(
                        self.fd_rng, observer.pid, event.pid
                    )
                    self._schedule(delay, "suspect", observer.pid, event.pid)
            return 1
        if event.kind == "deliver_batch":
            return self._deliver_batch(event)
        if event.kind == "deliver_bcast":
            return self._deliver_bcast(event)
        if process.retired:
            return 1
        ctx = AsyncContext(self, process.pid)
        if event.kind == "deliver":
            # Per-copy path: the reference (oracle) engine in
            # tests/test_async_equivalence.py, and re-queued over-budget
            # copies under a receive budget.
            congestion = self.congestion
            if (
                congestion is not None
                and congestion.receive is not None
                and not self._admit(process.pid)
            ):
                self._schedule_abs(
                    float(int(self.now) + 1), "deliver", process.pid, event.payload
                )
                return 1
            src, payload, kind = event.payload
            process.on_message(ctx, src, payload, kind)
        elif event.kind == "wake":
            process.on_wake(ctx, event.payload)
        elif event.kind == "suspect":
            process.on_suspect(ctx, event.payload)
        return 1

    def _deliver_batch(self, event: _Event) -> int:
        """Deliver every copy batched at ``(event.pid, event.time)``.

        Copies are handed over in send (sequence) order; if any other
        queued event sorts between two copies at the same instant, the
        undelivered suffix is re-pushed under the next copy's sequence
        number so global (time, seq) dispatch order is exactly the
        per-copy engine's.
        """
        time = event.time
        key = (event.pid, time)
        batch = self._batches.get(key)
        if batch is None:  # pragma: no cover - defensive; keys are unique
            return 1
        process = self.processes[event.pid]
        heap = self._heap
        ctx = AsyncContext(self, event.pid)
        congestion = self.congestion
        guarded = congestion is not None and congestion.receive is not None
        delivered = 0
        # A re-pushed batch event carries its resume index; the batch list
        # is append-only while in flight, so indices stay valid.
        index = event.payload or 0
        while index < len(batch):
            seq, src, payload, kind = batch[index]
            if heap:
                head = heap[0]
                if head.time < time or (head.time == time and head.seq < seq):
                    heapq.heappush(
                        heap, _Event(time, seq, "deliver_batch", event.pid, index)
                    )
                    return max(delivered, 1)
            index += 1
            delivered += 1
            if not process.retired:
                if guarded and not self._admit(event.pid):
                    self._schedule_abs(
                        float(int(time) + 1),
                        "deliver",
                        event.pid,
                        (src, payload, kind),
                    )
                else:
                    process.on_message(ctx, src, payload, kind)
        del self._batches[key]
        return max(delivered, 1)

    def _deliver_bcast(self, event: _Event) -> int:
        """Deliver the copies of one broadcast that share a due instant.

        The same contract as :meth:`_deliver_batch`, with the recipient
        varying per copy: copies are handed over in sequence order, and
        the undelivered suffix is re-pushed under the next copy's
        sequence number whenever any other queued event sorts first.
        """
        time = event.time
        record, index = event.payload
        src, payload, kind, copies = record
        heap = self._heap
        processes = self.processes
        congestion = self.congestion
        guarded = congestion is not None and congestion.receive is not None
        delivered = 0
        while index < len(copies):
            seq, dst = copies[index]
            if heap:
                head = heap[0]
                if head.time < time or (head.time == time and head.seq < seq):
                    heapq.heappush(
                        heap, _Event(time, seq, "deliver_bcast", dst, (record, index))
                    )
                    return max(delivered, 1)
            index += 1
            delivered += 1
            process = processes[dst]
            if not process.retired:
                if guarded and not self._admit(dst):
                    self._schedule_abs(
                        float(int(time) + 1), "deliver", dst, (src, payload, kind)
                    )
                else:
                    process.on_message(AsyncContext(self, dst), src, payload, kind)
        return max(delivered, 1)

    # ---- results ---------------------------------------------------------------------

    def _all_retired(self) -> bool:
        return all(p.retired for p in self.processes)

    def _any_live(self) -> bool:
        return any(not p.retired for p in self.processes)

    def _result(self) -> RunResult:
        survivors = sum(1 for p in self.processes if not p.crashed)
        halted = sum(1 for p in self.processes if p.halted)
        completed = self.tracker.all_done() if self.tracker is not None else True
        return RunResult(
            completed=completed, survivors=survivors, halted=halted, metrics=self.metrics
        )
