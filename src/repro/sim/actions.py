"""Message and per-round action types for the synchronous simulator.

The paper's model lets a process, in one time unit, perform one unit of
work and one round of communication.  A round action therefore carries at
most one work unit plus a batch of sends (the batch models one broadcast;
a process that crashes mid-round delivers an adversary-chosen subset of
the batch, which is exactly the paper's "if process 0 crashes in the
middle of a broadcast, we assume only that some subset of the processes
receive the message").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, List, NamedTuple, Optional, Tuple


class MessageKind(str, Enum):
    """Classification of messages for accounting and reporting.

    Every kind is counted in the total message complexity; the split lets
    the benchmark tables show *where* a protocol spends its messages
    (e.g. Protocol C's poll traffic vs its ordinary reports).
    """

    PARTIAL_CHECKPOINT = "partial_checkpoint"  # Protocol A/B: (c) to own group
    FULL_CHECKPOINT = "full_checkpoint"        # Protocol A/B: (c, g)
    GO_AHEAD = "go_ahead"                      # Protocol B polling
    POLL = "poll"                              # Protocol C "are you alive?"
    POLL_REPLY = "poll_reply"                  # Protocol C liveness reply
    ORDINARY = "ordinary"                      # Protocol C knowledge transfer
    AGREEMENT = "agreement"                    # Protocol D phase broadcasts
    VALUE = "value"                            # Byzantine agreement informs
    CONTROL = "control"                        # anything else (baselines etc.)


class Send(NamedTuple):
    """An outgoing message requested by a process in the current round.

    A ``NamedTuple`` rather than a frozen dataclass: one is allocated per
    point-to-point copy of every broadcast, so construction cost is on
    the simulator's hottest path (Protocol D's agreement phases build
    ``Theta(t^2)`` of these per round).
    """

    dst: int
    payload: Any
    kind: MessageKind = MessageKind.CONTROL


class Envelope(NamedTuple):
    """A message in flight (or delivered).

    ``sent_round`` is the stamp round: the envelope is visible to the
    recipient's decisions strictly after ``sent_round``.  A ``NamedTuple``
    for the same hot-path reason as :class:`Send`.
    """

    src: int
    dst: int
    payload: Any
    kind: MessageKind
    sent_round: int


@dataclass
class Action:
    """Everything a process does in one round.

    Attributes:
        work: work unit performed this round (1-based), or ``None``.
        sends: messages sent this round; modelled as one broadcast batch.
        halt: if true the process terminates (retires) at the end of the
            round, after its work and sends take effect.
    """

    work: Optional[int] = None
    sends: List[Send] = field(default_factory=list)
    halt: bool = False

    @classmethod
    def idle(cls) -> "Action":
        """An action that does nothing (the process merely waits)."""
        return cls()

    @classmethod
    def halting(cls, sends: Optional[Iterable[Send]] = None) -> "Action":
        """Terminate, optionally after a final batch of sends."""
        return cls(sends=list(sends or ()), halt=True)

    def is_idle(self) -> bool:
        return self.work is None and not self.sends and not self.halt


def broadcast(
    dsts: Iterable[int], payload: Any, kind: MessageKind
) -> List[Send]:
    """Build one broadcast batch: the same payload to every destination."""
    return [Send(dst, payload, kind) for dst in dsts]


def summarize_sends(sends: Iterable[Send]) -> Tuple[int, ...]:
    """Destinations of a send batch, for traces and tests."""
    return tuple(send.dst for send in sends)
