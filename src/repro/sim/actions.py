"""Message and per-round action types for the synchronous simulator.

The paper's model lets a process, in one time unit, perform one unit of
work and one round of communication.  A round action therefore carries at
most one work unit plus one *send batch* (the batch models one broadcast;
a process that crashes mid-round delivers an adversary-chosen subset of
the batch, which is exactly the paper's "if process 0 crashes in the
middle of a broadcast, we assume only that some subset of the processes
receive the message").

Send batches come in two spellings:

* :class:`Broadcast` - the packed form: one shared payload/kind plus a
  bitset of recipients.  This is what every protocol in the repository
  emits and what both engines keep *un-expanded* end to end (one metrics
  record per batch, one shared envelope per broadcast, partial delivery
  as a recipients-subset).  Protocol D's agreement phases send Theta(t)
  identical copies per process per round, so not materialising the
  copies is the hottest-path win of the whole simulator.
* ``List[Send]`` - the legacy per-copy form, kept as the compatibility
  path for out-of-tree protocols and for batches that genuinely mix
  payloads or kinds (Protocol C's poll replies).  The engine auto-packs
  a uniform, ascending legacy list back into a :class:`Broadcast` at
  commit time, so both spellings take the shared-envelope fast path and
  render identically in metrics, traces and :func:`summarize_sends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.sim.bitset import FrozenIntBitset, IntBitset, _BitsetBase


class MessageKind(str, Enum):
    """Classification of messages for accounting and reporting.

    Every kind is counted in the total message complexity; the split lets
    the benchmark tables show *where* a protocol spends its messages
    (e.g. Protocol C's poll traffic vs its ordinary reports).
    """

    PARTIAL_CHECKPOINT = "partial_checkpoint"  # Protocol A/B: (c) to own group
    FULL_CHECKPOINT = "full_checkpoint"        # Protocol A/B: (c, g)
    GO_AHEAD = "go_ahead"                      # Protocol B polling
    POLL = "poll"                              # Protocol C "are you alive?"
    POLL_REPLY = "poll_reply"                  # Protocol C liveness reply
    ORDINARY = "ordinary"                      # Protocol C knowledge transfer
    AGREEMENT = "agreement"                    # Protocol D phase broadcasts
    VALUE = "value"                            # Byzantine agreement informs
    CONTROL = "control"                        # anything else (baselines etc.)


class Send(NamedTuple):
    """An outgoing message requested by a process in the current round.

    The per-copy spelling: one is allocated per point-to-point copy of a
    legacy (list-form) batch, and lazily when a :class:`Broadcast` is
    iterated for compatibility (adversary inspection, tests).
    """

    dst: int
    payload: Any
    kind: MessageKind = MessageKind.CONTROL


class Envelope(NamedTuple):
    """A message in flight (or delivered).

    ``sent_round`` is the stamp round: the envelope is visible to the
    recipient's decisions strictly after ``sent_round``.  Broadcast
    deliveries use the structurally identical :class:`EnvelopeView`
    (same five attributes, payload storage shared per broadcast).
    """

    src: int
    dst: int
    payload: Any
    kind: MessageKind
    sent_round: int


class SharedEnvelope:
    """The per-broadcast shared half of a delivered broadcast message.

    One instance exists per committed :class:`Broadcast`; every live
    recipient's mailbox holds an :class:`EnvelopeView` onto it instead
    of a fresh five-field tuple.
    """

    __slots__ = ("src", "payload", "kind", "sent_round")

    def __init__(self, src: int, payload: Any, kind: MessageKind, sent_round: int):
        self.src = src
        self.payload = payload
        self.kind = kind
        self.sent_round = sent_round


class EnvelopeView:
    """A recipient's view onto a :class:`SharedEnvelope`.

    Compatible with :class:`Envelope` beyond duck typing: the same five
    read-only attributes (``src``, ``dst``, ``payload``, ``kind``,
    ``sent_round``), plus the tuple protocol a ``NamedTuple`` envelope
    supports - field-order iteration/unpacking, indexing, ``len``,
    equality (including against :class:`Envelope` instances and plain
    tuples), ordering and hashing all behave as if the view *were* the
    corresponding five-tuple.  ``src``/``kind`` read through the shared
    record; ``sent_round`` and ``payload`` are mirrored into slots
    (references, not copies) because they are what every mailbox drain,
    inbox sort and protocol fold touches repeatedly.
    """

    __slots__ = ("_shared", "dst", "payload", "sent_round")

    def __init__(self, shared: SharedEnvelope, dst: int):
        self._shared = shared
        self.dst = dst
        self.payload = shared.payload
        self.sent_round = shared.sent_round

    @property
    def src(self) -> int:
        return self._shared.src

    @property
    def kind(self) -> MessageKind:
        return self._shared.kind

    # ---- tuple protocol (Envelope compatibility) ---------------------

    def _as_tuple(self) -> tuple:
        shared = self._shared
        return (shared.src, self.dst, self.payload, shared.kind, self.sent_round)

    def __iter__(self):
        return iter(self._as_tuple())

    def __len__(self) -> int:
        return 5

    def __getitem__(self, index):
        return self._as_tuple()[index]

    def __hash__(self) -> int:
        return hash(self._as_tuple())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EnvelopeView):
            return self._as_tuple() == other._as_tuple()
        if isinstance(other, tuple):
            return self._as_tuple() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __lt__(self, other):
        return self._as_tuple() < (
            other._as_tuple() if isinstance(other, EnvelopeView) else other
        )

    def __le__(self, other):
        return self._as_tuple() <= (
            other._as_tuple() if isinstance(other, EnvelopeView) else other
        )

    def __gt__(self, other):
        return self._as_tuple() > (
            other._as_tuple() if isinstance(other, EnvelopeView) else other
        )

    def __ge__(self, other):
        return self._as_tuple() >= (
            other._as_tuple() if isinstance(other, EnvelopeView) else other
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shared = self._shared
        return (
            f"EnvelopeView(src={shared.src}, dst={self.dst}, "
            f"payload={shared.payload!r}, kind={shared.kind!r}, "
            f"sent_round={shared.sent_round})"
        )


class Broadcast:
    """One shared-payload broadcast: ``payload``/``kind`` once, recipients
    as a packed bitset.

    The wire-format contract (see ``docs/protocols.md``): a broadcast is
    fully described by ``(recipients, payload, kind)``; its observable
    behaviour - metrics, traces, mailbox contents - is *defined* as that
    of the expanded ``[Send(d, payload, kind) for d in recipients]``
    list with recipients in ascending pid order.  Partial delivery
    (crash mid-broadcast) is recipients-subset selection via
    :meth:`restrict`, never per-copy re-allocation.

    Sequence-compatible for inspection: ``len``, truthiness, ascending
    iteration yielding :class:`Send` copies, and indexing.  Hot paths
    should use :attr:`recipients` / :meth:`dsts` instead of iterating
    ``Send`` objects into existence.
    """

    __slots__ = ("recipients", "payload", "kind")

    def __init__(
        self,
        recipients: Union[_BitsetBase, Iterable[int]],
        payload: Any,
        kind: MessageKind,
    ):
        if isinstance(recipients, _BitsetBase):
            recipients = FrozenIntBitset(recipients.to_int())
        else:
            recipients = FrozenIntBitset.from_iterable(recipients)
        self.recipients: FrozenIntBitset = recipients
        self.payload = payload
        self.kind = kind

    # ---- sequence compatibility (the expanded-list contract) ---------

    def __len__(self) -> int:
        return len(self.recipients)

    def __bool__(self) -> bool:
        return bool(self.recipients)

    def __iter__(self) -> Iterator[Send]:
        payload, kind = self.payload, self.kind
        for dst in self.recipients:
            yield Send(dst, payload, kind)

    def __getitem__(self, index):
        selected = self.dsts()[index]
        if isinstance(index, slice):
            return [Send(dst, self.payload, self.kind) for dst in selected]
        return Send(selected, self.payload, self.kind)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Broadcast):
            return (
                self.recipients == other.recipients
                and self.payload == other.payload
                and self.kind == other.kind
            )
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Broadcast({set(self.recipients) or '{}'}, "
            f"{self.payload!r}, {self.kind!r})"
        )

    # ---- subset / remap (crash semantics, protocol embedding) --------

    def dsts(self) -> Tuple[int, ...]:
        """Recipient pids, ascending (the expanded batch's dst order)."""
        return tuple(self.recipients)

    def restrict(self, keep: Union[_BitsetBase, Iterable[int]]) -> "Broadcast":
        """The sub-broadcast delivered to ``recipients & keep``."""
        if not isinstance(keep, _BitsetBase):
            keep = FrozenIntBitset.from_iterable(keep)
        return Broadcast(self.recipients & keep, self.payload, self.kind)

    def remap(self, pid_of: Sequence[int]) -> "Broadcast":
        """Translate every recipient ``d`` to ``pid_of[d]`` (used when a
        protocol embeds another over a rank-compressed pid space)."""
        return Broadcast(
            IntBitset.from_iterable(pid_of[dst] for dst in self.recipients),
            self.payload,
            self.kind,
        )


#: What :attr:`Action.sends` holds: the packed or the legacy spelling.
SendBatch = Union[Broadcast, List[Send]]


def pack_sends(sends: SendBatch) -> Optional[Broadcast]:
    """Pack a legacy list into a :class:`Broadcast` when that is exactly
    equivalent: uniform payload identity and kind, strictly ascending
    destinations (so trace order is preserved).  Returns ``None`` when
    the batch genuinely needs the per-copy path; a :class:`Broadcast`
    passes through unchanged."""
    if isinstance(sends, Broadcast):
        return sends
    if not sends:
        return None
    first = sends[0]
    payload, kind = first.payload, first.kind
    mask = 0
    last = -1
    for send in sends:
        dst = send.dst
        if dst <= last or send.payload is not payload or send.kind is not kind:
            return None
        last = dst
        mask |= 1 << dst
    return Broadcast(FrozenIntBitset(mask), payload, kind)


def as_send_list(sends: SendBatch) -> List[Send]:
    """The legacy per-copy spelling of either batch form (expanding a
    :class:`Broadcast` into ascending ``Send`` copies)."""
    if isinstance(sends, Broadcast):
        return list(sends)
    return sends


def iter_dsts(sends: SendBatch) -> Iterator[int]:
    """Destinations of a batch in committed order, without materialising
    ``Send`` copies for the packed spelling."""
    if isinstance(sends, Broadcast):
        return iter(sends.recipients)
    return (send.dst for send in sends)


@dataclass
class Action:
    """Everything a process does in one round.

    Attributes:
        work: work unit performed this round (1-based), or ``None``.
        sends: this round's send batch - a packed :class:`Broadcast` or
            a legacy ``List[Send]`` (one broadcast either way).
        halt: if true the process terminates (retires) at the end of the
            round, after its work and sends take effect.
    """

    work: Optional[int] = None
    sends: SendBatch = field(default_factory=list)
    halt: bool = False

    @classmethod
    def idle(cls) -> "Action":
        """An action that does nothing (the process merely waits)."""
        return cls()

    @classmethod
    def halting(cls, sends: Optional[Union[Broadcast, Iterable[Send]]] = None) -> "Action":
        """Terminate, optionally after a final send batch."""
        if isinstance(sends, Broadcast):
            return cls(sends=sends, halt=True)
        return cls(sends=list(sends or ()), halt=True)

    def is_idle(self) -> bool:
        return self.work is None and not self.sends and not self.halt


def broadcast(
    dsts: Union[_BitsetBase, Iterable[int]], payload: Any, kind: MessageKind
) -> Broadcast:
    """Build one packed broadcast batch: the same payload to every
    destination.  (Pre-broadcast-object code received an expanded
    ``List[Send]`` here; :class:`Broadcast` is sequence-compatible, and
    the engines treat the two spellings identically.)"""
    return Broadcast(dsts, payload, kind)


def summarize_sends(sends: SendBatch) -> Tuple[int, ...]:
    """Destinations of a send batch, for traces and tests.

    Renders identically for the packed and the legacy spelling of the
    same broadcast (ascending destinations either way).
    """
    return tuple(iter_dsts(sends))
