"""Accounting for the paper's complexity measures.

The paper charges three quantities - work (unit executions with
multiplicity), messages (each point-to-point copy of a broadcast counts),
and time (rounds until every process has retired) - plus their sum,
*effort* = work + messages.  This module tallies all of them, with
per-kind and per-process breakdowns so the benchmark tables can show not
just totals but where each protocol spends.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.actions import Envelope, MessageKind


@dataclass
class Metrics:
    """Mutable tally of one simulation run."""

    work_total: int = 0
    messages_total: int = 0
    work_by_unit: Counter = field(default_factory=Counter)
    work_by_process: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    messages_by_process: Counter = field(default_factory=Counter)
    crashes: int = 0
    recoveries: int = 0            # crash-recover rejoins (see sim.crashes)
    rounds: int = 0                # last round in which anything happened
    retire_round: int = 0          # round by which every process retired
    activations: int = 0           # times a process became active (A/B/C)
    #: The Kanellakis-Shvartsman measure discussed in Section 1.1: the sum
    #: over rounds of the number of non-faulty processes, i.e. each process
    #: is charged for every round up to its retirement *whether or not it
    #: expends effort*.  The paper argues against charging idle rounds -
    #: comparing this column with `effort` makes the §1.1 point measurable.
    available_processor_steps: int = 0

    # ---- recording -------------------------------------------------

    def record_work(self, pid: int, unit: int, round_number: int) -> None:
        self.work_total += 1
        self.work_by_unit[unit] += 1
        self.work_by_process[pid] += 1
        self.rounds = max(self.rounds, round_number)

    def record_send(self, envelope: Envelope) -> None:
        self.messages_total += 1
        self.messages_by_kind[envelope.kind] += 1
        self.messages_by_process[envelope.src] += 1
        self.rounds = max(self.rounds, envelope.sent_round)

    def record_send_fast(self, src: int, kind: MessageKind, round_number: int) -> None:
        """Count one send without materialising an :class:`Envelope`.

        Observationally identical to :meth:`record_send`; used by the
        engine's hot path, where the envelope object is only built when a
        live recipient actually stores it.
        """
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_by_process[src] += 1
        if round_number > self.rounds:
            self.rounds = round_number

    def record_send_batch(
        self,
        src: int,
        kind_counts: Dict[MessageKind, int],
        count: int,
        round_number: int,
    ) -> None:
        """Count one broadcast batch of ``count`` sends from ``src``.

        ``kind_counts`` maps each message kind in the batch to its
        multiplicity (summing to ``count``).  Equivalent to ``count``
        calls of :meth:`record_send_fast` but with per-batch instead of
        per-copy bookkeeping overhead.  This is the single accounting
        call both engines make per packed :class:`Broadcast` (a
        one-entry ``kind_counts``), and what the legacy mixed-kind list
        path aggregates into - the paper's measure still charges every
        point-to-point copy, only the bookkeeping is batched.
        """
        self.messages_total += count
        self.messages_by_process[src] += count
        by_kind = self.messages_by_kind
        for kind, kind_count in kind_counts.items():
            by_kind[kind] += kind_count
        if round_number > self.rounds:
            self.rounds = round_number

    def record_crash(self, pid: int, round_number: int) -> None:
        self.crashes += 1
        self.retire_round = max(self.retire_round, round_number)

    def record_recovery(self, pid: int, round_number: int) -> None:
        self.recoveries += 1
        self.rounds = max(self.rounds, round_number)

    def record_retire(self, pid: int, round_number: int) -> None:
        self.retire_round = max(self.retire_round, round_number)

    def record_activation(self, pid: int, round_number: int) -> None:
        self.activations += 1
        self.rounds = max(self.rounds, round_number)

    # ---- derived measures -------------------------------------------

    @property
    def effort(self) -> int:
        """The paper's effort measure: work plus messages."""
        return self.work_total + self.messages_total

    def redundant_work(self) -> int:
        """Units executed beyond the first execution of each unit."""
        return sum(count - 1 for count in self.work_by_unit.values() if count > 1)

    def distinct_units_done(self) -> int:
        return len(self.work_by_unit)

    def messages_of(self, kind: MessageKind) -> int:
        return self.messages_by_kind.get(kind, 0)

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by tables, benches and EXPERIMENTS.md."""
        return {
            "work": self.work_total,
            "messages": self.messages_total,
            "effort": self.effort,
            "rounds": self.retire_round,
            "redundant_work": self.redundant_work(),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "activations": self.activations,
            "available_processor_steps": self.available_processor_steps,
            "messages_by_kind": {
                kind.value: count for kind, count in sorted(self.messages_by_kind.items())
            },
        }


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated execution.

    Attributes:
        completed: every work unit was performed at least once.
        survivors: number of processes that never crashed (they may have
            terminated cleanly).
        metrics: the full accounting tally.
        halted: number of processes that terminated cleanly.
        stalled: the run ended because nothing could make progress (only
            possible when every process crashed - otherwise the engine
            raises ``SimulationStalled``).
        config: echo of the declarative scenario that produced this run
            (set by :meth:`repro.api.Scenario.run`; ``None`` for direct
            engine invocations).
    """

    completed: bool
    survivors: int
    halted: int
    metrics: Metrics
    stalled: bool = False
    note: Optional[str] = None
    config: Optional[Dict[str, object]] = None

    @property
    def effort(self) -> int:
        return self.metrics.effort

    def summary(self) -> Dict[str, object]:
        data = dict(self.metrics.as_dict())
        data.update(
            completed=self.completed, survivors=self.survivors, halted=self.halted
        )
        return data

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible report: completion, accounting, config echo.

        This is what ``python -m repro run --json`` prints and what the
        benchmark/CI tooling consumes instead of scraping tables.
        """
        payload: Dict[str, object] = {
            "completed": self.completed,
            "survivors": self.survivors,
            "halted": self.halted,
            "stalled": self.stalled,
            "metrics": self.metrics.as_dict(),
        }
        if self.note is not None:
            payload["note"] = self.note
        if self.config is not None:
            payload["config"] = self.config
        return payload
