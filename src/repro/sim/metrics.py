"""Accounting for the paper's complexity measures.

The paper charges three quantities - work (unit executions with
multiplicity), messages (each point-to-point copy of a broadcast counts),
and time (rounds until every process has retired) - plus their sum,
*effort* = work + messages.  This module tallies all of them, with
per-kind and per-process breakdowns so the benchmark tables can show not
just totals but where each protocol spends.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.actions import Envelope, MessageKind


@dataclass
class Metrics:
    """Mutable tally of one simulation run."""

    work_total: int = 0
    messages_total: int = 0
    work_by_unit: Counter = field(default_factory=Counter)
    work_by_process: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    messages_by_process: Counter = field(default_factory=Counter)
    crashes: int = 0
    recoveries: int = 0            # crash-recover rejoins (see sim.crashes)
    rounds: int = 0                # last round in which anything happened
    retire_round: int = 0          # round by which every process retired
    activations: int = 0           # times a process became active (A/B/C)
    #: The Kanellakis-Shvartsman measure discussed in Section 1.1: the sum
    #: over rounds of the number of non-faulty processes, i.e. each process
    #: is charged for every round up to its retirement *whether or not it
    #: expends effort*.  The paper argues against charging idle rounds -
    #: comparing this column with `effort` makes the §1.1 point measurable.
    available_processor_steps: int = 0

    # ---- recording -------------------------------------------------

    def record_work(self, pid: int, unit: int, round_number: int) -> None:
        self.work_total += 1
        self.work_by_unit[unit] += 1
        self.work_by_process[pid] += 1
        self.rounds = max(self.rounds, round_number)

    def record_send(self, envelope: Envelope) -> None:
        self.messages_total += 1
        self.messages_by_kind[envelope.kind] += 1
        self.messages_by_process[envelope.src] += 1
        self.rounds = max(self.rounds, envelope.sent_round)

    def record_send_fast(self, src: int, kind: MessageKind, round_number: int) -> None:
        """Count one send without materialising an :class:`Envelope`.

        Observationally identical to :meth:`record_send`; used by the
        engine's hot path, where the envelope object is only built when a
        live recipient actually stores it.
        """
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_by_process[src] += 1
        if round_number > self.rounds:
            self.rounds = round_number

    def record_send_batch(
        self,
        src: int,
        kind_counts: Dict[MessageKind, int],
        count: int,
        round_number: int,
    ) -> None:
        """Count one broadcast batch of ``count`` sends from ``src``.

        ``kind_counts`` maps each message kind in the batch to its
        multiplicity (summing to ``count``).  Equivalent to ``count``
        calls of :meth:`record_send_fast` but with per-batch instead of
        per-copy bookkeeping overhead.  This is the single accounting
        call both engines make per packed :class:`Broadcast` (a
        one-entry ``kind_counts``), and what the legacy mixed-kind list
        path aggregates into - the paper's measure still charges every
        point-to-point copy, only the bookkeeping is batched.
        """
        self.messages_total += count
        self.messages_by_process[src] += count
        by_kind = self.messages_by_kind
        for kind, kind_count in kind_counts.items():
            by_kind[kind] += kind_count
        if round_number > self.rounds:
            self.rounds = round_number

    def record_crash(self, pid: int, round_number: int) -> None:
        self.crashes += 1
        self.retire_round = max(self.retire_round, round_number)

    def record_recovery(self, pid: int, round_number: int) -> None:
        self.recoveries += 1
        self.rounds = max(self.rounds, round_number)

    def record_retire(self, pid: int, round_number: int) -> None:
        self.retire_round = max(self.retire_round, round_number)

    def record_activation(self, pid: int, round_number: int) -> None:
        self.activations += 1
        self.rounds = max(self.rounds, round_number)

    # ---- derived measures -------------------------------------------

    @property
    def effort(self) -> int:
        """The paper's effort measure: work plus messages."""
        return self.work_total + self.messages_total

    def redundant_work(self) -> int:
        """Units executed beyond the first execution of each unit."""
        return sum(count - 1 for count in self.work_by_unit.values() if count > 1)

    def distinct_units_done(self) -> int:
        return len(self.work_by_unit)

    def messages_of(self, kind: MessageKind) -> int:
        return self.messages_by_kind.get(kind, 0)

    def as_dict(self, *, full: bool = False) -> Dict[str, object]:
        """Flat summary used by tables, benches and EXPERIMENTS.md.

        ``full=True`` additionally emits the per-unit/per-process
        breakdown counters and the last-event round, making the dict
        *lossless*: :meth:`from_dict` rebuilds an equal :class:`Metrics`
        from it.  The default summary form is unchanged (and one-way) -
        it is what tables, ``--json`` and the benchmarks print.
        """
        data: Dict[str, object] = {
            "work": self.work_total,
            "messages": self.messages_total,
            "effort": self.effort,
            "rounds": self.retire_round,
            "redundant_work": self.redundant_work(),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "activations": self.activations,
            "available_processor_steps": self.available_processor_steps,
            "messages_by_kind": {
                kind.value: count for kind, count in sorted(self.messages_by_kind.items())
            },
        }
        if full:
            data["last_event_round"] = self.rounds
            data["work_by_unit"] = {
                str(unit): count for unit, count in sorted(self.work_by_unit.items())
            }
            data["work_by_process"] = {
                str(pid): count for pid, count in sorted(self.work_by_process.items())
            }
            data["messages_by_process"] = {
                str(pid): count
                for pid, count in sorted(self.messages_by_process.items())
            }
        return data

    #: Fields :meth:`from_dict` requires - exactly what ``as_dict(full=True)``
    #: adds on top of the scalar summary.
    _FULL_FIELDS = (
        "work",
        "messages",
        "rounds",
        "crashes",
        "recoveries",
        "activations",
        "available_processor_steps",
        "messages_by_kind",
        "last_event_round",
        "work_by_unit",
        "work_by_process",
        "messages_by_process",
    )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metrics":
        """Rebuild a :class:`Metrics` from ``as_dict(full=True)`` output.

        The summary form (``full=False``) is rejected: it drops the
        per-unit/per-process counters, so rehydrating it could not
        produce an object equal to the original.  Malformed payloads
        raise :class:`ConfigurationError` naming the offending field and
        value; breakdown sums are checked against the stated totals
        (content-addressed caches should notice corrupted payloads).
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a metrics payload must be a dict, got {type(data).__name__}"
            )
        missing = [name for name in cls._FULL_FIELDS if name not in data]
        if missing:
            raise ConfigurationError(
                f"metrics payload lacks field(s) {missing}; rehydration needs "
                "the lossless form written by as_dict(full=True) / "
                "RunResult.to_dict(full=True)"
            )

        def scalar(name: str) -> int:
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"metrics field {name!r} must be an integer, got {value!r}"
                )
            return value

        def counter(name: str) -> Counter:
            raw = data[name]
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"metrics field {name!r} must be a mapping, got {raw!r}"
                )
            rebuilt: Counter = Counter()
            for key, value in raw.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ConfigurationError(
                        f"metrics field {name!r} entry {key!r} must map to an "
                        f"integer, got {value!r}"
                    )
                try:
                    rebuilt[int(key)] = value
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"metrics field {name!r} key {key!r} is not an integer "
                        "process/unit id"
                    ) from None
            return rebuilt

        kinds_raw = data["messages_by_kind"]
        if not isinstance(kinds_raw, dict):
            raise ConfigurationError(
                f"metrics field 'messages_by_kind' must be a mapping, got "
                f"{kinds_raw!r}"
            )
        messages_by_kind: Counter = Counter()
        for kind, count in kinds_raw.items():
            try:
                resolved = MessageKind(kind)
            except ValueError:
                raise ConfigurationError(
                    f"metrics field 'messages_by_kind' names unknown message "
                    f"kind {kind!r}; accepted: "
                    + ", ".join(k.value for k in MessageKind)
                ) from None
            if isinstance(count, bool) or not isinstance(count, int):
                raise ConfigurationError(
                    f"metrics field 'messages_by_kind' entry {kind!r} must map "
                    f"to an integer, got {count!r}"
                )
            messages_by_kind[resolved] = count

        metrics = cls(
            work_total=scalar("work"),
            messages_total=scalar("messages"),
            work_by_unit=counter("work_by_unit"),
            work_by_process=counter("work_by_process"),
            messages_by_kind=messages_by_kind,
            messages_by_process=counter("messages_by_process"),
            crashes=scalar("crashes"),
            recoveries=scalar("recoveries"),
            rounds=scalar("last_event_round"),
            retire_round=scalar("rounds"),
            activations=scalar("activations"),
            available_processor_steps=scalar("available_processor_steps"),
        )
        for name, total, breakdown in (
            ("work_by_unit", metrics.work_total, metrics.work_by_unit),
            ("work_by_process", metrics.work_total, metrics.work_by_process),
            ("messages_by_process", metrics.messages_total, metrics.messages_by_process),
        ):
            observed = sum(breakdown.values())
            if observed != total:
                raise ConfigurationError(
                    f"metrics field {name!r} sums to {observed}, but the "
                    f"payload states a total of {total}; the payload is "
                    "corrupt"
                )
        return metrics


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated execution.

    Attributes:
        completed: every work unit was performed at least once.
        survivors: number of processes that never crashed (they may have
            terminated cleanly).
        metrics: the full accounting tally.
        halted: number of processes that terminated cleanly.
        stalled: the run ended because nothing could make progress (only
            possible when every process crashed - otherwise the engine
            raises ``SimulationStalled``).
        config: echo of the declarative scenario that produced this run
            (set by :meth:`repro.api.Scenario.run`; ``None`` for direct
            engine invocations).
    """

    completed: bool
    survivors: int
    halted: int
    metrics: Metrics
    stalled: bool = False
    note: Optional[str] = None
    config: Optional[Dict[str, object]] = None

    @property
    def effort(self) -> int:
        return self.metrics.effort

    def summary(self) -> Dict[str, object]:
        data = dict(self.metrics.as_dict())
        data.update(
            completed=self.completed, survivors=self.survivors, halted=self.halted
        )
        return data

    def to_dict(self, *, full: bool = False) -> Dict[str, object]:
        """JSON-compatible report: completion, accounting, config echo.

        This is what ``python -m repro run --json`` prints and what the
        benchmark/CI tooling consumes instead of scraping tables.

        ``full=True`` switches the embedded metrics to their lossless
        form (see :meth:`Metrics.as_dict`), which is what
        :meth:`from_dict` rehydrates and what the run server's result
        cache stores - ``RunResult.from_dict(result.to_dict(full=True))
        == result``.
        """
        payload: Dict[str, object] = {
            "completed": self.completed,
            "survivors": self.survivors,
            "halted": self.halted,
            "stalled": self.stalled,
            "metrics": self.metrics.as_dict(full=full),
        }
        if self.note is not None:
            payload["note"] = self.note
        if self.config is not None:
            payload["config"] = self.config
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a :class:`RunResult` from ``to_dict(full=True)`` output.

        This is how results served over the wire (``repro serve``, the
        content-addressed cache) rehydrate into the same object an
        in-process :meth:`repro.api.Scenario.run` caller gets.
        Malformed payloads raise :class:`ConfigurationError` naming the
        offending field and value.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a run-result payload must be a dict, got {type(data).__name__}"
            )
        known = {
            "completed", "survivors", "halted", "stalled",
            "metrics", "note", "config",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown run-result field(s) {sorted(unknown)}; accepted: "
                + ", ".join(sorted(known))
            )
        missing = {"completed", "survivors", "halted", "metrics"} - set(data)
        if missing:
            raise ConfigurationError(
                f"a run-result payload requires field(s) {sorted(missing)}"
            )
        for name in ("completed", "stalled"):
            value = data.get(name, False)
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"run-result field {name!r} must be a boolean, got {value!r}"
                )
        for name in ("survivors", "halted"):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"run-result field {name!r} must be an integer, got {value!r}"
                )
        note = data.get("note")
        if note is not None and not isinstance(note, str):
            raise ConfigurationError(
                f"run-result field 'note' must be a string, got {note!r}"
            )
        config = data.get("config")
        if config is not None:
            if not isinstance(config, dict):
                raise ConfigurationError(
                    f"run-result field 'config' must be a dict, got {config!r}"
                )
            # JSON stringifies int dict keys (e.g. crash_times pids); a
            # round trip through Scenario restores the native shape so
            # rehydrated results compare equal to in-process ones.
            from repro.api import Scenario

            config = Scenario.from_dict(config).to_dict()
        return cls(
            completed=data["completed"],
            survivors=data["survivors"],
            halted=data["halted"],
            metrics=Metrics.from_dict(data["metrics"]),
            stalled=data.get("stalled", False),
            note=note,
            config=config,
        )
