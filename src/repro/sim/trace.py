"""Optional structured event trace for simulations.

Traces are off by default (they cost memory proportional to the number
of events) and are used by tests that assert fine-grained ordering
properties, and by examples that want to narrate an execution.

Hot-path contract: the engine checks :attr:`Trace.enabled` *before*
building the per-event detail tuple on its per-send and per-work paths,
so a disabled trace costs one attribute read per batch rather than a
tuple allocation per message.  :meth:`emit` still guards internally for
the rare event kinds (crash/halt/activate) that skip the pre-check.

Send events stay *per copy* even for packed ``Broadcast`` batches: an
enabled trace emits one ``("send", src, (kind, dst, payload))`` event
per recipient in ascending pid order, which is exactly the expanded
legacy batch's emission - so traces of a packed run diff cleanly
against expanded-path oracles and render identically for both batch
spellings (``tests/test_broadcast_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TraceEvent:
    round: int
    kind: str            # "work" | "send" | "crash" | "halt" | "activate"
    pid: int
    detail: Any = None

    def __str__(self) -> str:
        return f"[r{self.round:>6}] p{self.pid:<3} {self.kind:<9} {self.detail}"


class Trace:
    """Append-only event log with small query helpers."""

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, round_number: int, kind: str, pid: int, detail: Any = None) -> None:
        if self.enabled:
            self.events.append(TraceEvent(round_number, kind, pid, detail))

    # ---- queries ---------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_pid(self, pid: int) -> List[TraceEvent]:
        return [event for event in self.events if event.pid == pid]

    def activations(self) -> List[Tuple[int, int]]:
        """(round, pid) pairs of processes taking over the active role."""
        return [(event.round, event.pid) for event in self.of_kind("activate")]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def render(self, limit: Optional[int] = None) -> str:
        chosen = self.events if limit is None else self.events[:limit]
        lines = [str(event) for event in chosen]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
