"""Crash directives: when and how a process fails.

The paper's crash model is fail-stop with one refinement that the
protocols' analyses lean on heavily: a process may crash *during* a
broadcast, in which case an arbitrary subset of the recipients receive
the message.  A directive therefore specifies both the round of the crash
and the phase within the round:

* ``BEFORE_ACTION`` - the process does nothing this round (it may also
  have been scheduled for an earlier, idle round; a late application is
  observationally identical because an idle process emits nothing).
* ``AFTER_WORK`` - the work unit of the round counts, no message leaves.
  This realises "a process can fail immediately after performing a unit
  of work, before reporting that unit to any other process", the scenario
  behind the paper's `n + t - 1` work lower bound.
* ``DURING_SEND`` - work counts and an adversary-chosen subset of the
  round's send batch is delivered.
* ``AFTER_ACTION`` - the whole round takes effect, then the process dies.

Crash-recover extension
-----------------------

The paper's model is fail-stop, but the repo's fault universe also
covers *repairable* faults: a directive with ``recover_after=k`` crashes
the victim as usual and schedules it to rejoin ``k`` rounds later with
**stale state** - whatever its last checkpoint held, not its crash-instant
state.  Only recovery-aware protocols (``Process.supports_recovery``)
accept such directives; the engine raises :class:`AdversaryError` for
any other victim, because a protocol with no checkpoint discipline has
no well-defined state to rejoin with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Optional

from repro.sim.actions import Action, Broadcast, SendBatch
from repro.sim.rng import choose_subset


class CrashPhase(Enum):
    BEFORE_ACTION = "before_action"
    AFTER_WORK = "after_work"
    DURING_SEND = "during_send"
    AFTER_ACTION = "after_action"


@dataclass(frozen=True)
class CrashDirective:
    """Instruction to crash one process.

    Attributes:
        pid: the victim.
        at_round: first round at which the crash takes effect.  If the
            victim is idle at ``at_round`` the crash applies before its
            next action, which is observationally equivalent.
        phase: where within the action round the crash lands.
        keep: for ``DURING_SEND``: either an explicit frozenset of
            destination pids whose copies are delivered, or ``None``
            meaning "uniformly random subset" (size drawn by the engine).
        recover_after: if set, the victim rejoins that many rounds after
            the crash is applied, restored to its last checkpoint (see
            module docstring).  Requires ``Process.supports_recovery``.
    """

    pid: int
    at_round: int
    phase: CrashPhase = CrashPhase.BEFORE_ACTION
    keep: Optional[FrozenSet[int]] = None
    recover_after: Optional[int] = None

    def censor(self, action: Action, rng: random.Random) -> Action:
        """Return the part of ``action`` that survives this crash."""
        if self.phase is CrashPhase.BEFORE_ACTION:
            return Action.idle()
        if self.phase is CrashPhase.AFTER_WORK:
            return Action(work=action.work)
        if self.phase is CrashPhase.DURING_SEND:
            return Action(work=action.work, sends=self._surviving_sends(action.sends, rng))
        # AFTER_ACTION: everything (including a halt, though a crash makes
        # the halt moot - the process retires either way).
        return action

    def _surviving_sends(self, sends: SendBatch, rng: random.Random) -> SendBatch:
        if isinstance(sends, Broadcast):
            # Partial delivery of a packed broadcast is *subset selection*
            # on the recipients bitset - the shared payload is never
            # re-allocated per copy.  RNG draws match the legacy path
            # exactly: one randrange over the batch size, one sample of
            # positions (recipients ascend, like the expanded list).
            if self.keep is not None:
                return sends.restrict(self.keep)
            if not sends:
                return sends
            dsts = sends.dsts()
            size = rng.randrange(len(dsts) + 1)
            return sends.restrict(choose_subset(rng, dsts, size))
        if self.keep is not None:
            return [send for send in sends if send.dst in self.keep]
        if not sends:
            return []
        size = rng.randrange(len(sends) + 1)
        return choose_subset(rng, sends, size)


def immediate_crash(pid: int, at_round: int) -> CrashDirective:
    """Shorthand for a clean fail-stop before the victim's next action."""
    return CrashDirective(pid=pid, at_round=at_round, phase=CrashPhase.BEFORE_ACTION)
