"""Crash directives: when and how a process fails.

The paper's crash model is fail-stop with one refinement that the
protocols' analyses lean on heavily: a process may crash *during* a
broadcast, in which case an arbitrary subset of the recipients receive
the message.  A directive therefore specifies both the round of the crash
and the phase within the round:

* ``BEFORE_ACTION`` - the process does nothing this round (it may also
  have been scheduled for an earlier, idle round; a late application is
  observationally identical because an idle process emits nothing).
* ``AFTER_WORK`` - the work unit of the round counts, no message leaves.
  This realises "a process can fail immediately after performing a unit
  of work, before reporting that unit to any other process", the scenario
  behind the paper's `n + t - 1` work lower bound.
* ``DURING_SEND`` - work counts and an adversary-chosen subset of the
  round's send batch is delivered.
* ``AFTER_ACTION`` - the whole round takes effect, then the process dies.

Crash-recover extension
-----------------------

The paper's model is fail-stop, but the repo's fault universe also
covers *repairable* faults: a directive with ``recover_after=k`` crashes
the victim as usual and schedules it to rejoin ``k`` rounds later with
**stale state** - whatever its last checkpoint held, not its crash-instant
state.  Only recovery-aware protocols (``Process.supports_recovery``)
accept such directives; the engine raises :class:`AdversaryError` for
any other victim, because a protocol with no checkpoint discipline has
no well-defined state to rejoin with.

Repair-time distributions
-------------------------

Real repairs are not a constant: a reboot takes a few rounds, a
re-image takes many.  The adversary-facing ``repair_delay`` /
``recover_after`` parameters therefore accept a *repair spec* - a fixed
integer, or a distribution drawn once per directive from the
adversary's own seeded RNG (so schedules stay deterministic functions
of the scenario seed)::

    8                   fixed: rejoin 8 rounds later
    "uniform:2,6"       uniform integer delay in [2, 6]
    "exp:mean=3"        exponential with the given mean, rounded,
                        floored at 1
    {"kind": "uniform", "low": 2, "high": 6}     (dict forms)
    {"kind": "exp", "mean": 3.0}

Inside an adversary *string* spec, where commas separate arguments,
spell the uniform form ``uniform:2-6`` or ``uniform:2..6``.
:func:`normalize_repair_spec` canonicalises and validates (errors name
the offending value); :func:`draw_repair_delay` performs the per-
directive draw.  See ``docs/faults.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.actions import Action, Broadcast, SendBatch
from repro.sim.rng import choose_subset
from repro.sim.specs import to_int, to_number

#: What repair-delay parameters accept: a fixed round count, a
#: distribution grammar string, or a canonical distribution dict.
RepairSpec = Union[int, str, Dict[str, object]]

#: Normalised form: a fixed int, or one of these distribution kinds.
REPAIR_KINDS = ("uniform", "exp")


def _parse_repair_string(text: str, *, what: str):
    head, sep, rest = text.partition(":")
    kind = head.strip().lower()
    if not sep:
        return to_int(text, what=what, minimum=1)
    if kind == "uniform":
        for bounds_sep in (",", "..", "-"):
            if bounds_sep in rest:
                low_text, _, high_text = rest.partition(bounds_sep)
                break
        else:
            raise ConfigurationError(
                f"{what} uniform bounds are spelled 'uniform:LO,HI' "
                f"(or LO-HI / LO..HI inside an adversary string spec), "
                f"got {text!r}"
            )
        return {
            "kind": "uniform",
            "low": to_int(low_text, what=f"{what} uniform low bound", minimum=1),
            "high": to_int(high_text, what=f"{what} uniform high bound", minimum=1),
        }
    if kind == "exp":
        rest = rest.strip()
        if rest.lower().startswith("mean="):
            rest = rest[5:]
        return {"kind": "exp", "mean": to_number(rest, what=f"{what} exp mean")}
    raise ConfigurationError(
        f"{what} must be an integer, 'uniform:LO,HI' or 'exp:mean=M', "
        f"got {text!r}"
    )


def normalize_repair_spec(value: RepairSpec, *, what: str):
    """Canonicalise a repair spec to an int or a validated
    ``{"kind": ..., <param>: ...}`` dict.

    Raises :class:`ConfigurationError` naming the offending value for
    unknown kinds, non-integer bounds, inverted ranges, and non-positive
    means.
    """
    if isinstance(value, str):
        value = _parse_repair_string(value, what=what)
    if isinstance(value, bool):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    if isinstance(value, (int, float)):
        return to_int(value, what=what, minimum=1)
    if not isinstance(value, dict):
        raise ConfigurationError(
            f"{what} must be an integer, a 'uniform:LO,HI' / 'exp:mean=M' "
            f"string, or a distribution dict, got {value!r}"
        )
    kind = str(value.get("kind", "")).strip().lower()
    if kind not in REPAIR_KINDS:
        raise ConfigurationError(
            f"unknown repair distribution kind {value.get('kind')!r} in "
            f"{what}; known kinds: " + ", ".join(REPAIR_KINDS)
        )
    if kind == "uniform":
        unknown = set(value) - {"kind", "low", "high"}
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for uniform "
                f"{what}; accepted: low, high"
            )
        missing = {"low", "high"} - set(value)
        if missing:
            raise ConfigurationError(
                f"uniform {what} requires parameter(s) {sorted(missing)}"
            )
        low = to_int(value["low"], what=f"{what} uniform low bound", minimum=1)
        high = to_int(value["high"], what=f"{what} uniform high bound", minimum=1)
        if high < low:
            raise ConfigurationError(
                f"{what} uniform bounds must satisfy low <= high, got "
                f"[{low}, {high}]"
            )
        return {"kind": "uniform", "low": low, "high": high}
    unknown = set(value) - {"kind", "mean"}
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for exp {what}; "
            "accepted: mean"
        )
    if "mean" not in value:
        raise ConfigurationError(f"exp {what} requires parameter(s) ['mean']")
    mean = to_number(value["mean"], what=f"{what} exp mean")
    if mean <= 0:
        raise ConfigurationError(f"{what} exp mean must be > 0, got {mean!r}")
    return {"kind": "exp", "mean": float(mean)}


def draw_repair_delay(spec, rng: random.Random) -> int:
    """One repair delay from a normalised spec.

    A fixed int passes through **without touching the RNG**, so
    integer-delay scenarios keep their historical draw order; a
    distribution consumes exactly one draw.  Exponential delays round to
    the nearest integer and floor at 1 (a repair takes at least a
    round).
    """
    if isinstance(spec, int):
        return spec
    if spec["kind"] == "uniform":
        return rng.randint(spec["low"], spec["high"])
    return max(1, int(rng.expovariate(1.0 / spec["mean"]) + 0.5))


class CrashPhase(Enum):
    BEFORE_ACTION = "before_action"
    AFTER_WORK = "after_work"
    DURING_SEND = "during_send"
    AFTER_ACTION = "after_action"


@dataclass(frozen=True)
class CrashDirective:
    """Instruction to crash one process.

    Attributes:
        pid: the victim.
        at_round: first round at which the crash takes effect.  If the
            victim is idle at ``at_round`` the crash applies before its
            next action, which is observationally equivalent.
        phase: where within the action round the crash lands.
        keep: for ``DURING_SEND``: either an explicit frozenset of
            destination pids whose copies are delivered, or ``None``
            meaning "uniformly random subset" (size drawn by the engine).
        recover_after: if set, the victim rejoins that many rounds after
            the crash is applied, restored to its last checkpoint (see
            module docstring).  Requires ``Process.supports_recovery``.
    """

    pid: int
    at_round: int
    phase: CrashPhase = CrashPhase.BEFORE_ACTION
    keep: Optional[FrozenSet[int]] = None
    recover_after: Optional[int] = None

    def censor(self, action: Action, rng: random.Random) -> Action:
        """Return the part of ``action`` that survives this crash."""
        if self.phase is CrashPhase.BEFORE_ACTION:
            return Action.idle()
        if self.phase is CrashPhase.AFTER_WORK:
            return Action(work=action.work)
        if self.phase is CrashPhase.DURING_SEND:
            return Action(work=action.work, sends=self._surviving_sends(action.sends, rng))
        # AFTER_ACTION: everything (including a halt, though a crash makes
        # the halt moot - the process retires either way).
        return action

    def _surviving_sends(self, sends: SendBatch, rng: random.Random) -> SendBatch:
        if isinstance(sends, Broadcast):
            # Partial delivery of a packed broadcast is *subset selection*
            # on the recipients bitset - the shared payload is never
            # re-allocated per copy.  RNG draws match the legacy path
            # exactly: one randrange over the batch size, one sample of
            # positions (recipients ascend, like the expanded list).
            if self.keep is not None:
                return sends.restrict(self.keep)
            if not sends:
                return sends
            dsts = sends.dsts()
            size = rng.randrange(len(dsts) + 1)
            return sends.restrict(choose_subset(rng, dsts, size))
        if self.keep is not None:
            return [send for send in sends if send.dst in self.keep]
        if not sends:
            return []
        size = rng.randrange(len(sends) + 1)
        return choose_subset(rng, sends, size)


def immediate_crash(pid: int, at_round: int) -> CrashDirective:
    """Shorthand for a clean fail-stop before the victim's next action."""
    return CrashDirective(pid=pid, at_round=at_round, phase=CrashPhase.BEFORE_ACTION)
