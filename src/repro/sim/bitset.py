"""Packed-integer bitsets for the simulator's hot set algebra.

Protocol D's agreement fold, the dynamic-workload variant's
known/done/live merges, and Protocol C's faulty-set bookkeeping all
manipulate dense sets of small non-negative integers (work units
``1..n``, pids ``0..t-1``).  With Python ``set`` objects the per-round
fold is Theta(t^2 * n) element-wise hashing; packing each set into one
arbitrary-precision integer turns every union/intersection/difference
into a handful of word-parallel bitwise operations (cf. the Do-All
line of work, where p processors tracking t task completions is exactly
this shape).

Two classes:

* :class:`IntBitset` - the mutable working set.  It interoperates with
  the built-in set API where the protocols and tests need it: ``in``,
  ``len``, ascending iteration, ``|  &  -  ^`` (also against ``set`` /
  ``frozenset`` / any iterable of ints), equality against sets, and the
  usual ``add/discard/update`` mutators.
* :class:`FrozenIntBitset` - an immutable, hashable snapshot used as
  message payload.  Freezing is O(1) (the backing int is shared) and a
  frozen snapshot compares equal to the ``frozenset`` with the same
  members, so traces of a bitset run diff cleanly against a set-based
  oracle run.

Serialization round-trips through :meth:`to_int` / :meth:`from_int`
(the canonical wire form: members are exactly the set bit positions)
or :meth:`to_bytes` / :meth:`from_bytes` (little-endian, minimal
length).

Equality against ``frozenset`` is intentionally *not* matched by hash
(a ``FrozenIntBitset`` hashes like its backing int, not like the
frozenset); do not mix the two as keys of one dict.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Union

BitsetLike = Union["_BitsetBase", AbstractSet[int], Iterable[int]]


def _mask_of(other: BitsetLike) -> int:
    """The packed-int form of any accepted set operand."""
    if isinstance(other, _BitsetBase):
        return other._bits
    mask = 0
    for member in other:
        mask |= 1 << member
    return mask


class _BitsetBase:
    """Read-only bitset behaviour shared by the mutable and frozen forms."""

    __slots__ = ("_bits",)

    _bits: int

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ValueError(f"bitset mask must be non-negative, got {bits}")
        self._bits = bits

    # ---- constructors ----------------------------------------------------

    @classmethod
    def from_iterable(cls, members: Iterable[int]):
        mask = 0
        for member in members:
            if member < 0:
                raise ValueError(f"bitset members must be non-negative, got {member}")
            mask |= 1 << member
        return cls(mask)

    @classmethod
    def from_range(cls, start: int, stop: int):
        """The set ``{start, ..., stop - 1}`` in O(1) big-int operations."""
        if start < 0:
            raise ValueError(f"bitset members must be non-negative, got {start}")
        if stop <= start:
            return cls(0)
        return cls(((1 << (stop - start)) - 1) << start)

    @classmethod
    def singleton(cls, member: int):
        if member < 0:
            raise ValueError(f"bitset members must be non-negative, got {member}")
        return cls(1 << member)

    # ---- serialization ---------------------------------------------------

    @classmethod
    def from_int(cls, mask: int):
        return cls(mask)

    def to_int(self) -> int:
        """Canonical wire form: bit ``i`` set iff ``i`` is a member."""
        return self._bits

    @classmethod
    def from_bytes(cls, data: bytes):
        return cls(int.from_bytes(data, "little"))

    def to_bytes(self) -> bytes:
        bits = self._bits
        return bits.to_bytes((bits.bit_length() + 7) // 8, "little")

    # ---- queries ---------------------------------------------------------

    def __contains__(self, member: int) -> bool:
        return member >= 0 and (self._bits >> member) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        """Members in ascending order (matches ``sorted(set)``)."""
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def count_below(self, bound: int) -> int:
        """Number of members strictly less than ``bound``."""
        if bound <= 0:
            return 0
        return (self._bits & ((1 << bound) - 1)).bit_count()

    def select(self, start: int, count: int) -> list:
        """The members ranked ``start .. start + count - 1`` (0-based,
        ascending), i.e. ``sorted(self)[start:start + count]`` without
        materialising the full member list.

        The rank offset is located with a binary search over
        ``count_below`` (O(log u) word-parallel popcounts for universe
        size u), then ``count`` members are popped off the low end -
        O(log u + count) instead of O(len(self)).  This is the
        work-share slicer of Protocol D's ``Theta(t)`` processes, each
        of which needs only its own ``n/t``-unit slice of the
        outstanding set.
        """
        bits = self._bits
        if count <= 0 or start >= bits.bit_count():
            return []
        if start > 0:
            # Smallest prefix width holding >= start members; at that
            # width it holds exactly start (counts grow one bit at a
            # time), so shifting it away skips exactly start members.
            lo, hi = 0, bits.bit_length()
            while lo < hi:
                mid = (lo + hi) // 2
                if (bits & ((1 << mid) - 1)).bit_count() >= start:
                    hi = mid
                else:
                    lo = mid + 1
            bits >>= lo
            base = lo
        else:
            base = 0
        members = []
        while bits and count > 0:
            low = bits & -bits
            members.append(base + low.bit_length() - 1)
            bits ^= low
            count -= 1
        return members

    def isdisjoint(self, other: BitsetLike) -> bool:
        return self._bits & _mask_of(other) == 0

    def issubset(self, other: BitsetLike) -> bool:
        return self._bits & ~_mask_of(other) == 0

    def issuperset(self, other: BitsetLike) -> bool:
        return _mask_of(other) & ~self._bits == 0

    __le__ = issubset
    __ge__ = issuperset

    def __lt__(self, other: BitsetLike) -> bool:
        mask = _mask_of(other)
        return self._bits != mask and self._bits & ~mask == 0

    def __gt__(self, other: BitsetLike) -> bool:
        mask = _mask_of(other)
        return self._bits != mask and mask & ~self._bits == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _BitsetBase):
            return self._bits == other._bits
        if isinstance(other, (set, frozenset)):
            return self._bits == _mask_of(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # ---- set algebra (never mutates; returns the operand class of self) --

    def __or__(self, other: BitsetLike):
        return type(self)(self._bits | _mask_of(other))

    __ror__ = __or__

    def union(self, other: BitsetLike):
        return self | other

    def __and__(self, other: BitsetLike):
        return type(self)(self._bits & _mask_of(other))

    __rand__ = __and__

    def intersection(self, other: BitsetLike):
        return self & other

    def __sub__(self, other: BitsetLike):
        return type(self)(self._bits & ~_mask_of(other))

    def difference(self, other: BitsetLike):
        return self - other

    def __rsub__(self, other: BitsetLike):
        return type(self)(_mask_of(other) & ~self._bits)

    def __xor__(self, other: BitsetLike):
        return type(self)(self._bits ^ _mask_of(other))

    __rxor__ = __xor__

    def symmetric_difference(self, other: BitsetLike):
        return self ^ other

    def __repr__(self) -> str:
        return f"{type(self).__name__}({{{', '.join(map(str, self))}}})"


class IntBitset(_BitsetBase):
    """Mutable packed-integer set of non-negative ints (unhashable)."""

    __slots__ = ()
    __hash__ = None  # mutable: keep it out of dicts, like ``set``

    # ---- mutators --------------------------------------------------------

    def add(self, member: int) -> None:
        if member < 0:
            raise ValueError(f"bitset members must be non-negative, got {member}")
        self._bits |= 1 << member

    def discard(self, member: int) -> None:
        if member >= 0:
            self._bits &= ~(1 << member)

    def remove(self, member: int) -> None:
        if member not in self:
            raise KeyError(member)
        self._bits &= ~(1 << member)

    def clear(self) -> None:
        self._bits = 0

    def update(self, other: BitsetLike) -> None:
        self._bits |= _mask_of(other)

    def intersection_update(self, other: BitsetLike) -> None:
        self._bits &= _mask_of(other)

    def difference_update(self, other: BitsetLike) -> None:
        self._bits &= ~_mask_of(other)

    def __ior__(self, other: BitsetLike) -> "IntBitset":
        self._bits |= _mask_of(other)
        return self

    def __iand__(self, other: BitsetLike) -> "IntBitset":
        self._bits &= _mask_of(other)
        return self

    def __isub__(self, other: BitsetLike) -> "IntBitset":
        self._bits &= ~_mask_of(other)
        return self

    def __ixor__(self, other: BitsetLike) -> "IntBitset":
        self._bits ^= _mask_of(other)
        return self

    # ---- snapshots -------------------------------------------------------

    def copy(self) -> "IntBitset":
        return IntBitset(self._bits)

    def freeze(self) -> "FrozenIntBitset":
        """An immutable snapshot sharing the backing int (O(1))."""
        return FrozenIntBitset(self._bits)


class FrozenIntBitset(_BitsetBase):
    """Immutable, hashable bitset snapshot (the payload form)."""

    __slots__ = ()

    def __hash__(self) -> int:
        return hash((FrozenIntBitset, self._bits))

    def copy(self) -> "FrozenIntBitset":
        return self

    def freeze(self) -> "FrozenIntBitset":
        return self

    def thaw(self) -> IntBitset:
        """A mutable working copy."""
        return IntBitset(self._bits)
