"""Columnar (numpy) commit + delivery fast path for the sync engine.

The synchronous workloads of this paper are *bulk-synchronous*: in an
agreement round every live Protocol D process broadcasts one payload to
Theta(t) recipients, so the engine's per-copy representation - one
``EnvelopeView`` object appended per (broadcast, live recipient) pair -
allocates and later re-inspects Theta(t^2) Python objects per round.
This module stores the same delivery state as *columns*: one row per
committed batch holding parallel numpy arrays (sent-round / source-pid /
payload-id / kind-code) plus a packed recipient bitmask per row, and a
payload intern table mapping payload ids back to the shared payload
objects.  Commit is one row append regardless of fan-out; per-recipient
delivery state is a single integer cursor into the row log.

Equivalence contract (the PR 1/2/5 discipline): with the fast path on,
every run produces bit-identical metrics, traces and RNG draw sequences
to the pure-python path.  The engine keeps metrics/trace/censoring
exactly where they were; this module only replaces *storage*:

* ``post_broadcast`` appends one row whose recipient mask is already
  restricted to live pids (the engine's ``& live_mask``), mirroring the
  slow path's "only live recipients get a view" rule;
* ``head_stamp``/``drain`` reproduce the stamp-sorted mailbox semantics:
  rows are appended at strictly non-decreasing processed rounds, so each
  recipient's undelivered mail is exactly the rows at index >= its
  cursor whose mask includes it, in stamp order; delivery is a
  vectorized prefix split (``searchsorted``) with the same
  receive-budget cap;
* ``clear`` (retirement) advances the cursor past every existing row;
  rows appended later never address a retired pid (the live-mask
  restriction), so crash-recover rejoins see an empty mailbox followed
  by only post-recovery mail - byte-for-byte the slow path's behaviour.

A drain returns a :class:`ColumnarInbox`: a sequence that materialises
``Envelope``/``EnvelopeView`` objects *lazily* (memoized), so protocols
that iterate their inbox behave identically while protocols that
understand columns (Protocol D's agreement fold) read the arrays
directly and never allocate a view at all.

numpy is an optional dependency (the ``repro[fast]`` extra).  This
module always imports; :func:`resolve_fastpath` decides per engine
whether the fast path is available (``"auto"``), required (``"on"``) or
disabled (``"off"``).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.sim.actions import Envelope, EnvelopeView, MessageKind, SharedEnvelope

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

#: The engine-level switch values (also the Scenario field's domain).
FASTPATH_CHOICES = ("auto", "on", "off")

#: Stable small-int codes for the kind column (enum definition order).
KIND_CODES = {kind: code for code, kind in enumerate(MessageKind)}
KIND_BY_CODE = tuple(MessageKind)


def resolve_fastpath(mode: str) -> bool:
    """Decide whether an engine runs columnar, from its ``fastpath`` knob.

    ``"auto"`` uses numpy when importable, ``"off"`` never does, and
    ``"on"`` demands it - raising a :class:`ConfigurationError` that
    names the ``repro[fast]`` extra when numpy is missing, so a run that
    was promised the fast path fails loudly instead of silently slowing
    down.
    """
    if mode == "off":
        return False
    if mode == "auto":
        return HAVE_NUMPY
    if mode == "on":
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "fastpath 'on' requires numpy (install the 'repro[fast]' "
                "extra); use fastpath='auto' to fall back to pure python"
            )
        return True
    raise ConfigurationError(
        f"unknown fastpath {mode!r}; choices: " + ", ".join(FASTPATH_CHOICES)
    )


# ---- packed-int <-> word-array helpers (shared with the protocols) ------


def int_to_words(bits: int, width: int):
    """Little-endian uint64 word view of a packed bitset int.

    ``width`` words must cover ``bits`` (callers size from the known
    member universe: pids < t, units <= n); ``to_bytes`` raises if not.
    """
    return np.frombuffer(bits.to_bytes(width * 8, "little"), dtype="<u8")


def words_to_int(words) -> int:
    """Inverse of :func:`int_to_words` (accepts any uint64 row)."""
    return int.from_bytes(np.ascontiguousarray(words, dtype="<u8").tobytes(), "little")


def or_srcs_mask(srcs, width: int) -> int:
    """The packed-int set ``{s for s in srcs}`` built word-parallel."""
    words = np.zeros(width, dtype=np.uint64)
    np.bitwise_or.at(
        words,
        srcs >> 6,
        np.left_shift(np.uint64(1), (srcs & 63).astype(np.uint64)),
    )
    return words_to_int(words)


def bit_test(words, members):
    """Vectorized membership test: 1 where ``members``' bit is set."""
    return (words[members >> 6] >> (members & 63).astype(np.uint64)) & np.uint64(1)


def dedup_last_wins(srcs, preferred) -> "np.ndarray":
    """Indices of the winning item per source, sources ascending.

    Reproduces the agreement protocols' receipt-dedup rule exactly: for
    each source, the *last* item in sequence order wins, except that a
    ``preferred`` (done-flagged) item is never displaced by a
    non-preferred one - equivalently, the last preferred item if any,
    else the last item.  ``lexsort`` orders by (source, preferred,
    position); the final entry of each source group is the winner.
    """
    count = len(srcs)
    order = np.lexsort((np.arange(count), preferred, srcs))
    sorted_srcs = srcs[order]
    last = np.empty(count, dtype=bool)
    last[:-1] = sorted_srcs[1:] != sorted_srcs[:-1]
    last[-1] = True
    return order[last]


# ---- the columnar store -------------------------------------------------


class ColumnarMailboxes:
    """Row-per-batch delivery log with per-recipient cursors.

    Columns (parallel arrays, capacity-doubling):

    * ``sent`` - the stamp round (non-decreasing in row order);
    * ``src`` - sender pid;
    * ``payload_id`` - index into the payload intern table;
    * ``kind`` - :data:`KIND_CODES` code;
    * ``p2p_dst`` - destination pid for point-to-point rows, ``-1`` for
      broadcast rows (decides ``Envelope`` vs ``EnvelopeView``
      materialisation);
    * ``recips`` - uint64 recipient bitmask matrix, ``(t + 63) // 64``
      words wide.

    ``cursor[pid]`` is the first row this recipient has not yet
    consumed; it only moves forward.  ``caches`` hosts protocol-owned
    per-payload decoded-field caches (see :meth:`cache`), filled once
    per payload id no matter how many recipients read it.
    """

    __slots__ = (
        "t",
        "words",
        "_cap",
        "_count",
        "_sent",
        "_src",
        "_payload_id",
        "_kind",
        "_p2p_dst",
        "_recips",
        "_table",
        "_table_kind",
        "_shared",
        "_cursor",
        "_caches",
    )

    def __init__(self, t: int, *, capacity: int = 1024):
        self.t = t
        self.words = max(1, (t + 63) >> 6)
        self._cap = max(16, capacity)
        self._count = 0
        # Stamps are *object* dtype: quiescence fast-forward means round
        # numbers reach Theta(2^(n+t)) for Protocol C's timeouts, far
        # past int64.  The column is only ever read element-wise or via
        # a log-time ``searchsorted``, so nothing vectorized is lost.
        self._sent = np.empty(self._cap, dtype=object)
        self._src = np.empty(self._cap, dtype=np.int32)
        self._payload_id = np.empty(self._cap, dtype=np.int32)
        self._kind = np.empty(self._cap, dtype=np.int8)
        self._p2p_dst = np.empty(self._cap, dtype=np.int32)
        self._recips = np.zeros((self._cap, self.words), dtype=np.uint64)
        self._table: List[Any] = []       # payload intern table
        self._table_kind: List[int] = []  # kind code per table entry
        self._shared: List[Optional[SharedEnvelope]] = []  # per row, lazy
        self._cursor = [0] * t
        self._caches = {}

    # ---- appends -----------------------------------------------------

    def _grow(self) -> None:
        cap = self._cap * 2
        count = self._count
        for name in ("_sent", "_src", "_payload_id", "_kind", "_p2p_dst"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:count] = old[:count]
            setattr(self, name, new)
        recips = np.zeros((cap, self.words), dtype=np.uint64)
        recips[:count] = self._recips[:count]
        self._recips = recips
        self._cap = cap

    def _intern(self, payload: Any, kind_code: int) -> int:
        # One table entry per committed batch; consecutive posts of the
        # identical payload object (a congestion-split broadcast's
        # segments) share one id so decoded-field caches fill once.
        table = self._table
        if table and table[-1] is payload:
            return len(table) - 1
        table.append(payload)
        self._table_kind.append(kind_code)
        return len(table) - 1

    def _append(
        self, sent_round: int, src: int, kind_code: int, p2p_dst: int,
        mask: int, payload: Any,
    ) -> None:
        row = self._count
        if row == self._cap:
            self._grow()
        self._sent[row] = sent_round
        self._src[row] = src
        self._kind[row] = kind_code
        self._p2p_dst[row] = p2p_dst
        self._payload_id[row] = self._intern(payload, kind_code)
        self._recips[row] = np.frombuffer(
            mask.to_bytes(self.words * 8, "little"), dtype="<u8"
        )
        self._shared.append(None)
        self._count = row + 1

    def post_broadcast(
        self, src: int, payload: Any, kind: MessageKind, sent_round: int, mask: int
    ) -> None:
        """Commit one broadcast row; ``mask`` is already live-restricted
        (and therefore non-zero and < 2**t)."""
        self._append(sent_round, src, KIND_CODES[kind], -1, mask, payload)

    def post_p2p(
        self, src: int, dst: int, payload: Any, kind: MessageKind, sent_round: int
    ) -> None:
        """Commit one point-to-point row (legacy/mixed batches, unit
        effects); the engine has already checked ``dst`` is live."""
        self._append(sent_round, src, KIND_CODES[kind], dst, 1 << dst, payload)

    # ---- per-recipient queries ---------------------------------------

    def head_stamp(self, pid: int) -> Optional[int]:
        """Stamp of ``pid``'s earliest undelivered mail (or ``None``).

        Equivalent to the slow path's ``mailbox[0].sent_round``: rows
        are stamp-sorted, so the first row at or after the cursor whose
        mask includes ``pid`` is the mailbox head.  The cursor advances
        past leading non-addressed rows so repeated queries stay cheap.
        """
        start = self._cursor[pid]
        count = self._count
        if start >= count:
            return None
        lane = self._recips[start:count, pid >> 6]
        hits = np.nonzero((lane >> np.uint64(pid & 63)) & np.uint64(1))[0]
        if hits.size == 0:
            self._cursor[pid] = count
            return None
        first = start + int(hits[0])
        self._cursor[pid] = first
        return int(self._sent[first])

    def drain(self, pid: int, round_number: int, receive: Optional[int]):
        """All mail for ``pid`` stamped before ``round_number``, capped
        by the ``receive`` congestion budget; consumed rows are skipped
        by future queries.  Returns ``[]`` or a :class:`ColumnarInbox`.
        """
        start = self._cursor[pid]
        count = self._count
        if start >= count:
            return []
        lane = self._recips[start:count, pid >> 6]
        hits = np.nonzero((lane >> np.uint64(pid & 63)) & np.uint64(1))[0]
        if hits.size == 0:
            self._cursor[pid] = count
            return []
        rows = hits.astype(np.int64)
        rows += start
        split = int(np.searchsorted(self._sent[rows], round_number, side="left"))
        if split == 0:
            # Head not yet visible; still skip the non-addressed prefix.
            self._cursor[pid] = int(rows[0])
            return []
        if receive is not None and split > receive:
            split = receive
        taken = rows[:split]
        self._cursor[pid] = int(taken[-1]) + 1
        return ColumnarInbox(self, pid, taken)

    def clear(self, pid: int) -> None:
        """Retirement: drop everything currently queued for ``pid``."""
        self._cursor[pid] = self._count

    # ---- payloads and materialisation --------------------------------

    def payload(self, payload_id: int) -> Any:
        return self._table[payload_id]

    def payload_count(self) -> int:
        return len(self._table)

    def payload_kind_code(self, payload_id: int) -> int:
        return self._table_kind[payload_id]

    def envelope(self, row: int, dst: int):
        """The exact object the slow path would have mailed for ``row``:
        an ``Envelope`` tuple for point-to-point rows, a shared-envelope
        ``EnvelopeView`` for broadcast rows (one ``SharedEnvelope`` per
        row, shared by every recipient that materialises it)."""
        payload = self._table[self._payload_id[row]]
        kind = KIND_BY_CODE[self._kind[row]]
        if self._p2p_dst[row] >= 0:
            return Envelope(
                int(self._src[row]), dst, payload, kind, int(self._sent[row])
            )
        shared = self._shared[row]
        if shared is None:
            shared = self._shared[row] = SharedEnvelope(
                int(self._src[row]), payload, kind, int(self._sent[row])
            )
        return EnvelopeView(shared, dst)

    def cache(self, name: str, factory):
        """Fetch-or-create a protocol-owned decoded-payload cache.

        The store is shared by every process of a run, so fields decoded
        into a cache (e.g. Protocol D's per-payload phase/done/S/T word
        rows) are computed once per payload id instead of once per
        delivered copy.
        """
        cache = self._caches.get(name)
        if cache is None:
            cache = self._caches[name] = factory()
        return cache


class ColumnarInbox:
    """One drain's worth of mail, as columns plus a lazy object view.

    Sequence-compatible with the slow path's ``List[Envelope]``: ``len``,
    truthiness, iteration, indexing and slicing all materialise (and
    memoize) the identical envelope objects in identical order.  Column
    accessors hand protocols the underlying arrays so a vectorized
    consumer never materialises anything.
    """

    __slots__ = ("store", "dst", "rows", "_objects")

    def __init__(self, store: ColumnarMailboxes, dst: int, rows):
        self.store = store
        self.dst = dst
        self.rows = rows
        self._objects: Optional[list] = None

    # ---- sequence protocol (slow-path compatibility) -----------------

    def _materialize(self) -> list:
        objects = self._objects
        if objects is None:
            store = self.store
            dst = self.dst
            objects = self._objects = [
                store.envelope(row, dst) for row in self.rows.tolist()
            ]
        return objects

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return len(self.rows) > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarInbox(dst={self.dst}, rows={self.rows.tolist()})"

    # ---- column accessors (the protocol fast path) -------------------

    def srcs(self):
        return self.store._src[self.rows]

    def sent_rounds(self):
        return self.store._sent[self.rows]

    def kind_codes(self):
        return self.store._kind[self.rows]

    def payload_ids(self):
        return self.store._payload_id[self.rows]
