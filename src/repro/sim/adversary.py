"""Adversary strategies.

The paper's theorems are worst-case statements over all crash patterns;
its proofs motivate several concrete "hard" schedules.  This module
implements those plus general-purpose scripted and randomised
adversaries.  All adversaries are deterministic functions of their
configuration and the engine's seed.

Declarative specs
-----------------

Every adversary is also constructible from a *spec* - a string or a
JSON-compatible dict - via :func:`adversary_from_spec`, which is what
the :class:`repro.api.Scenario` layer, the CLI's ``--adversary`` flag
and the sweep batteries use.  The string grammar is::

    KIND                      e.g.  "kill-active"
    KIND:ARG,ARG,...          e.g.  "random:5,max_action_index=25"

where each ``ARG`` is positional or ``name=value``; values may be ints,
floats, ``true``/``false``, ``a..b`` inclusive int ranges, ``a+b+c``
lists, and ``PIDxUNITS`` pairs (for ``staggered``).  The dict form is
``{"kind": ..., <param>: ...}`` and covers everything the constructors
do (``fixed-schedule`` directives, ``compose`` parts).  See
``docs/api.md`` for the full grammar table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.actions import Action, iter_dsts
from repro.sim.crashes import (
    CrashDirective,
    CrashPhase,
    RepairSpec,
    draw_repair_delay,
    normalize_repair_spec,
)
from repro.sim.engine import Adversary, Engine
from repro.sim.specs import bind_positionals, split_spec_string, to_int, to_number


class NoFailures(Adversary):
    """The failure-free execution (the paper's common case for Protocol D)."""


class FixedSchedule(Adversary):
    """Crash exactly the given directives, each at its scheduled round.

    Directives whose round falls in a quiescent stretch are applied at the
    victim's next action, which is observationally identical.
    """

    def __init__(self, directives: Iterable[CrashDirective]):
        self.pending: List[CrashDirective] = sorted(
            directives, key=lambda d: (d.at_round, d.pid)
        )

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        due = [d for d in self.pending if d.at_round <= round_number]
        if due:
            self.pending = [d for d in self.pending if d.at_round > round_number]
        return due


class RandomCrashes(Adversary):
    """Crash ``count`` random victims at random action opportunities.

    Each victim is assigned a countdown of *observed actions*: it crashes
    on its ``k``-th action after the run starts (``k`` uniform in
    ``1..max_action_index``), with a random crash phase.  Expressing the
    schedule in actions rather than absolute rounds keeps the adversary
    meaningful for protocols whose executions are mostly quiescent
    (Protocol C) as well as for dense ones (Protocol D).
    """

    def __init__(
        self,
        count: int,
        *,
        max_action_index: int = 40,
        phases: Sequence[CrashPhase] = tuple(CrashPhase),
        victims: Optional[Sequence[int]] = None,
    ):
        if count < 0:
            raise ConfigurationError(f"crash count must be non-negative, got {count!r}")
        self.count = count
        self.max_action_index = max(1, max_action_index)
        self.phases = tuple(phases)
        self.explicit_victims = list(victims) if victims is not None else None
        self._countdown: Dict[int, int] = {}
        self._armed = False

    def _arm(self, engine: Engine) -> None:
        population = (
            self.explicit_victims
            if self.explicit_victims is not None
            else list(range(engine.t))
        )
        budget = min(self.count, max(0, engine.t - 1), len(population))
        victims = self.rng.sample(population, budget)
        for victim in victims:
            self._countdown[victim] = self.rng.randint(1, self.max_action_index)
        self._armed = True

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if not self._armed:
            self._arm(engine)
        directives = []
        for pid in list(actions):
            if pid not in self._countdown:
                continue
            self._countdown[pid] -= 1
            if self._countdown[pid] <= 0:
                del self._countdown[pid]
                directives.append(
                    CrashDirective(
                        pid=pid,
                        at_round=round_number,
                        phase=self.rng.choice(self.phases),
                    )
                )
        return directives


class KillActive(Adversary):
    """Crash the active process after it performs a few actions.

    This is the adversary implicit in the paper's redo accounting
    (Theorem 2.3): each takeover forces the maximal amount of repeated
    work and resent checkpoints.  ``actions_before_kill`` controls how
    long each active process survives after taking over; ``budget`` is
    the number of kills (at most ``t - 1``).
    """

    def __init__(
        self,
        budget: int,
        *,
        actions_before_kill: int = 1,
        phase: CrashPhase = CrashPhase.AFTER_WORK,
    ):
        self.budget = budget
        self.actions_before_kill = max(1, actions_before_kill)
        self.phase = phase
        self._current_victim: Optional[int] = None
        self._seen_actions = 0

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if self.budget <= 0:
            return []
        active = [pid for pid in engine.active_pids() if pid in actions]
        if not active:
            return []
        pid = active[0]
        if pid != self._current_victim:
            self._current_victim = pid
            self._seen_actions = 0
        self._seen_actions += 1
        if self._seen_actions < self.actions_before_kill:
            return []
        if engine.crashed_count >= engine.t - 1:
            return []
        self.budget -= 1
        self._current_victim = None
        return [CrashDirective(pid=pid, at_round=round_number, phase=self.phase)]


class KillBeforeCheckpoint(Adversary):
    """Crash the active process the moment it attempts a broadcast.

    This is the worst case for checkpointing schemes: everything the
    victim performed since its last successful checkpoint is lost (the
    paper's "up to n/k units of work are lost when a process fails").
    Against the single-level checkpointer each kill wastes a full
    checkpoint interval; against Protocols A and B it exercises the
    checkpoint-completion logic of the takeover dispatch.
    """

    def __init__(self, budget: int):
        self.budget = budget

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if self.budget <= 0:
            return []
        directives = []
        for pid, action in actions.items():
            process = engine.processes[pid]
            if not process.is_active or not action.sends:
                continue
            if engine.crashed_count >= engine.t - 1:
                continue
            if self.budget <= 0:
                break
            self.budget -= 1
            directives.append(
                CrashDirective(
                    pid=pid, at_round=round_number, phase=CrashPhase.BEFORE_ACTION
                )
            )
        return directives


class Cascade(Adversary):
    """The Section 3 lower-bound scenario for naive knowledge spreading.

    Process 0 runs until it has performed ``lead_units`` units and then
    crashes after its work but before reporting; the upper half of the
    process space is dead from the start; thereafter every process that
    becomes active is killed as soon as it has redone ``redo_units``
    units.  Against the naive algorithm this forces ``Theta(t^2)`` work;
    Protocol C's fault detection is designed to defeat exactly this.
    """

    def __init__(
        self,
        *,
        lead_units: int,
        redo_units: int = 1,
        initial_dead: Sequence[int] = (),
        budget: Optional[int] = None,
    ):
        self.lead_units = lead_units
        self.redo_units = max(1, redo_units)
        self.initial_dead = list(initial_dead)
        self.budget = budget
        self._did_initial = False
        self._work_seen: Dict[int, int] = {}

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives: List[CrashDirective] = []
        if not self._did_initial:
            self._did_initial = True
            directives.extend(
                CrashDirective(pid=pid, at_round=round_number)
                for pid in self.initial_dead
            )
        for pid, action in actions.items():
            if action.work is None:
                continue
            self._work_seen[pid] = self._work_seen.get(pid, 0) + 1
            threshold = self.lead_units if pid == 0 else self.redo_units
            if self._work_seen[pid] == threshold:
                if self.budget is not None and self.budget <= 0:
                    continue
                if engine.crashed_count >= engine.t - 1:
                    continue
                if self.budget is not None:
                    self.budget -= 1
                directives.append(
                    CrashDirective(
                        pid=pid, at_round=round_number, phase=CrashPhase.AFTER_WORK
                    )
                )
        return directives


@dataclass
class _StaggeredKill:
    pid: int
    after_work_units: int


class StaggeredWorkKills(Adversary):
    """Crash given victims after they have each performed a quota of units.

    Used for Protocol D: killing ``k`` processes during each work phase
    (after they have done part of their share) exercises the agreement
    phase's failure discovery and the work-redistribution path.
    """

    def __init__(self, kills: Iterable[_StaggeredKill]):
        self._quota: Dict[int, int] = {
            kill.pid: kill.after_work_units for kill in kills
        }
        self._done: Dict[int, int] = {}

    @classmethod
    def plan(cls, pairs: Iterable[Sequence[int]]) -> "StaggeredWorkKills":
        return cls(_StaggeredKill(pid, units) for pid, units in pairs)

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives = []
        for pid, action in actions.items():
            if pid not in self._quota or action.work is None:
                continue
            self._done[pid] = self._done.get(pid, 0) + 1
            if self._done[pid] >= self._quota[pid]:
                del self._quota[pid]
                if engine.crashed_count >= engine.t - 1:
                    continue
                directives.append(
                    CrashDirective(
                        pid=pid, at_round=round_number, phase=CrashPhase.AFTER_WORK
                    )
                )
        return directives


class CrashMidBroadcast(Adversary):
    """Crash each victim the first time it sends a batch of at least
    ``min_batch`` messages, delivering a random strict subset.

    Exercises the paper's partial-broadcast semantics, the trickiest part
    of the takeover logic in Protocols A and B.
    """

    def __init__(self, victims: Sequence[int], *, min_batch: int = 2):
        self.victims = set(victims)
        self.min_batch = min_batch

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives = []
        for pid, action in actions.items():
            if pid in self.victims and len(action.sends) >= self.min_batch:
                if engine.crashed_count >= engine.t - 1:
                    continue
                self.victims.discard(pid)
                # iter_dsts walks packed and legacy batches in the same
                # (committed) order, so RNG draws per destination match
                # across the two spellings - without expanding a packed
                # Broadcast into per-copy Send objects.
                keep = frozenset(
                    dst
                    for dst in iter_dsts(action.sends)
                    if self.rng.random() < 0.5
                )
                directives.append(
                    CrashDirective(
                        pid=pid,
                        at_round=round_number,
                        phase=CrashPhase.DURING_SEND,
                        keep=keep,
                    )
                )
        return directives


class RecoveringCrashes(Adversary):
    """Crash-recover faults: random victims crash and rejoin later.

    Like :class:`RandomCrashes`, each victim gets a countdown of observed
    actions (uniform in ``1..max_action_index``), but every directive
    carries ``recover_after=repair_delay``: the victim rejoins that many
    rounds later, restored to its last checkpoint.  ``repair_delay`` is a
    *repair spec* - a fixed int, or a ``"uniform:2,6"`` /
    ``"exp:mean=3"`` distribution drawn per directive from this
    adversary's seeded RNG (see :mod:`repro.sim.crashes`).  Only
    recovery-aware protocols (``Process.supports_recovery``) accept such
    directives - the engine rejects the spec on any other protocol.
    With ``repeat=True`` a recovered victim is re-armed with a fresh
    countdown and crashes again, for as long as the run lasts.
    """

    def __init__(
        self,
        count: int,
        *,
        repair_delay: RepairSpec = 8,
        max_action_index: int = 40,
        phases: Sequence[CrashPhase] = tuple(CrashPhase),
        victims: Optional[Sequence[int]] = None,
        repeat: bool = False,
    ):
        if count < 0:
            raise ConfigurationError(f"crash count must be non-negative, got {count!r}")
        self.count = count
        self.repair_delay = normalize_repair_spec(
            repair_delay, what="'repair_delay' for adversary 'crash-recover'"
        )
        self.max_action_index = max(1, max_action_index)
        self.phases = tuple(phases)
        self.explicit_victims = list(victims) if victims is not None else None
        self.repeat = repeat
        self._countdown: Dict[int, int] = {}
        self._armed = False

    def _arm(self, engine: Engine) -> None:
        population = (
            self.explicit_victims
            if self.explicit_victims is not None
            else list(range(engine.t))
        )
        budget = min(self.count, max(0, engine.t - 1), len(population))
        for victim in self.rng.sample(population, budget):
            self._countdown[victim] = self.rng.randint(1, self.max_action_index)
        self._armed = True

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if not self._armed:
            self._arm(engine)
        directives = []
        for pid in list(actions):
            if pid not in self._countdown:
                continue
            self._countdown[pid] -= 1
            if self._countdown[pid] > 0:
                continue
            if engine.crashed_count >= engine.t - 1:
                # Re-check later rather than over-kill; the countdown
                # stays at zero so the victim crashes on its next action.
                self._countdown[pid] = 1
                continue
            directives.append(
                CrashDirective(
                    pid=pid,
                    at_round=round_number,
                    phase=self.rng.choice(self.phases),
                    recover_after=draw_repair_delay(self.repair_delay, self.rng),
                )
            )
            if self.repeat:
                # Fresh countdown: it only ticks once the victim is back
                # (crashed processes take no actions).
                self._countdown[pid] = self.rng.randint(1, self.max_action_index)
            else:
                del self._countdown[pid]
        return directives


class RackFailures(Adversary):
    """Correlated crashes: whole groups ("racks") of pids die together.

    Pids are partitioned into consecutive groups of ``group_size``
    (or taken from an explicit ``groups`` list); ``racks`` of them are
    sampled to fail, each at its own trigger point measured in
    *cumulative observed actions* (uniform in ``1..max_trigger``), so the
    kill lands mid-execution for dense and sparse protocols alike.  Every
    member of a triggered rack gets the same directive; with
    ``recover_after`` set the whole rack rejoins together - correlated
    crash-recover (a repair spec like ``"uniform:2,6"`` is drawn **once
    per rack**, so the rack still rejoins as one).  The last-survivor
    guard is respected by truncating a rack kill rather than
    over-killing.
    """

    def __init__(
        self,
        racks: int,
        *,
        group_size: int = 4,
        groups: Optional[Sequence[Sequence[int]]] = None,
        max_trigger: int = 30,
        phase: CrashPhase = CrashPhase.BEFORE_ACTION,
        recover_after: Optional[RepairSpec] = None,
    ):
        if racks < 0:
            raise ConfigurationError(f"rack count must be non-negative, got {racks!r}")
        if group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {group_size!r}")
        if recover_after is not None:
            recover_after = normalize_repair_spec(
                recover_after, what="'recover_after' for adversary 'rack'"
            )
        self.racks = racks
        self.group_size = group_size
        self.explicit_groups = (
            [list(group) for group in groups] if groups is not None else None
        )
        self.max_trigger = max(1, max_trigger)
        self.phase = phase
        self.recover_after = recover_after
        self._triggers: List[Tuple[int, List[int]]] = []  # (threshold, members)
        self._seen_actions = 0
        self._armed = False

    def _arm(self, engine: Engine) -> None:
        if self.explicit_groups is not None:
            groups = self.explicit_groups
        else:
            pids = list(range(engine.t))
            groups = [
                pids[start : start + self.group_size]
                for start in range(0, engine.t, self.group_size)
            ]
        budget = min(self.racks, len(groups))
        chosen = self.rng.sample(range(len(groups)), budget)
        self._triggers = sorted(
            (self.rng.randint(1, self.max_trigger), groups[index])
            for index in sorted(chosen)
        )
        self._armed = True

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if not self._armed:
            self._arm(engine)
        self._seen_actions += len(actions)
        if not self._triggers or self._triggers[0][0] > self._seen_actions:
            return []
        directives: List[CrashDirective] = []
        projected = engine.crashed_count
        while self._triggers and self._triggers[0][0] <= self._seen_actions:
            _, members = self._triggers.pop(0)
            # One repair draw per rack: every member rejoins together.
            rejoin = (
                draw_repair_delay(self.recover_after, self.rng)
                if self.recover_after is not None
                else None
            )
            for pid in members:
                if not 0 <= pid < engine.t or engine.processes[pid].retired:
                    continue
                if projected >= engine.t - 1:
                    break
                projected += 1
                directives.append(
                    CrashDirective(
                        pid=pid,
                        at_round=round_number,
                        phase=self.phase,
                        recover_after=rejoin,
                    )
                )
        return directives


class NeighbourCascade(Adversary):
    """Cascading crashes: failures spread to ring neighbours.

    Each ``origin`` crashes at the adversary's first opportunity; every
    crash then infects the victim's ring neighbours (``pid +- 1`` mod
    ``t``) independently with probability ``p``, ``hop_delay`` rounds
    later, and those crashes cascade in turn.  ``budget`` caps the total
    number of crashes (origins included); ``recover_after`` turns the
    cascade into a rolling outage where victims rejoin (a repair spec
    like ``"exp:mean=3"`` is drawn per victim).  All coin flips happen
    at infection time in ascending-neighbour order, so the whole cascade
    is a deterministic function of the seed.
    """

    def __init__(
        self,
        origins: Sequence[int],
        *,
        p: float = 0.5,
        hop_delay: int = 1,
        budget: Optional[int] = None,
        phase: CrashPhase = CrashPhase.BEFORE_ACTION,
        recover_after: Optional[RepairSpec] = None,
    ):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"hop probability must be in [0, 1], got {p!r}")
        if hop_delay < 1:
            raise ConfigurationError(f"hop_delay must be >= 1, got {hop_delay!r}")
        if recover_after is not None:
            recover_after = normalize_repair_spec(
                recover_after,
                what="'recover_after' for adversary 'cascade-neighbours'",
            )
        self.origins = list(origins)
        self.p = p
        self.hop_delay = hop_delay
        self.budget = budget
        self.phase = phase
        self.recover_after = recover_after
        self._pending: Dict[int, int] = {}  # pid -> crash round
        self._infected: set = set()
        self._armed = False

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if not self._armed:
            for origin in self.origins:
                if 0 <= origin < engine.t:
                    self._pending[origin] = round_number
                    self._infected.add(origin)
            self._armed = True
        due = sorted(
            pid for pid, at in self._pending.items() if at <= round_number
        )
        if not due:
            return []
        directives: List[CrashDirective] = []
        projected = engine.crashed_count
        for pid in due:
            del self._pending[pid]
            if engine.processes[pid].retired:
                continue
            if self.budget is not None and self.budget <= 0:
                continue
            if projected >= engine.t - 1:
                continue
            projected += 1
            if self.budget is not None:
                self.budget -= 1
            directives.append(
                CrashDirective(
                    pid=pid,
                    at_round=round_number,
                    phase=self.phase,
                    recover_after=(
                        draw_repair_delay(self.recover_after, self.rng)
                        if self.recover_after is not None
                        else None
                    ),
                )
            )
            for neighbour in sorted(
                {(pid - 1) % engine.t, (pid + 1) % engine.t}
            ):
                if neighbour in self._infected:
                    continue
                if self.rng.random() < self.p:
                    self._infected.add(neighbour)
                    self._pending[neighbour] = round_number + self.hop_delay
        return directives


def compose(*adversaries: Adversary) -> Adversary:
    """Run several adversaries side by side (union of their directives)."""

    class _Composite(Adversary):
        def bind(self, engine: Engine) -> None:
            super().bind(engine)
            for adversary in adversaries:
                adversary.bind(engine)

        def decide(self, round_number, actions, engine):
            directives = []
            for adversary in adversaries:
                directives.extend(adversary.decide(round_number, actions, engine))
            return directives

    return _Composite()


# =====================================================================
# Declarative adversary specs
# =====================================================================

#: What the spec-accepting entry points take: ``None`` (no failures), a
#: grammar string, a JSON-compatible dict, or an already-built instance.
AdversarySpec = Union[None, str, Dict[str, object], Adversary]

_NONE_KINDS = {"none", "no-failures", "nofailures"}


def _coerce_phase(value) -> CrashPhase:
    if isinstance(value, CrashPhase):
        return value
    name = str(value).strip().lower().replace("-", "_")
    for phase in CrashPhase:
        if phase.value == name or phase.name.lower() == name:
            return phase
    raise ConfigurationError(
        f"unknown crash phase {value!r}; known phases: "
        + ", ".join(p.value for p in CrashPhase)
    )


def _coerce_value(text: str):
    """Parse one string-grammar value: scalar, ``a..b`` range, ``a+b``
    list, or ``AxB`` pair."""
    text = text.strip()
    if ".." in text:
        lo, _, hi = text.partition("..")
        try:
            return list(range(int(lo), int(hi) + 1))
        except ValueError:
            raise ConfigurationError(f"bad range value {text!r}; expected INT..INT")
    if "+" in text:
        return [_coerce_value(part) for part in text.split("+")]
    if "x" in text:
        head, _, tail = text.partition("x")
        if head.strip().isdigit() and tail.strip().isdigit():
            return [int(head), int(tail)]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _pid_list(value, *, what: str) -> List[int]:
    if isinstance(value, int):
        return [value]
    if isinstance(value, (list, tuple)):
        return [to_int(v, what=f"each pid in {what}") for v in value]
    raise ConfigurationError(f"{what} must be an int or a list of ints, got {value!r}")


def _int_param(params, name: str, kind: str, *, minimum: Optional[int] = None) -> int:
    return to_int(
        params[name], what=f"{name!r} for adversary {kind!r}", minimum=minimum
    )


def _build_random(params) -> Adversary:
    kwargs = {}
    if "max_action_index" in params:
        kwargs["max_action_index"] = _int_param(params, "max_action_index", "random")
    if params.get("victims") is not None:
        kwargs["victims"] = _pid_list(params["victims"], what="'victims'")
    if params.get("phases") is not None:
        phases = params["phases"]
        if not isinstance(phases, (list, tuple)):
            phases = [phases]
        kwargs["phases"] = tuple(_coerce_phase(p) for p in phases)
    return RandomCrashes(_int_param(params, "count", "random"), **kwargs)


def _build_crash_recover(params) -> Adversary:
    kind = "crash-recover"
    kwargs = {}
    if "repair_delay" in params:
        kwargs["repair_delay"] = params["repair_delay"]  # ctor normalizes
    if "max_action_index" in params:
        kwargs["max_action_index"] = _int_param(params, "max_action_index", kind)
    if params.get("victims") is not None:
        kwargs["victims"] = _pid_list(params["victims"], what="'victims'")
    if params.get("phases") is not None:
        phases = params["phases"]
        if not isinstance(phases, (list, tuple)):
            phases = [phases]
        kwargs["phases"] = tuple(_coerce_phase(p) for p in phases)
    if "repeat" in params:
        kwargs["repeat"] = bool(params["repeat"])
    return RecoveringCrashes(_int_param(params, "count", kind), **kwargs)


def _build_rack(params) -> Adversary:
    kind = "rack"
    kwargs = {}
    if "group_size" in params:
        kwargs["group_size"] = _int_param(params, "group_size", kind, minimum=1)
    if params.get("groups") is not None:
        groups = params["groups"]
        if not isinstance(groups, (list, tuple)) or not groups:
            raise ConfigurationError(
                "'groups' for adversary 'rack' must be a non-empty list of "
                f"pid lists, got {groups!r}"
            )
        # The string grammar parses "0+1+2" as one flat pid list - treat
        # that as a single group.
        if all(isinstance(v, int) for v in groups):
            groups = [groups]
        kwargs["groups"] = [
            _pid_list(group, what="each group in 'groups'") for group in groups
        ]
    if "max_trigger" in params:
        kwargs["max_trigger"] = _int_param(params, "max_trigger", kind, minimum=1)
    if "phase" in params:
        kwargs["phase"] = _coerce_phase(params["phase"])
    if params.get("recover_after") is not None:
        kwargs["recover_after"] = params["recover_after"]  # ctor normalizes
    return RackFailures(_int_param(params, "racks", kind), **kwargs)


def _build_cascade_neighbours(params) -> Adversary:
    kind = "cascade-neighbours"
    kwargs = {}
    if "p" in params:
        kwargs["p"] = to_number(params["p"], what=f"'p' for adversary {kind!r}")
    if "hop_delay" in params:
        kwargs["hop_delay"] = _int_param(params, "hop_delay", kind, minimum=1)
    if params.get("budget") is not None:
        kwargs["budget"] = _int_param(params, "budget", kind)
    if "phase" in params:
        kwargs["phase"] = _coerce_phase(params["phase"])
    if params.get("recover_after") is not None:
        kwargs["recover_after"] = params["recover_after"]  # ctor normalizes
    return NeighbourCascade(
        _pid_list(params["origins"], what="'origins'"), **kwargs
    )


def _build_kill_active(params) -> Adversary:
    kwargs = {}
    if "actions_before_kill" in params:
        kwargs["actions_before_kill"] = _int_param(
            params, "actions_before_kill", "kill-active"
        )
    if "phase" in params:
        kwargs["phase"] = _coerce_phase(params["phase"])
    return KillActive(_int_param(params, "budget", "kill-active"), **kwargs)


def _build_kill_before_checkpoint(params) -> Adversary:
    return KillBeforeCheckpoint(_int_param(params, "budget", "kill-before-checkpoint"))


def _build_cascade(params) -> Adversary:
    kwargs = {}
    if "redo_units" in params:
        kwargs["redo_units"] = _int_param(params, "redo_units", "cascade")
    if params.get("initial_dead") is not None:
        kwargs["initial_dead"] = _pid_list(params["initial_dead"], what="'initial_dead'")
    if params.get("budget") is not None:
        kwargs["budget"] = _int_param(params, "budget", "cascade")
    return Cascade(lead_units=_int_param(params, "lead_units", "cascade"), **kwargs)


def _build_staggered(params) -> Adversary:
    kills = params["kills"]
    if (
        isinstance(kills, (list, tuple))
        and len(kills) == 2
        and all(isinstance(v, int) for v in kills)
    ):
        kills = [kills]  # a single PIDxUNITS pair parses as one flat [pid, units]
    pairs = []
    for pair in kills:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ConfigurationError(
                "'kills' for the 'staggered' adversary must be [pid, units] "
                f"pairs (string form: 0x2+3x1), got {pair!r}"
            )
        pairs.append(
            (
                to_int(pair[0], what="each kill pid for adversary 'staggered'"),
                to_int(pair[1], what="each kill unit count for adversary 'staggered'"),
            )
        )
    return StaggeredWorkKills.plan(pairs)


def _build_crash_mid_broadcast(params) -> Adversary:
    kwargs = {}
    if "min_batch" in params:
        kwargs["min_batch"] = _int_param(params, "min_batch", "crash-mid-broadcast")
    return CrashMidBroadcast(_pid_list(params["victims"], what="'victims'"), **kwargs)


def _build_fixed_schedule(params) -> Adversary:
    directives = []
    raw = params["directives"]
    if not isinstance(raw, (list, tuple)):
        raise ConfigurationError(
            "'directives' for the 'fixed-schedule' adversary must be a list "
            f"of {{pid, at_round, phase?, keep?, recover_after?}} dicts, "
            f"got {raw!r}"
        )
    for item in raw:
        if not isinstance(item, dict):
            raise ConfigurationError(
                f"each fixed-schedule directive must be a dict, got {item!r}"
            )
        unknown = set(item) - {"pid", "at_round", "phase", "keep", "recover_after"}
        if unknown:
            raise ConfigurationError(
                f"unknown directive field(s) {sorted(unknown)}; "
                "accepted: pid, at_round, phase, keep, recover_after"
            )
        kwargs = {
            "pid": to_int(item["pid"], what="directive 'pid'"),
            "at_round": to_int(item.get("at_round", 0), what="directive 'at_round'"),
        }
        if "phase" in item:
            kwargs["phase"] = _coerce_phase(item["phase"])
        if item.get("keep") is not None:
            kwargs["keep"] = frozenset(_pid_list(item["keep"], what="'keep'"))
        if item.get("recover_after") is not None:
            kwargs["recover_after"] = to_int(
                item["recover_after"], what="directive 'recover_after'", minimum=1
            )
        directives.append(CrashDirective(**kwargs))
    return FixedSchedule(directives)


def _build_compose(params) -> Adversary:
    parts = params["parts"]
    if not isinstance(parts, (list, tuple)) or not parts:
        raise ConfigurationError(
            "'parts' for the 'compose' adversary must be a non-empty list of specs"
        )
    built = [adversary_from_spec(part) for part in parts]
    live = [adv for adv in built if adv is not None]
    if not live:
        return NoFailures()
    return compose(*live)


@dataclass(frozen=True)
class _SpecKind:
    """One entry of the spec grammar: the params it accepts, which of
    them map from positional string-grammar args, and its factory."""

    name: str
    positional: Sequence[str]
    required: Sequence[str]
    optional: Sequence[str]
    factory: Callable[[Dict[str, object]], Adversary]
    summary: str = ""

    @property
    def accepted(self) -> List[str]:
        return list(self.required) + list(self.optional)


_SPEC_KINDS: Dict[str, _SpecKind] = {}


def _register_kind(name, positional, required, optional, factory, summary="") -> None:
    _SPEC_KINDS[name] = _SpecKind(
        name, positional, required, optional, factory, summary
    )


_register_kind(
    "random", ("count",), ("count",),
    ("max_action_index", "victims", "phases"), _build_random,
    "crash N random victims at random action opportunities",
)
_register_kind(
    "crash-recover", ("count",), ("count",),
    ("repair_delay", "max_action_index", "victims", "phases", "repeat"),
    _build_crash_recover,
    "random victims crash, then rejoin from their checkpoint after "
    "repair_delay rounds (needs a recovery-aware protocol)",
)
_register_kind(
    "rack", ("racks",), ("racks",),
    ("group_size", "groups", "max_trigger", "phase", "recover_after"),
    _build_rack,
    "correlated failures: kill whole pid groups at once; optional "
    "recover_after rejoins the rack",
)
_register_kind(
    "cascade-neighbours", ("origins",), ("origins",),
    ("p", "hop_delay", "budget", "phase", "recover_after"),
    _build_cascade_neighbours,
    "crashes spread to ring neighbours with per-hop probability p",
)
_register_kind(
    "kill-active", ("budget",), ("budget",),
    ("actions_before_kill", "phase"), _build_kill_active,
    "crash each active process after a few actions (Theorem 2.3 redo bound)",
)
_register_kind(
    "kill-before-checkpoint", ("budget",), ("budget",), (),
    _build_kill_before_checkpoint,
    "crash the active process the moment it attempts a broadcast",
)
_register_kind(
    "cascade", ("lead_units",), ("lead_units",),
    ("redo_units", "initial_dead", "budget"), _build_cascade,
    "the Section 3 lower-bound schedule for naive knowledge spreading",
)
_register_kind(
    "staggered", ("kills",), ("kills",), (), _build_staggered,
    "crash given victims after per-victim work quotas (0x2+3x1)",
)
_register_kind(
    "crash-mid-broadcast", ("victims",), ("victims",),
    ("min_batch",), _build_crash_mid_broadcast,
    "crash victims mid-broadcast, delivering a random subset",
)
_register_kind(
    "fixed-schedule", (), ("directives",), (), _build_fixed_schedule,
    "crash exactly the given {pid, at_round, phase?, keep?, recover_after?} "
    "directives",
)
_register_kind(
    "compose", (), ("parts",), (), _build_compose,
    "run several adversary specs side by side",
)


def available_adversary_kinds() -> List[str]:
    """Spec kinds accepted by :func:`adversary_from_spec` (plus ``none``)."""
    return sorted(_SPEC_KINDS) + ["none"]


def adversary_kind_info() -> List[Dict[str, object]]:
    """Machine-readable grammar table: one entry per spec kind, with its
    required/optional parameters and which of them bind positionally in
    the string grammar.  This is what ``repro adversaries`` prints."""
    info: List[Dict[str, object]] = [
        {
            "kind": name,
            "summary": spec_kind.summary,
            "positional": list(spec_kind.positional),
            "required": list(spec_kind.required),
            "optional": list(spec_kind.optional),
        }
        for name, spec_kind in sorted(_SPEC_KINDS.items())
    ]
    info.append(
        {
            "kind": "none",
            "summary": "the failure-free execution",
            "positional": [],
            "required": [],
            "optional": [],
        }
    )
    return info


def _canonical_kind(kind: str) -> str:
    key = kind.strip().lower().replace("_", "-")
    if key in _NONE_KINDS:
        return "none"
    if key not in _SPEC_KINDS:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; known kinds: "
            + ", ".join(available_adversary_kinds())
        )
    return key


def _parse_spec_string(text: str) -> Dict[str, object]:
    kind_raw, positional, named = split_spec_string(text)
    kind = _canonical_kind(kind_raw)
    params: Dict[str, object] = {"kind": kind}
    if kind == "none":
        if positional or named:
            raise ConfigurationError("the 'none' adversary takes no arguments")
        return params
    spec_kind = _SPEC_KINDS[kind]
    bound = bind_positionals(
        kind, tuple(spec_kind.positional), positional, what="adversary kind"
    )
    for name, value in {**bound, **named}.items():
        params[name] = _coerce_value(value)
    return params


def normalize_adversary_spec(spec: AdversarySpec) -> Optional[Dict[str, object]]:
    """Canonicalise ``spec`` to ``None`` or a validated, JSON-compatible
    ``{"kind": ..., <param>: ...}`` dict.

    Raises :class:`ConfigurationError` for unknown kinds or parameters,
    and for live :class:`Adversary` instances (which cannot round-trip
    through JSON - pass a spec instead).
    """
    if spec is None:
        return None
    if isinstance(spec, Adversary):
        raise ConfigurationError(
            f"a live {type(spec).__name__} instance is not serializable; "
            "pass a string or dict adversary spec instead "
            f"(known kinds: {', '.join(available_adversary_kinds())})"
        )
    if isinstance(spec, str):
        params = _parse_spec_string(spec)
    elif isinstance(spec, dict):
        if "kind" not in spec:
            raise ConfigurationError(
                "adversary spec dicts need a 'kind' key; known kinds: "
                + ", ".join(available_adversary_kinds())
            )
        params = {
            (k if k == "kind" else str(k).replace("-", "_")): v
            for k, v in spec.items()
        }
        params["kind"] = _canonical_kind(str(spec["kind"]))
    else:
        raise ConfigurationError(
            f"adversary spec must be None, a string, or a dict, got {type(spec).__name__}"
        )
    kind = params["kind"]
    if kind == "none":
        extra = set(params) - {"kind"}
        if extra:
            raise ConfigurationError("the 'none' adversary takes no parameters")
        return None
    spec_kind = _SPEC_KINDS[kind]
    unknown = set(params) - {"kind"} - set(spec_kind.accepted)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for adversary kind "
            f"{kind!r}; accepted: {', '.join(spec_kind.accepted)}"
        )
    missing = set(spec_kind.required) - set(params)
    if missing:
        raise ConfigurationError(
            f"adversary kind {kind!r} requires parameter(s) "
            f"{sorted(missing)}; accepted: {', '.join(spec_kind.accepted)}"
        )
    if kind == "compose":
        if not isinstance(params["parts"], (list, tuple)) or not params["parts"]:
            raise ConfigurationError(
                "'parts' for the 'compose' adversary must be a non-empty list of specs"
            )
        params["parts"] = [normalize_adversary_spec(part) for part in params["parts"]]
    # Canonicalise repair specs so spelling variants ("uniform:2,6" vs.
    # "uniform:2-6" vs. the dict form) serialize - and content-address -
    # identically, and so bad values fail here, naming the value.
    if kind == "crash-recover" and "repair_delay" in params:
        params["repair_delay"] = normalize_repair_spec(
            params["repair_delay"],
            what="'repair_delay' for adversary 'crash-recover'",
        )
    if kind in ("rack", "cascade-neighbours") and params.get("recover_after") is not None:
        params["recover_after"] = normalize_repair_spec(
            params["recover_after"], what=f"'recover_after' for adversary {kind!r}"
        )
    return params


def adversary_from_spec(spec: AdversarySpec) -> Optional[Adversary]:
    """Build a fresh adversary from a declarative spec.

    ``None`` and the ``"none"`` kind yield ``None`` (failure-free run);
    a live :class:`Adversary` instance passes through unchanged (but see
    :func:`normalize_adversary_spec` about serializability).  Every call
    returns a *new* instance, so one spec can seed many runs.
    """
    if isinstance(spec, Adversary):
        return spec
    params = normalize_adversary_spec(spec)
    if params is None:
        return None
    return _SPEC_KINDS[params["kind"]].factory(params)
