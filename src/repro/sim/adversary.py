"""Adversary strategies.

The paper's theorems are worst-case statements over all crash patterns;
its proofs motivate several concrete "hard" schedules.  This module
implements those plus general-purpose scripted and randomised
adversaries.  All adversaries are deterministic functions of their
configuration and the engine's seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.actions import Action
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Adversary, Engine


class NoFailures(Adversary):
    """The failure-free execution (the paper's common case for Protocol D)."""


class FixedSchedule(Adversary):
    """Crash exactly the given directives, each at its scheduled round.

    Directives whose round falls in a quiescent stretch are applied at the
    victim's next action, which is observationally identical.
    """

    def __init__(self, directives: Iterable[CrashDirective]):
        self.pending: List[CrashDirective] = sorted(
            directives, key=lambda d: (d.at_round, d.pid)
        )

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        due = [d for d in self.pending if d.at_round <= round_number]
        if due:
            self.pending = [d for d in self.pending if d.at_round > round_number]
        return due


class RandomCrashes(Adversary):
    """Crash ``count`` random victims at random action opportunities.

    Each victim is assigned a countdown of *observed actions*: it crashes
    on its ``k``-th action after the run starts (``k`` uniform in
    ``1..max_action_index``), with a random crash phase.  Expressing the
    schedule in actions rather than absolute rounds keeps the adversary
    meaningful for protocols whose executions are mostly quiescent
    (Protocol C) as well as for dense ones (Protocol D).
    """

    def __init__(
        self,
        count: int,
        *,
        max_action_index: int = 40,
        phases: Sequence[CrashPhase] = tuple(CrashPhase),
        victims: Optional[Sequence[int]] = None,
    ):
        if count < 0:
            raise ConfigurationError("crash count must be non-negative")
        self.count = count
        self.max_action_index = max(1, max_action_index)
        self.phases = tuple(phases)
        self.explicit_victims = list(victims) if victims is not None else None
        self._countdown: Dict[int, int] = {}
        self._armed = False

    def _arm(self, engine: Engine) -> None:
        population = (
            self.explicit_victims
            if self.explicit_victims is not None
            else list(range(engine.t))
        )
        budget = min(self.count, max(0, engine.t - 1), len(population))
        victims = self.rng.sample(population, budget)
        for victim in victims:
            self._countdown[victim] = self.rng.randint(1, self.max_action_index)
        self._armed = True

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if not self._armed:
            self._arm(engine)
        directives = []
        for pid in list(actions):
            if pid not in self._countdown:
                continue
            self._countdown[pid] -= 1
            if self._countdown[pid] <= 0:
                del self._countdown[pid]
                directives.append(
                    CrashDirective(
                        pid=pid,
                        at_round=round_number,
                        phase=self.rng.choice(self.phases),
                    )
                )
        return directives


class KillActive(Adversary):
    """Crash the active process after it performs a few actions.

    This is the adversary implicit in the paper's redo accounting
    (Theorem 2.3): each takeover forces the maximal amount of repeated
    work and resent checkpoints.  ``actions_before_kill`` controls how
    long each active process survives after taking over; ``budget`` is
    the number of kills (at most ``t - 1``).
    """

    def __init__(
        self,
        budget: int,
        *,
        actions_before_kill: int = 1,
        phase: CrashPhase = CrashPhase.AFTER_WORK,
    ):
        self.budget = budget
        self.actions_before_kill = max(1, actions_before_kill)
        self.phase = phase
        self._current_victim: Optional[int] = None
        self._seen_actions = 0

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if self.budget <= 0:
            return []
        active = [pid for pid in engine.active_pids() if pid in actions]
        if not active:
            return []
        pid = active[0]
        if pid != self._current_victim:
            self._current_victim = pid
            self._seen_actions = 0
        self._seen_actions += 1
        if self._seen_actions < self.actions_before_kill:
            return []
        if engine.crashed_count >= engine.t - 1:
            return []
        self.budget -= 1
        self._current_victim = None
        return [CrashDirective(pid=pid, at_round=round_number, phase=self.phase)]


class KillBeforeCheckpoint(Adversary):
    """Crash the active process the moment it attempts a broadcast.

    This is the worst case for checkpointing schemes: everything the
    victim performed since its last successful checkpoint is lost (the
    paper's "up to n/k units of work are lost when a process fails").
    Against the single-level checkpointer each kill wastes a full
    checkpoint interval; against Protocols A and B it exercises the
    checkpoint-completion logic of the takeover dispatch.
    """

    def __init__(self, budget: int):
        self.budget = budget

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        if self.budget <= 0:
            return []
        directives = []
        for pid, action in actions.items():
            process = engine.processes[pid]
            if not process.is_active or not action.sends:
                continue
            if engine.crashed_count >= engine.t - 1:
                continue
            if self.budget <= 0:
                break
            self.budget -= 1
            directives.append(
                CrashDirective(
                    pid=pid, at_round=round_number, phase=CrashPhase.BEFORE_ACTION
                )
            )
        return directives


class Cascade(Adversary):
    """The Section 3 lower-bound scenario for naive knowledge spreading.

    Process 0 runs until it has performed ``lead_units`` units and then
    crashes after its work but before reporting; the upper half of the
    process space is dead from the start; thereafter every process that
    becomes active is killed as soon as it has redone ``redo_units``
    units.  Against the naive algorithm this forces ``Theta(t^2)`` work;
    Protocol C's fault detection is designed to defeat exactly this.
    """

    def __init__(
        self,
        *,
        lead_units: int,
        redo_units: int = 1,
        initial_dead: Sequence[int] = (),
        budget: Optional[int] = None,
    ):
        self.lead_units = lead_units
        self.redo_units = max(1, redo_units)
        self.initial_dead = list(initial_dead)
        self.budget = budget
        self._did_initial = False
        self._work_seen: Dict[int, int] = {}

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives: List[CrashDirective] = []
        if not self._did_initial:
            self._did_initial = True
            directives.extend(
                CrashDirective(pid=pid, at_round=round_number)
                for pid in self.initial_dead
            )
        for pid, action in actions.items():
            if action.work is None:
                continue
            self._work_seen[pid] = self._work_seen.get(pid, 0) + 1
            threshold = self.lead_units if pid == 0 else self.redo_units
            if self._work_seen[pid] == threshold:
                if self.budget is not None and self.budget <= 0:
                    continue
                if engine.crashed_count >= engine.t - 1:
                    continue
                if self.budget is not None:
                    self.budget -= 1
                directives.append(
                    CrashDirective(
                        pid=pid, at_round=round_number, phase=CrashPhase.AFTER_WORK
                    )
                )
        return directives


@dataclass
class _StaggeredKill:
    pid: int
    after_work_units: int


class StaggeredWorkKills(Adversary):
    """Crash given victims after they have each performed a quota of units.

    Used for Protocol D: killing ``k`` processes during each work phase
    (after they have done part of their share) exercises the agreement
    phase's failure discovery and the work-redistribution path.
    """

    def __init__(self, kills: Iterable[_StaggeredKill]):
        self._quota: Dict[int, int] = {
            kill.pid: kill.after_work_units for kill in kills
        }
        self._done: Dict[int, int] = {}

    @classmethod
    def plan(cls, pairs: Iterable[Sequence[int]]) -> "StaggeredWorkKills":
        return cls(_StaggeredKill(pid, units) for pid, units in pairs)

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives = []
        for pid, action in actions.items():
            if pid not in self._quota or action.work is None:
                continue
            self._done[pid] = self._done.get(pid, 0) + 1
            if self._done[pid] >= self._quota[pid]:
                del self._quota[pid]
                if engine.crashed_count >= engine.t - 1:
                    continue
                directives.append(
                    CrashDirective(
                        pid=pid, at_round=round_number, phase=CrashPhase.AFTER_WORK
                    )
                )
        return directives


class CrashMidBroadcast(Adversary):
    """Crash each victim the first time it sends a batch of at least
    ``min_batch`` messages, delivering a random strict subset.

    Exercises the paper's partial-broadcast semantics, the trickiest part
    of the takeover logic in Protocols A and B.
    """

    def __init__(self, victims: Sequence[int], *, min_batch: int = 2):
        self.victims = set(victims)
        self.min_batch = min_batch

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        directives = []
        for pid, action in actions.items():
            if pid in self.victims and len(action.sends) >= self.min_batch:
                if engine.crashed_count >= engine.t - 1:
                    continue
                self.victims.discard(pid)
                keep = frozenset(
                    send.dst
                    for send in action.sends
                    if self.rng.random() < 0.5
                )
                directives.append(
                    CrashDirective(
                        pid=pid,
                        at_round=round_number,
                        phase=CrashPhase.DURING_SEND,
                        keep=keep,
                    )
                )
        return directives


def compose(*adversaries: Adversary) -> Adversary:
    """Run several adversaries side by side (union of their directives)."""

    class _Composite(Adversary):
        def bind(self, engine: Engine) -> None:
            super().bind(engine)
            for adversary in adversaries:
                adversary.bind(engine)

        def decide(self, round_number, actions, engine):
            directives = []
            for adversary in adversaries:
                directives.extend(adversary.decide(round_number, actions, engine))
            return directives

    return _Composite()
