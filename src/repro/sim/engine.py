"""Synchronous round engine with quiescence fast-forward.

The engine realises the paper's timing model:

* rounds are numbered 0, 1, 2, ...;
* in round ``r`` a process may perform one unit of work and send one
  batch of messages (one broadcast);
* a message sent in round ``r`` is stamped ``r`` and becomes visible to
  its recipient's decisions from round ``r + 1`` on;
* a process that crashes mid-round delivers an adversary-chosen subset
  of its batch.

Fast-forward: the engine never iterates over rounds in which no process
is due (has mail or a wake-up).  This matters enormously for Protocol C,
whose timeout deadlines are ``Theta(K (n+t) 2^{n+t})`` rounds: the round
counter is just a Python integer, so simulating an execution whose last
retirement happens at round ~10^40 costs time proportional to the number
of *actions*, not rounds.

Event-indexed scheduling
------------------------

Fast-forward alone makes wall time proportional to *processed rounds*,
but a naive implementation still pays ``O(t + total_mail)`` per processed
round to rediscover which processes are due.  This engine instead keeps
an event index, mirroring the heap-based design of
:mod:`repro.sim.async_engine`, so the total scheduling cost is
``O(actions * log t)``:

* **Indexed min-heap with lazy invalidation.**  ``_heap`` holds
  ``(due_round, pid)`` pairs and ``_due`` maps each pid to its currently
  valid due round (the min of its earliest undelivered mail stamp + 1 and
  its cached ``wake_round()``).  Entries whose due round no longer
  matches ``_due`` are discarded when they surface.  The index is updated
  incrementally - when mail is posted, when a process steps (its wake
  round may have moved), and when a process retires - never by scanning
  all ``t`` processes.
* **Stamp-sorted mailboxes.**  Posts happen at the current processed
  round and processed rounds strictly increase, so each mailbox is
  always sorted by ``sent_round``.  The earliest stamp is ``mailbox[0]``
  (no ``min()`` scan) and delivery splits off a prefix instead of
  rebuilding the list.
* **Live-set bookkeeping.**  ``_live``, ``_active`` and ``_crashed_pids``
  are maintained at retirement/activation events, so the main loop,
  strict-invariant check and crash guard never iterate over retired
  processes.
* **Lazy broadcast fan-out.**  A packed :class:`Broadcast` batch is
  committed without ever materialising per-copy ``Send`` tuples: one
  :meth:`Metrics.record_send_batch` call, one shared
  :class:`SharedEnvelope` per broadcast, and one lightweight
  :class:`EnvelopeView` per *live* recipient in the mailboxes.  Legacy
  ``List[Send]`` batches are auto-packed when exactly equivalent
  (uniform payload/kind, ascending dsts) so out-of-tree protocols take
  the same path; genuinely mixed batches keep the per-copy commit.
  Trace emission is skipped entirely when tracing is disabled.

Crash-recover and congestion
----------------------------

Two extensions widen the paper's fault model without touching its
defaults (both are off unless configured):

* **Crash-recover faults.**  A :class:`CrashDirective` with
  ``recover_after=k`` schedules its victim to rejoin ``k`` rounds after
  the crash, restored to its last checkpoint via
  ``Process.mark_recovered`` (only protocols with
  ``supports_recovery = True`` accept such directives).  Pending rejoins
  live in a ``(round, pid)`` heap merged into the next-due computation,
  so quiescence fast-forward still works; a rejoining process is
  rescheduled *before* the round's due set is collected and may act the
  same round.
* **Congestion budgets.**  A :class:`CongestionBudget` caps each
  process's per-round sends and/or receives.  Excess sends are split off
  deterministically (ascending recipient order for broadcasts, list
  order otherwise) and parked in a per-round deferral map; they depart -
  metrics and trace charged at the departure round - at the top of their
  round, surviving the sender's crash in between (they were already in
  the network), though copies to by-then-retired recipients are dropped
  like any other send.  Excess *receives* stay queued at the front of
  the mailbox (stamp order preserved, so the sortedness invariant
  holds) and arrive at the next round(s).

Wake rounds are cached, which is sound because ``wake_round()`` is a pure
function of process state and that state only changes at engine-observed
points (see the scheduling contract in :mod:`repro.sim.process`);
out-of-band mutations must call ``Process.notify_wake_changed``.  All of
this is observationally identical to the naive scan: same metrics, same
trace, same RNG draws (``tests/test_scheduler_equivalence.py`` checks
exactly that against a reference scheduler).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    AdversaryError,
    BudgetExceeded,
    InvariantViolation,
    SimulationStalled,
)
from repro.sim.actions import (
    Action,
    Broadcast,
    Envelope,
    EnvelopeView,
    MessageKind,
    Send,
    SendBatch,
    SharedEnvelope,
    pack_sends,
)
from repro.sim.columnar import ColumnarMailboxes, resolve_fastpath
from repro.sim.congestion import CongestionBudget
from repro.sim.crashes import CrashDirective
from repro.sim.metrics import Metrics, RunResult
from repro.sim.process import Process
from repro.sim.rng import derive_rng, make_rng
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

UnitEffectFn = Callable[[int, int, int], List[Send]]


class Engine:
    """Drives a set of :class:`Process` instances to completion."""

    def __init__(
        self,
        processes: Sequence[Process],
        *,
        tracker: Optional[WorkTracker] = None,
        adversary: Optional["Adversary"] = None,
        seed: int = 0,
        max_steps: int = 5_000_000,
        max_rounds: Optional[int] = None,
        strict_invariants: bool = False,
        allow_total_failure: bool = False,
        unit_effect: Optional[UnitEffectFn] = None,
        trace: Optional[Trace] = None,
        congestion: Optional[CongestionBudget] = None,
        fastpath: str = "auto",
    ):
        self.processes: List[Process] = list(processes)
        self.t = len(self.processes)
        self.tracker = tracker
        self.adversary = adversary
        self.rng = make_rng(seed)
        self.crash_rng = derive_rng(self.rng, "crash-subsets")
        self.max_steps = max_steps
        self.max_rounds = max_rounds
        self.strict_invariants = strict_invariants
        self.allow_total_failure = allow_total_failure
        self.unit_effect = unit_effect
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.congestion = congestion
        # Congestion: per-src send-slot cursor ``(round, copies_used)`` and
        # the per-round deferral map + its round min-heap (see module
        # docstring).  Crash-recover: pending ``(rejoin_round, pid)`` heap.
        self._send_slots: Dict[int, Tuple[int, int]] = {}
        self._deferred: Dict[int, List[Tuple[int, SendBatch]]] = {}
        self._deferred_heap: List[int] = []
        self._recoveries: List[Tuple[int, int]] = []
        self.metrics = Metrics()
        self.round = -1  # last processed round
        # Mailboxes hold Envelope tuples (point-to-point, legacy batches)
        # and EnvelopeView objects (broadcast deliveries) interchangeably.
        self._mailboxes: Dict[int, List] = {p.pid: [] for p in self.processes}
        # Columnar fast path (see repro.sim.columnar): when resolved on,
        # ``_fast`` replaces the per-copy mailboxes as the delivery store
        # - same stamps, same order, same budgets, bit-identical results.
        # ``_noted_mask`` tracks which pids already had their due round
        # lowered this round (all same-round posts imply the same due),
        # replacing the slow path's per-copy _note_mail calls.
        self.fastpath = fastpath
        self._fast: Optional[ColumnarMailboxes] = (
            ColumnarMailboxes(self.t) if resolve_fastpath(fastpath) else None
        )
        self._noted_mask: int = 0
        # Event index: see module docstring.
        self._heap: List[Tuple[int, int]] = []
        self._due: Dict[int, Optional[int]] = {}
        self._live: Set[int] = set()
        #: Packed mirror of ``_live`` (bit pid set iff not retired): lets
        #: the broadcast commit restrict its recipient bitset to live
        #: processes with one ``&`` instead of a per-recipient check.
        self._live_mask: int = 0
        self._active: Set[int] = set()
        self._crashed_pids: Set[int] = set()
        for process in self.processes:
            process._wake_listener = self._refresh_schedule
            self._refresh_schedule(process.pid)
            if not process.retired and process.is_active:
                self._active.add(process.pid)
        # Processes retired before the run started still bound the
        # execution's retire round (engine-driven retirements are
        # recorded at event time in _apply_crashes/_commit_actions).
        for process in self.processes:
            if process.halt_round is not None:
                self.metrics.record_retire(process.pid, process.halt_round)
            if process.crash_round is not None:
                self.metrics.record_retire(process.pid, process.crash_round)
        if adversary is not None:
            adversary.bind(self)

    # ---- public API --------------------------------------------------

    @property
    def crashed_count(self) -> int:
        """Number of processes that have crashed so far (O(1))."""
        return len(self._crashed_pids)

    def active_pids(self) -> List[int]:
        """Pids currently holding the active role, in pid order (O(1)-ish)."""
        return sorted(self._active)

    def run(self) -> RunResult:
        """Run until every process retires; return the outcome."""
        steps = 0
        # A crashed process with a pending rejoin still counts as work to
        # do: the run only ends once no process is live *and* no recovery
        # is scheduled.
        while self._live or self._recoveries:
            next_round = self._next_due_round()
            if next_round is None:
                # Live processes remain but none will ever act again.
                raise SimulationStalled(
                    "live processes remain but nothing is scheduled: "
                    + ", ".join(
                        f"p{p.pid}({p.state_label()})"
                        for p in self.processes
                        if not p.retired
                    )
                )
            if self.max_rounds is not None and next_round > self.max_rounds:
                raise BudgetExceeded(
                    f"round {next_round} exceeds max_rounds={self.max_rounds}"
                )
            self._process_round(next_round)
            steps += 1
            if steps > self.max_steps:
                raise BudgetExceeded(f"exceeded max_steps={self.max_steps}")
        return self._result()

    # ---- schedule computation -----------------------------------------

    def _refresh_schedule(self, pid: int) -> None:
        """Recompute ``pid``'s due round and push it into the event index.

        Called after every event that can change the answer: a step, a
        mail post, retirement, or an explicit ``notify_wake_changed``.
        Retirement also updates the live/active/crashed bookkeeping, so a
        process retired through any path drops out of scheduling.
        """
        process = self.processes[pid]
        if process.retired:
            self._due[pid] = None
            self._live.discard(pid)
            self._live_mask &= ~(1 << pid)
            self._active.discard(pid)
            if process.crashed:
                self._crashed_pids.add(pid)
            # Keep retire_round correct even for out-of-band retirements
            # (external mark_crashed/mark_halted reach here through
            # notify_wake_changed); record_retire is a max, so repeating
            # it for engine-driven retirements is a no-op.
            if process.crash_round is not None:
                self.metrics.record_retire(pid, process.crash_round)
            if process.halt_round is not None:
                self.metrics.record_retire(pid, process.halt_round)
            if self._fast is not None:
                self._fast.clear(pid)
            else:
                self._mailboxes[pid].clear()
            return
        self._live.add(pid)
        self._live_mask |= 1 << pid
        if self._fast is not None:
            head = self._fast.head_stamp(pid)
            due = head + 1 if head is not None else None
        else:
            mailbox = self._mailboxes[pid]
            due = mailbox[0].sent_round + 1 if mailbox else None
        wake = process.wake_round()
        if wake is not None and (due is None or wake < due):
            due = wake
        if due != self._due.get(pid):
            self._due[pid] = due
            if due is not None:
                heappush(self._heap, (due, pid))

    def _note_mail(self, dst: int, sent_round: int) -> None:
        """Lower ``dst``'s due round after mail stamped ``sent_round``."""
        due = sent_round + 1
        cached = self._due.get(dst)
        if cached is None or cached > due:
            self._due[dst] = due
            heappush(self._heap, (due, dst))

    def _note_fast(self, dst: int, sent_round: int) -> None:
        """Fast-path :meth:`_note_mail` memoized per round.

        Every post within one processed round implies the same due round
        (``sent_round + 1``), and ``_note_mail`` only ever *lowers* a
        cached due, so once a pid has been noted this round further
        notes are no-ops.  Pids whose due entry was popped by
        ``_collect_due_pids`` (they stepped this round) are refreshed
        unconditionally after commit, so skipping them here is safe too.
        """
        bit = 1 << dst
        if not self._noted_mask & bit:
            self._noted_mask |= bit
            self._note_mail(dst, sent_round)

    def _next_due_round(self) -> Optional[int]:
        heap, due_map = self._heap, self._due
        best: Optional[int] = None
        while heap:
            due, pid = heap[0]
            if due_map.get(pid) == due:
                best = due
                break
            heappop(heap)
        # Deferred congestion flushes and pending rejoins are due rounds
        # too - without them fast-forward would sail past the event.
        if self._deferred_heap and (best is None or self._deferred_heap[0] < best):
            best = self._deferred_heap[0]
        if self._recoveries and (best is None or self._recoveries[0][0] < best):
            best = self._recoveries[0][0]
        if best is None:
            return None
        # Due rounds may lie in the past ("act as soon as possible");
        # clamp to the next unprocessed round.
        floor = self.round + 1
        return best if best > floor else floor

    def _collect_due_pids(self, round_number: int) -> List[int]:
        """Pop every process due at ``round_number``, in pid order.

        Popped pids are cleared from the index; the caller re-inserts
        survivors via :meth:`_refresh_schedule` after the round commits.
        """
        heap, due_map = self._heap, self._due
        due_pids: List[int] = []
        while heap and heap[0][0] <= round_number:
            due, pid = heappop(heap)
            if due_map.get(pid) == due:
                due_map[pid] = None
                due_pids.append(pid)
        due_pids.sort()
        return due_pids

    # ---- one round -----------------------------------------------------

    def _process_round(self, round_number: int) -> None:
        self.round = round_number
        self._noted_mask = 0
        # Rejoins first (a rejoined process may act this very round and
        # may receive this round's deferred flushes), then deferred
        # congestion departures (stamped this round, visible next round).
        if self._recoveries:
            self._apply_recoveries(round_number)
        if self._deferred_heap:
            self._flush_deferred(round_number)
        due_pids = self._collect_due_pids(round_number)
        stepped: Dict[int, Action] = {}
        processes = self.processes
        for pid in due_pids:
            process = processes[pid]
            if process.retired:
                continue
            inbox = self._drain_mailbox(pid, round_number)
            was_active = process.is_active
            stepped[pid] = process.on_round(round_number, inbox)
            if process.is_active:
                if not was_active:
                    self.metrics.record_activation(pid, round_number)
                    self.trace.emit(round_number, "activate", pid)
                    self._active.add(pid)
            elif was_active:
                self._active.discard(pid)

        directives = self._collect_directives(round_number, stepped)
        self._apply_crashes(round_number, stepped, directives)
        self._commit_actions(round_number, stepped)
        for pid in due_pids:
            self._refresh_schedule(pid)
        if self.strict_invariants:
            self._check_single_active(round_number)

    def _drain_mailbox(self, pid: int, round_number: int) -> Sequence:
        """Split off (and return) all mail stamped before ``round_number``.

        Mailboxes are sorted by stamp (posts happen at strictly
        increasing processed rounds), so delivery is a prefix split - a
        list slice on the slow path, a vectorized ``searchsorted`` over
        the columnar store (returning a lazy ``ColumnarInbox``) on the
        fast path.
        """
        if self._fast is not None:
            congestion = self.congestion
            receive = congestion.receive if congestion is not None else None
            return self._fast.drain(pid, round_number, receive)
        mailbox = self._mailboxes[pid]
        if not mailbox or mailbox[0].sent_round >= round_number:
            return []
        split = len(mailbox)
        for index, envelope in enumerate(mailbox):
            if envelope.sent_round >= round_number:
                split = index
                break
        # Receive budget: absorb at most ``receive`` envelopes this round;
        # the rest stay queued (oldest first, stamp order intact) and the
        # post-round _refresh_schedule re-dues this process off the new
        # mailbox head, so the backlog drains on consecutive rounds.
        congestion = self.congestion
        if (
            congestion is not None
            and congestion.receive is not None
            and split > congestion.receive
        ):
            split = congestion.receive
        ready = mailbox[:split]
        del mailbox[:split]
        return ready

    # ---- crashes ---------------------------------------------------------

    def _collect_directives(
        self, round_number: int, stepped: Dict[int, Action]
    ) -> List[CrashDirective]:
        if self.adversary is None:
            return []
        directives = list(self.adversary.decide(round_number, stepped, self))
        for directive in directives:
            if not 0 <= directive.pid < self.t:
                raise AdversaryError(f"directive targets unknown pid {directive.pid}")
        return directives

    def _apply_crashes(
        self,
        round_number: int,
        stepped: Dict[int, Action],
        directives: List[CrashDirective],
    ) -> None:
        for directive in directives:
            victim = self.processes[directive.pid]
            if victim.retired:
                continue
            if not self.allow_total_failure and self.crashed_count >= self.t - 1:
                raise AdversaryError(
                    "adversary attempted to crash the last surviving process; "
                    "pass allow_total_failure=True to permit executions with "
                    "no survivor"
                )
            if directive.recover_after is not None:
                if not victim.supports_recovery:
                    raise AdversaryError(
                        f"directive asks pid {directive.pid} to recover "
                        f"(recover_after={directive.recover_after!r}), but "
                        f"{type(victim).__name__} does not support "
                        "crash-recover faults; only protocols with "
                        "supports_recovery=True keep a checkpoint to rejoin "
                        "from"
                    )
                if directive.recover_after < 1:
                    raise AdversaryError(
                        f"recover_after must be >= 1, got "
                        f"{directive.recover_after!r} (pid {directive.pid})"
                    )
                heappush(
                    self._recoveries,
                    (round_number + directive.recover_after, directive.pid),
                )
            if directive.pid in stepped:
                stepped[directive.pid] = directive.censor(
                    stepped[directive.pid], self.crash_rng
                )
            # mark_crashed notifies the wake listener, which retires the
            # victim from the event index and live/active sets.
            victim.mark_crashed(max(directive.at_round, 0))
            self.metrics.record_crash(victim.pid, victim.crash_round or round_number)
            self.trace.emit(round_number, "crash", victim.pid, directive.phase.value)

    def _apply_recoveries(self, round_number: int) -> None:
        """Rejoin every process whose repair delay elapsed by this round."""
        recoveries = self._recoveries
        while recoveries and recoveries[0][0] <= round_number:
            _, pid = heappop(recoveries)
            process = self.processes[pid]
            if not process.crashed or process.halted:
                continue
            # mark_recovered restores the checkpoint (on_recover) and its
            # notify_wake_changed re-enters the process into the event
            # index via _refresh_schedule - it may act this very round.
            process.mark_recovered(round_number)
            self._crashed_pids.discard(pid)
            self.metrics.record_recovery(pid, round_number)
            self.trace.emit(round_number, "recover", pid)

    # ---- committing actions ----------------------------------------------

    def _commit_actions(self, round_number: int, stepped: Dict[int, Action]) -> None:
        for pid, action in stepped.items():
            process = self.processes[pid]
            if action.work is not None:
                self._record_work(pid, action.work, round_number)
            if action.sends:
                self._post_batch(pid, action.sends, round_number)
            if action.halt and not process.crashed:
                process.mark_halted(round_number)
                self.metrics.record_retire(pid, round_number)
                self.trace.emit(round_number, "halt", pid)

    def _record_work(self, pid: int, unit: int, round_number: int) -> None:
        if self.tracker is not None:
            self.tracker.record(pid, unit, round_number)
        self.metrics.record_work(pid, unit, round_number)
        if self.trace.enabled:
            self.trace.emit(round_number, "work", pid, unit)
        if self.unit_effect is not None:
            for send in self.unit_effect(pid, unit, round_number):
                self._post(pid, send, round_number)

    # ---- congestion (send budget) ----------------------------------------

    def _allocate_send_rounds(self, src: int, count: int, round_number: int) -> List[Tuple[int, int]]:
        """Assign ``count`` copies from ``src`` to departure rounds.

        Returns ``[(round, copies), ...]`` with rounds strictly
        ascending, the first entry possibly ``round_number`` itself;
        later entries are deferred departures.  The per-src cursor
        ``_send_slots[src] = (round, copies_used)`` persists across
        calls, so a backlog from one round pushes the next round's sends
        further out - exactly one budget's worth departs per round.
        """
        budget = self.congestion.send
        slot_round, used = self._send_slots.get(src, (round_number, 0))
        if slot_round < round_number:
            slot_round, used = round_number, 0
        segments: List[Tuple[int, int]] = []
        while count:
            free = budget - used
            if free <= 0:
                slot_round += 1
                used = 0
                continue
            take = free if free < count else count
            segments.append((slot_round, take))
            used += take
            count -= take
        self._send_slots[src] = (slot_round, used)
        return segments

    def _defer(self, send_round: int, src: int, batch: SendBatch) -> None:
        """Park ``batch`` (already in the network) until ``send_round``."""
        bucket = self._deferred.get(send_round)
        if bucket is None:
            bucket = self._deferred[send_round] = []
            heappush(self._deferred_heap, send_round)
        bucket.append((src, batch))
        if self.trace.enabled:
            self.trace.emit(self.round, "defer", src, (send_round, len(batch)))

    def _flush_deferred(self, round_number: int) -> None:
        """Emit every deferred batch due by this round, stamped with it.

        Deferred copies survive their sender's crash in the meantime;
        recipients retired by now drop out inside the emit bodies, like
        any other send.
        """
        heap = self._deferred_heap
        while heap and heap[0] <= round_number:
            for src, batch in self._deferred.pop(heappop(heap)):
                if isinstance(batch, Broadcast):
                    self._post_broadcast(src, batch, round_number)
                else:
                    self._emit_send_list(src, batch, round_number)

    # ---- posting sends ---------------------------------------------------

    def _post(self, src: int, send: Send, round_number: int) -> None:
        """Post one send (the non-batched path, used by unit effects)."""
        congestion = self.congestion
        if congestion is not None and congestion.send is not None:
            ((send_round, _),) = self._allocate_send_rounds(src, 1, round_number)
            if send_round != round_number:
                self._defer(send_round, src, [send])
                return
        self._emit_send(src, send, round_number)

    def _emit_send(self, src: int, send: Send, round_number: int) -> None:
        self.metrics.record_send_fast(src, send.kind, round_number)
        if self.trace.enabled:
            self.trace.emit(
                round_number, "send", src, (send.kind.value, send.dst, send.payload)
            )
        dst = send.dst
        if 0 <= dst < self.t and not self.processes[dst].retired:
            if self._fast is not None:
                self._fast.post_p2p(src, dst, send.payload, send.kind, round_number)
                self._note_fast(dst, round_number)
            else:
                self._mailboxes[dst].append(
                    Envelope(src, dst, send.payload, send.kind, round_number)
                )
                self._note_mail(dst, round_number)

    def _post_batch(self, src: int, sends: SendBatch, round_number: int) -> None:
        """Post one round's send batch from ``src``.

        A packed :class:`Broadcast` (or a legacy list that packs into
        one - see :func:`repro.sim.actions.pack_sends`) takes the
        shared-envelope fast path; a genuinely mixed legacy batch falls
        back to the per-copy commit.  Both spellings of one broadcast
        produce identical metrics, trace events and mailbox payloads.
        Under a send budget the batch is first split into per-round
        segments (ascending recipients / list order); only the current
        round's segment departs now, the rest are deferred.
        """
        packed = pack_sends(sends)
        congestion = self.congestion
        if congestion is not None and congestion.send is not None:
            total = len(packed) if packed is not None else len(sends)
            segments = self._allocate_send_rounds(src, total, round_number)
            dsts = packed.dsts() if packed is not None and len(segments) > 1 else None
            offset = 0
            for send_round, take in segments:
                if take == total:
                    segment: SendBatch = packed if packed is not None else sends
                elif packed is not None:
                    segment = packed.restrict(dsts[offset : offset + take])
                else:
                    segment = sends[offset : offset + take]
                offset += take
                if send_round != round_number:
                    self._defer(send_round, src, segment)
                elif packed is not None:
                    self._post_broadcast(src, segment, round_number)
                else:
                    self._emit_send_list(src, segment, round_number)
            return
        if packed is not None:
            self._post_broadcast(src, packed, round_number)
            return
        self._emit_send_list(src, sends, round_number)

    def _emit_send_list(self, src: int, sends: List[Send], round_number: int) -> None:
        """Commit a genuinely mixed legacy batch, one copy at a time."""
        kind_counts: Dict[MessageKind, int] = {}
        for send in sends:
            kind = send.kind
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        self.metrics.record_send_batch(src, kind_counts, len(sends), round_number)
        trace = self.trace
        if trace.enabled:
            for send in sends:
                trace.emit(
                    round_number, "send", src, (send.kind.value, send.dst, send.payload)
                )
        t = self.t
        processes = self.processes
        fast = self._fast
        if fast is not None:
            for send in sends:
                dst = send.dst
                if 0 <= dst < t and not processes[dst].retired:
                    fast.post_p2p(src, dst, send.payload, send.kind, round_number)
                    self._note_fast(dst, round_number)
            return
        mailboxes = self._mailboxes
        due_map = self._due
        heap = self._heap
        next_due = round_number + 1
        for send in sends:
            dst = send.dst
            if 0 <= dst < t and not processes[dst].retired:
                mailboxes[dst].append(
                    Envelope(src, dst, send.payload, send.kind, round_number)
                )
                cached = due_map.get(dst)
                if cached is None or cached > next_due:
                    due_map[dst] = next_due
                    heappush(heap, (next_due, dst))

    def _post_broadcast(self, src: int, bcast: Broadcast, round_number: int) -> None:
        """Commit one packed broadcast: shared envelope, per-recipient
        views, one metrics record for the whole batch."""
        kind = bcast.kind
        payload = bcast.payload
        count = len(bcast)
        self.metrics.record_send_batch(src, {kind: count}, count, round_number)
        trace = self.trace
        if trace.enabled:
            kind_value = kind.value
            for dst in bcast.recipients:
                trace.emit(round_number, "send", src, (kind_value, dst, payload))
        # Restricting to live recipients is one mask ``&`` (the live mask
        # only holds pids < t, so out-of-range dsts drop too).
        bits = bcast.recipients.to_int() & self._live_mask
        if self._fast is not None:
            if bits:
                self._fast.post_broadcast(src, payload, kind, round_number, bits)
                # Due-round notes collapse to one pass over the pids not
                # yet noted this round (all same-round posts share the
                # same due); typically empty after the round's first
                # broadcast.
                new = bits & ~self._noted_mask
                if new:
                    self._noted_mask |= new
                    due_map = self._due
                    heap = self._heap
                    next_due = round_number + 1
                    while new:
                        low = new & -new
                        new ^= low
                        dst = low.bit_length() - 1
                        cached = due_map.get(dst)
                        if cached is None or cached > next_due:
                            due_map[dst] = next_due
                            heappush(heap, (next_due, dst))
            return
        mailboxes = self._mailboxes
        due_map = self._due
        heap = self._heap
        next_due = round_number + 1
        shared = SharedEnvelope(src, payload, kind, round_number)
        # The loop uses inlined low-bit extraction - the recipient walk
        # runs Theta(t) times per broadcast, so skipping both the per-dst
        # retirement check and the bitset generator's frame switches is
        # a measurable share of commit time.
        while bits:
            low = bits & -bits
            bits ^= low
            dst = low.bit_length() - 1
            mailboxes[dst].append(EnvelopeView(shared, dst))
            cached = due_map.get(dst)
            if cached is None or cached > next_due:
                due_map[dst] = next_due
                heappush(heap, (next_due, dst))

    # ---- invariants and results -------------------------------------------

    def _check_single_active(self, round_number: int) -> None:
        if len(self._active) > 1:
            raise InvariantViolation(
                f"round {round_number}: multiple active processes "
                f"{sorted(self._active)}"
            )

    def _result(self) -> RunResult:
        survivors = sum(1 for p in self.processes if not p.crashed)
        halted = sum(1 for p in self.processes if p.halted)
        # Retire rounds were recorded when the retirements happened
        # (_apply_crashes / _commit_actions / __init__ for pre-retired
        # processes); only the availability measure needs a final pass.
        for process in self.processes:
            lifetime = process.crash_round if process.crashed else process.halt_round
            if lifetime is not None:
                self.metrics.available_processor_steps += lifetime + 1
        completed = self.tracker.all_done() if self.tracker is not None else True
        return RunResult(
            completed=completed,
            survivors=survivors,
            halted=halted,
            metrics=self.metrics,
            stalled=False,
        )


class Adversary:
    """Base adversary: observes each processed round and issues crashes.

    Subclasses override :meth:`decide`.  The engine calls it once per
    *processed* round with the actions proposed by every process that
    acted; a directive whose ``at_round`` lies in a skipped (quiescent)
    stretch is applied at the next processed round, which is
    observationally identical because an idle process emits nothing.
    """

    def bind(self, engine: Engine) -> None:
        self.engine = engine
        self.rng = derive_rng(engine.rng, type(self).__name__)

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        return []
