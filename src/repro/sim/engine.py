"""Synchronous round engine with quiescence fast-forward.

The engine realises the paper's timing model:

* rounds are numbered 0, 1, 2, ...;
* in round ``r`` a process may perform one unit of work and send one
  batch of messages (one broadcast);
* a message sent in round ``r`` is stamped ``r`` and becomes visible to
  its recipient's decisions from round ``r + 1`` on;
* a process that crashes mid-round delivers an adversary-chosen subset
  of its batch.

Fast-forward: the engine never iterates over rounds in which no process
is due (has mail or a wake-up).  This matters enormously for Protocol C,
whose timeout deadlines are ``Theta(K (n+t) 2^{n+t})`` rounds: the round
counter is just a Python integer, so simulating an execution whose last
retirement happens at round ~10^40 costs time proportional to the number
of *actions*, not rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import (
    AdversaryError,
    BudgetExceeded,
    InvariantViolation,
    SimulationStalled,
)
from repro.sim.actions import Action, Envelope, MessageKind, Send
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.metrics import Metrics, RunResult
from repro.sim.process import Process
from repro.sim.rng import derive_rng, make_rng
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

UnitEffectFn = Callable[[int, int, int], List[Send]]


class Engine:
    """Drives a set of :class:`Process` instances to completion."""

    def __init__(
        self,
        processes: Sequence[Process],
        *,
        tracker: Optional[WorkTracker] = None,
        adversary: Optional["Adversary"] = None,
        seed: int = 0,
        max_steps: int = 5_000_000,
        max_rounds: Optional[int] = None,
        strict_invariants: bool = False,
        allow_total_failure: bool = False,
        unit_effect: Optional[UnitEffectFn] = None,
        trace: Optional[Trace] = None,
    ):
        self.processes: List[Process] = list(processes)
        self.t = len(self.processes)
        self.tracker = tracker
        self.adversary = adversary
        self.rng = make_rng(seed)
        self.crash_rng = derive_rng(self.rng, "crash-subsets")
        self.max_steps = max_steps
        self.max_rounds = max_rounds
        self.strict_invariants = strict_invariants
        self.allow_total_failure = allow_total_failure
        self.unit_effect = unit_effect
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.metrics = Metrics()
        self.round = -1  # last processed round
        self._mailboxes: Dict[int, List[Envelope]] = {p.pid: [] for p in self.processes}
        if adversary is not None:
            adversary.bind(self)

    # ---- public API --------------------------------------------------

    def run(self) -> RunResult:
        """Run until every process retires; return the outcome."""
        steps = 0
        while not self._all_retired():
            next_round = self._next_due_round()
            if next_round is None:
                # Live processes remain but none will ever act again.
                if self._any_live_unhalted():
                    raise SimulationStalled(
                        "live processes remain but nothing is scheduled: "
                        + ", ".join(
                            f"p{p.pid}({p.state_label()})"
                            for p in self.processes
                            if not p.retired
                        )
                    )
                break
            if self.max_rounds is not None and next_round > self.max_rounds:
                raise BudgetExceeded(
                    f"round {next_round} exceeds max_rounds={self.max_rounds}"
                )
            self._process_round(next_round)
            steps += 1
            if steps > self.max_steps:
                raise BudgetExceeded(f"exceeded max_steps={self.max_steps}")
        return self._result()

    # ---- schedule computation -----------------------------------------

    def _due_round_of(self, process: Process) -> Optional[int]:
        """Earliest round >= self.round + 1 at which ``process`` must act."""
        if process.retired:
            return None
        floor = self.round + 1
        due: Optional[int] = None
        mailbox = self._mailboxes[process.pid]
        if mailbox:
            earliest = min(env.sent_round for env in mailbox) + 1
            due = max(earliest, floor)
        wake = process.wake_round()
        if wake is not None:
            wake = max(wake, floor)
            due = wake if due is None else min(due, wake)
        return due

    def _next_due_round(self) -> Optional[int]:
        dues = [self._due_round_of(p) for p in self.processes]
        dues = [due for due in dues if due is not None]
        return min(dues) if dues else None

    # ---- one round -----------------------------------------------------

    def _process_round(self, round_number: int) -> None:
        self.round = round_number
        stepped: Dict[int, Action] = {}
        for process in self.processes:
            if process.retired:
                continue
            due = self._due_round_of_cached(process, round_number)
            if due is None or due > round_number:
                continue
            inbox = self._drain_mailbox(process.pid, round_number)
            was_active = process.is_active
            stepped[process.pid] = process.on_round(round_number, inbox)
            if process.is_active and not was_active:
                self.metrics.record_activation(process.pid, round_number)
                self.trace.emit(round_number, "activate", process.pid)

        directives = self._collect_directives(round_number, stepped)
        self._apply_crashes(round_number, stepped, directives)
        self._commit_actions(round_number, stepped)
        if self.strict_invariants:
            self._check_single_active(round_number)

    def _due_round_of_cached(self, process: Process, round_number: int) -> Optional[int]:
        # Re-derive rather than cache: wake rounds may have been computed
        # against an older ``self.round`` but _due_round_of clamps, and
        # self.round was just advanced, so clamp to round_number instead.
        if process.retired:
            return None
        mailbox = self._mailboxes[process.pid]
        if any(env.sent_round < round_number for env in mailbox):
            return round_number
        wake = process.wake_round()
        if wake is not None and wake <= round_number:
            return round_number
        return None

    def _drain_mailbox(self, pid: int, round_number: int) -> List[Envelope]:
        mailbox = self._mailboxes[pid]
        ready = [env for env in mailbox if env.sent_round < round_number]
        if ready:
            self._mailboxes[pid] = [
                env for env in mailbox if env.sent_round >= round_number
            ]
        return ready

    # ---- crashes ---------------------------------------------------------

    def _collect_directives(
        self, round_number: int, stepped: Dict[int, Action]
    ) -> List[CrashDirective]:
        if self.adversary is None:
            return []
        directives = list(self.adversary.decide(round_number, stepped, self))
        for directive in directives:
            if not 0 <= directive.pid < self.t:
                raise AdversaryError(f"directive targets unknown pid {directive.pid}")
        return directives

    def _apply_crashes(
        self,
        round_number: int,
        stepped: Dict[int, Action],
        directives: List[CrashDirective],
    ) -> None:
        for directive in directives:
            victim = self.processes[directive.pid]
            if victim.retired:
                continue
            if not self.allow_total_failure and self._crashed_count() >= self.t - 1:
                raise AdversaryError(
                    "adversary attempted to crash the last surviving process; "
                    "pass allow_total_failure=True to permit executions with "
                    "no survivor"
                )
            if directive.pid in stepped:
                stepped[directive.pid] = directive.censor(
                    stepped[directive.pid], self.crash_rng
                )
            victim.mark_crashed(max(directive.at_round, 0))
            self.metrics.record_crash(victim.pid, victim.crash_round or round_number)
            self.trace.emit(round_number, "crash", victim.pid, directive.phase.value)

    def _crashed_count(self) -> int:
        return sum(1 for p in self.processes if p.crashed)

    # ---- committing actions ----------------------------------------------

    def _commit_actions(self, round_number: int, stepped: Dict[int, Action]) -> None:
        for pid, action in stepped.items():
            process = self.processes[pid]
            if action.work is not None:
                self._record_work(pid, action.work, round_number)
            for send in action.sends:
                self._post(pid, send, round_number)
            if action.halt and not process.crashed:
                process.mark_halted(round_number)
                self.metrics.record_retire(pid, round_number)
                self.trace.emit(round_number, "halt", pid)

    def _record_work(self, pid: int, unit: int, round_number: int) -> None:
        if self.tracker is not None:
            self.tracker.record(pid, unit, round_number)
        self.metrics.record_work(pid, unit, round_number)
        self.trace.emit(round_number, "work", pid, unit)
        if self.unit_effect is not None:
            for send in self.unit_effect(pid, unit, round_number):
                self._post(pid, send, round_number)

    def _post(self, src: int, send: Send, round_number: int) -> None:
        envelope = Envelope(
            src=src,
            dst=send.dst,
            payload=send.payload,
            kind=send.kind,
            sent_round=round_number,
        )
        self.metrics.record_send(envelope)
        self.trace.emit(
            round_number, "send", src, (send.kind.value, send.dst, send.payload)
        )
        recipient = self.processes[send.dst] if 0 <= send.dst < self.t else None
        if recipient is not None and not recipient.retired:
            self._mailboxes[send.dst].append(envelope)

    # ---- invariants and results -------------------------------------------

    def _check_single_active(self, round_number: int) -> None:
        active = [p.pid for p in self.processes if not p.retired and p.is_active]
        if len(active) > 1:
            raise InvariantViolation(
                f"round {round_number}: multiple active processes {active}"
            )

    def _all_retired(self) -> bool:
        return all(p.retired for p in self.processes)

    def _any_live_unhalted(self) -> bool:
        return any(not p.retired for p in self.processes)

    def _result(self) -> RunResult:
        survivors = sum(1 for p in self.processes if not p.crashed)
        halted = sum(1 for p in self.processes if p.halted)
        for process in self.processes:
            if process.halt_round is not None:
                self.metrics.record_retire(process.pid, process.halt_round)
            if process.crash_round is not None:
                self.metrics.record_retire(process.pid, process.crash_round)
            lifetime = process.crash_round if process.crashed else process.halt_round
            if lifetime is not None:
                self.metrics.available_processor_steps += lifetime + 1
        completed = self.tracker.all_done() if self.tracker is not None else True
        return RunResult(
            completed=completed,
            survivors=survivors,
            halted=halted,
            metrics=self.metrics,
            stalled=False,
        )


class Adversary:
    """Base adversary: observes each processed round and issues crashes.

    Subclasses override :meth:`decide`.  The engine calls it once per
    *processed* round with the actions proposed by every process that
    acted; a directive whose ``at_round`` lies in a skipped (quiescent)
    stretch is applied at the next processed round, which is
    observationally identical because an idle process emits nothing.
    """

    def bind(self, engine: Engine) -> None:
        self.engine = engine
        self.rng = derive_rng(engine.rng, type(self).__name__)

    def decide(
        self, round_number: int, actions: Dict[int, Action], engine: Engine
    ) -> List[CrashDirective]:
        return []
