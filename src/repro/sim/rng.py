"""Seeded randomness helpers.

All stochastic behaviour in the package flows through an explicit
:class:`random.Random` instance that is derived deterministically from a
user-supplied seed.  There is no module-level RNG state: two simulations
built from the same seed produce byte-identical traces, which the test
suite and the benchmark harness both rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: Optional[int]) -> random.Random:
    """Return a fresh ``random.Random`` for ``seed`` (``None`` = seed 0).

    ``None`` maps to a fixed seed rather than to OS entropy so that
    "I did not pass a seed" still yields reproducible runs.
    """
    return random.Random(0 if seed is None else seed)


def derive_rng(rng: random.Random, *labels: object) -> random.Random:
    """Derive an independent child RNG from ``rng`` and a label tuple.

    Used to give each subsystem (adversary, network delays, failure
    detector) its own stream so that adding a draw in one subsystem does
    not perturb another.
    """
    material = "|".join([str(rng.getrandbits(64))] + [str(label) for label in labels])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def choose_subset(rng: random.Random, items: Sequence[T], size: int) -> list[T]:
    """Return a uniformly random subset of ``items`` with exactly ``size``
    elements (clamped to ``len(items)``), in stable order of ``items``."""
    size = max(0, min(size, len(items)))
    chosen = set(rng.sample(range(len(items)), size))
    return [item for index, item in enumerate(items) if index in chosen]


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new list with the elements of ``items`` in random order."""
    result = list(items)
    rng.shuffle(result)
    return result
