"""Legacy setuptools shim.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (pip falls back to ``setup.py develop`` when no
PEP 517 build backend is declared).  Metadata lives in
``pyproject.toml``; the ``src/`` layout is redeclared here because the
legacy ``setup.py develop`` path does not read ``[tool.setuptools]``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-dhw92",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
