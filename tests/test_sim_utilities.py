"""Trace, RNG, failure-detector configuration and the report generator."""



from repro.analysis.experiments import ExperimentResult
from repro.analysis.report import main as report_main
from repro.analysis.report import render_report
from repro.sim.failure_detector import FailureDetector
from repro.sim.rng import choose_subset, derive_rng, make_rng, shuffled
from repro.sim.trace import Trace, TraceEvent

# ---- Trace -------------------------------------------------------------


def _sample_trace():
    trace = Trace(enabled=True)
    trace.emit(1, "work", 0, 5)
    trace.emit(2, "send", 0, ("control", 1, ()))
    trace.emit(3, "activate", 1)
    trace.emit(4, "crash", 0, "before_action")
    return trace


def test_trace_queries():
    trace = _sample_trace()
    assert len(trace) == 4
    assert [event.kind for event in trace] == ["work", "send", "activate", "crash"]
    assert trace.of_kind("work")[0].detail == 5
    assert trace.for_pid(1) == [TraceEvent(3, "activate", 1, None)]
    assert trace.activations() == [(3, 1)]
    assert trace.first("crash").round == 4
    assert trace.first("halt") is None


def test_trace_disabled_records_nothing():
    trace = Trace(enabled=False)
    trace.emit(1, "work", 0)
    assert len(trace) == 0


def test_trace_render_limits():
    trace = _sample_trace()
    rendered = trace.render(limit=2)
    assert "more events" in rendered
    assert len(trace.render().splitlines()) == 4


# ---- RNG ------------------------------------------------------------------


def test_make_rng_is_deterministic():
    assert make_rng(5).random() == make_rng(5).random()
    assert make_rng(None).random() == make_rng(0).random()


def test_derive_rng_streams_are_stable_and_distinct():
    a1 = derive_rng(make_rng(1), "alpha").random()
    a2 = derive_rng(make_rng(1), "alpha").random()
    b = derive_rng(make_rng(1), "beta").random()
    assert a1 == a2            # stable across processes (no salted hash)
    assert a1 != b             # label separates streams


def test_choose_subset_size_and_order():
    rng = make_rng(3)
    subset = choose_subset(rng, [10, 20, 30, 40, 50], 3)
    assert len(subset) == 3
    assert subset == sorted(subset, key=[10, 20, 30, 40, 50].index)
    assert choose_subset(rng, [1, 2], 99) == [1, 2]
    assert choose_subset(rng, [], 2) == []


def test_shuffled_leaves_input_untouched():
    items = [1, 2, 3, 4]
    result = shuffled(make_rng(1), items)
    assert sorted(result) == items
    assert items == [1, 2, 3, 4]


# ---- FailureDetector ----------------------------------------------------------


def test_detector_uniform_window():
    detector = FailureDetector(min_delay=2.0, max_delay=3.0)
    rng = make_rng(1)
    for _ in range(50):
        delay = detector.notification_delay(rng, 0, 1)
        assert 2.0 <= delay <= 3.0


def test_detector_degenerate_window():
    detector = FailureDetector(min_delay=5.0, max_delay=5.0)
    assert detector.notification_delay(make_rng(1), 0, 1) == 5.0


def test_detector_custom_delay_fn():
    detector = FailureDetector(delay_fn=lambda rng, observer, crashed: observer * 2.0)
    assert detector.notification_delay(make_rng(1), 3, 0) == 6.0
    # Negative results are clamped to zero.
    detector = FailureDetector(delay_fn=lambda rng, observer, crashed: -1.0)
    assert detector.notification_delay(make_rng(1), 3, 0) == 0.0


# ---- report generator ------------------------------------------------------------


def _fake_result(ok=True):
    return ExperimentResult(
        exp_id="EX",
        title="Fake",
        claim="claims",
        columns=["x", "ok"],
        rows=[{"x": 1, "ok": ok}],
        notes="a note",
    )


def test_render_report_structure():
    text = render_report([_fake_result()], elapsed=1.0)
    assert "## EX: Fake" in text
    assert "1/1 experiments reproduce" in text
    assert "a note" in text
    assert "**reproduced**" in text


def test_render_report_flags_failures():
    text = render_report([_fake_result(ok=False)], elapsed=1.0)
    assert "0/1" in text
    assert "NOT fully reproduced" in text


def test_report_main_writes_file(tmp_path, monkeypatch):
    out = tmp_path / "EXP.md"
    # Patch the registry to two tiny fake experiments for speed.
    import repro.analysis.report as report_module

    monkeypatch.setattr(
        report_module, "run_all", lambda quick: [_fake_result(), _fake_result()]
    )
    code = report_main(["--quick", "--out", str(out)])
    assert code == 0
    assert "## EX: Fake" in out.read_text()
