"""Cross-protocol integration tests: the paper's comparative claims."""



from repro import run_protocol
from repro.sim.adversary import KillActive, RandomCrashes
from repro.sim.trace import Trace

N, T = 144, 16


def _worst(protocol, adversaries, seeds=range(3), n=N, t=T, **options):
    worst = {"work": 0, "messages": 0, "rounds": 0, "effort": 0}
    for factory in adversaries:
        for seed in seeds:
            result = run_protocol(protocol, n, t, adversary=factory(), seed=seed, **options)
            assert result.completed, (protocol, seed)
            worst["work"] = max(worst["work"], result.metrics.work_total)
            worst["messages"] = max(worst["messages"], result.metrics.messages_total)
            worst["rounds"] = max(worst["rounds"], result.metrics.retire_round)
            worst["effort"] = max(worst["effort"], result.metrics.effort)
    return worst


ADVERSARIES = [
    lambda: None,
    lambda: RandomCrashes(T // 2, max_action_index=20),
    lambda: KillActive(T - 1, actions_before_kill=2),
]


def test_all_protocols_beat_replicate_on_effort():
    replicate = _worst("replicate", ADVERSARIES)
    for protocol in ("A", "B", "C", "D"):
        measured = _worst(protocol, ADVERSARIES)
        assert measured["effort"] < replicate["effort"], protocol


def test_sequential_protocols_beat_naive_checkpointer_on_messages():
    naive = _worst("naive", ADVERSARIES, interval=1)
    for protocol in ("A", "B", "C"):
        measured = _worst(protocol, ADVERSARIES)
        assert measured["messages"] < naive["messages"] / 4, protocol


def test_c_beats_a_and_b_on_messages_for_large_t():
    # O(t log t) < O(t sqrt t): visible once t is large enough relative to n.
    n, t = 64, 64
    adversaries = [lambda: KillActive(t - 1, actions_before_kill=2)]
    a = _worst("A", adversaries, n=n, t=t)
    c = _worst("C", adversaries, n=n, t=t)
    assert c["messages"] < a["messages"]


def test_d_dominates_on_time():
    for protocol in ("A", "B", "C"):
        sequential = _worst(protocol, [lambda: None])
        parallel = _worst("D", [lambda: None])
        assert parallel["rounds"] < sequential["rounds"], protocol


def test_b_dominates_a_on_time_under_failures():
    a = _worst("A", [lambda: KillActive(T - 1, actions_before_kill=2)])
    b = _worst("B", [lambda: KillActive(T - 1, actions_before_kill=2)])
    assert b["rounds"] < a["rounds"]


def test_work_optimality_of_sequential_protocols():
    # All three sequential protocols are work-optimal: O(n + t), here
    # concretely within their per-theorem constants.
    for protocol, factor in (("A", 3), ("B", 3)):
        measured = _worst(protocol, ADVERSARIES)
        assert measured["work"] <= factor * max(N, T)
    c = _worst("C", ADVERSARIES)
    assert c["work"] <= N + 2 * T


def test_every_unit_done_exactly_once_failure_free_everywhere():
    for protocol in ("A", "B", "D"):
        result = run_protocol(protocol, N, T, seed=0)
        assert result.metrics.redundant_work() == 0
        assert result.metrics.work_total == N


def test_takeover_chain_depth_bounded_by_crashes():
    trace = Trace(enabled=True)
    result = run_protocol(
        "B", N, T, adversary=KillActive(5, actions_before_kill=3), seed=1, trace=trace
    )
    assert result.completed
    assert len(trace.activations()) <= 5 + 1


def test_same_seed_same_battery_same_numbers():
    first = _worst("B", ADVERSARIES)
    second = _worst("B", ADVERSARIES)
    assert first == second
