"""Protocol B: go-ahead polling, preactive phase and Theorem 2.8 bounds."""

import pytest

from repro import run_protocol
from repro.analysis import bounds
from repro.sim.actions import MessageKind
from repro.sim.adversary import FixedSchedule, KillActive, RandomCrashes
from repro.sim.crashes import CrashDirective
from repro.sim.trace import Trace
from tests.conftest import adversary_battery, all_but_one_dead

N, T = 128, 16


def test_failure_free_matches_protocol_a():
    a = run_protocol("A", N, T, seed=1)
    b = run_protocol("B", N, T, seed=1)
    # Without failures the DoWork transcript is identical.
    assert b.metrics.work_total == a.metrics.work_total == N
    assert b.metrics.messages_total == a.metrics.messages_total


def test_failure_free_round_complexity_linear():
    result = run_protocol("B", N, T, seed=1)
    assert result.metrics.retire_round <= bounds.protocol_b_rounds(N, T).value


def test_round_complexity_beats_protocol_a_under_failures():
    adversary_a = KillActive(T - 1, actions_before_kill=2)
    adversary_b = KillActive(T - 1, actions_before_kill=2)
    a = run_protocol("A", N, T, adversary=adversary_a, seed=2)
    b = run_protocol("B", N, T, adversary=adversary_b, seed=2)
    assert a.completed and b.completed
    # This is the whole point of Protocol B: takeovers in O(1) timeouts
    # instead of O(n + t) ones.
    assert b.metrics.retire_round < a.metrics.retire_round


def test_go_ahead_wakes_a_live_lower_process():
    # Crash the active processes of group 1 so a group-2 member becomes
    # preactive; its go_ahead must hand control to the *lowest* live pid.
    trace = Trace(enabled=True)
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=30)]
    )
    result = run_protocol("B", N, T, adversary=adversary, seed=3, trace=trace)
    assert result.completed
    pids = [pid for _, pid in trace.activations()]
    assert pids[0] == 0 and pids[1] == 1


def test_go_ahead_messages_appear_under_takeovers():
    adversary = KillActive(6, actions_before_kill=3)
    result = run_protocol("B", N, T, adversary=adversary, seed=4)
    assert result.completed
    assert result.metrics.messages_of(MessageKind.GO_AHEAD) > 0


def test_go_ahead_budget_one_per_group_pair():
    # Theorem 2.8(b): at most t * sqrt(t) go-ahead messages overall.
    for seed in range(5):
        result = run_protocol(
            "B", N, T, adversary=RandomCrashes(T - 1, max_action_index=20), seed=seed
        )
        assert result.metrics.messages_of(MessageKind.GO_AHEAD) <= T * 4


@pytest.mark.parametrize("seed", range(8))
def test_theorem_2_8_bounds_random(seed):
    result = run_protocol(
        "B", N, T, adversary=RandomCrashes(T - 1, max_action_index=25), seed=seed
    )
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_b_work(N, T).value
    assert result.metrics.messages_total <= bounds.protocol_b_messages(N, T).value


def test_theorem_2_8_battery_worst_case():
    worst = {"work": 0, "msgs": 0, "rounds": 0}
    for factory in adversary_battery(T):
        for seed in range(3):
            result = run_protocol("B", N, T, adversary=factory(), seed=seed)
            assert result.completed
            worst["work"] = max(worst["work"], result.metrics.work_total)
            worst["msgs"] = max(worst["msgs"], result.metrics.messages_total)
            worst["rounds"] = max(worst["rounds"], result.metrics.retire_round)
    assert worst["work"] <= bounds.protocol_b_work(N, T).value
    assert worst["msgs"] <= bounds.protocol_b_messages(N, T).value
    # Rounds: paper bound plus the implementation's slack contribution
    # (slack enters PTO, which is paid O(t) times along a takeover chain).
    from repro.core.deadlines import ProtocolBDeadlines

    dl = ProtocolBDeadlines(n=N, t=T)
    implementation_bound = N + 3 * T + dl.slack + dl.TT(T - 1, 0)
    assert worst["rounds"] <= implementation_bound


def test_lone_survivor():
    result = run_protocol("B", N, T, adversary=all_but_one_dead(T), seed=5)
    assert result.completed
    assert result.metrics.work_by_process[T - 1] == N


def test_preactive_process_returns_passive_on_ordinary_message():
    # Crash 0 late so that 1 becomes preactive, then let 1's go_ahead chain
    # reactivate work; every later process that got as far as preactive
    # must settle back down without becoming active.
    trace = Trace(enabled=True)
    adversary = FixedSchedule([CrashDirective(pid=0, at_round=40)])
    result = run_protocol("B", N, T, adversary=adversary, seed=6, trace=trace)
    assert result.completed
    assert len(trace.activations()) == 2  # nobody else ever activated


def test_general_t_shapes():
    for t in (3, 7, 12, 20):
        result = run_protocol(
            "B", 60, t, adversary=RandomCrashes(t - 1, max_action_index=15), seed=2
        )
        assert result.completed


def test_small_and_degenerate_inputs():
    assert run_protocol("B", 0, 8, seed=1).completed
    assert run_protocol("B", 5, 16, seed=1).completed
    solo = run_protocol("B", 12, 1, seed=1)
    assert solo.completed and solo.metrics.messages_total == 0


def test_crash_during_goahead_poll_timeout_advances():
    # Kill 0; then kill 1 the moment it is woken by a go_ahead (before it
    # can broadcast), forcing the preactive process to poll onward.
    directives = [
        CrashDirective(pid=0, at_round=20),
        CrashDirective(pid=1, at_round=21),
        CrashDirective(pid=2, at_round=22),
    ]
    result = run_protocol("B", N, T, adversary=FixedSchedule(directives), seed=7)
    assert result.completed
