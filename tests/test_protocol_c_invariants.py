"""Empirical checks of Protocol C's knowledge lemmas (Lemma 3.4).

The correctness proof rests on knowledge-ordering invariants.  These
tests observe live executions through a probe adversary (which issues no
crashes of its own unless configured) and assert the invariants at every
activation:

* (c)-part 1: the newly active process knows at least as much as every
  inactive non-retired process;
* (c)-part 2: "knows more" agrees with the reduced-view comparison;
* at most one active process at any time (also enforced by the engine's
  strict mode, double-checked here through the probe).
"""

from typing import Dict, List

from repro.core.protocol_c import ProtocolCProcess
from repro.core.registry import build_processes
from repro.sim.adversary import Adversary, KillActive, RandomCrashes
from repro.sim.engine import Engine
from repro.work.tracker import WorkTracker


class ViewOrderProbe(Adversary):
    """Wraps another adversary; checks Lemma 3.4 at every round."""

    def __init__(self, inner=None):
        self.inner = inner
        self.violations: List[str] = []
        self._previously_active: set = set()

    def bind(self, engine):
        super().bind(engine)
        if self.inner is not None:
            self.inner.bind(engine)

    def decide(self, round_number, actions, engine):
        self._check(round_number, engine)
        if self.inner is not None:
            return self.inner.decide(round_number, actions, engine)
        return []

    def _check(self, round_number, engine):
        live = [p for p in engine.processes if not p.retired]
        actives = [p for p in live if p.is_active]
        if len(actives) > 1:
            self.violations.append(
                f"r{round_number}: {len(actives)} active processes"
            )
            return
        for active in actives:
            if active.pid in self._previously_active:
                continue
            self._previously_active.add(active.pid)
            for other in live:
                if other.pid == active.pid or other.is_active:
                    continue
                if not active.view.knows_at_least(other.view):
                    self.violations.append(
                        f"r{round_number}: new active {active.pid} knows less "
                        f"than inactive {other.pid}"
                    )
                if active.reduced_view() < other.reduced_view():
                    self.violations.append(
                        f"r{round_number}: new active {active.pid} has smaller "
                        f"reduced view than {other.pid}"
                    )


def _run_with_probe(n, t, inner, seed):
    processes = build_processes("C", n, t)
    probe = ViewOrderProbe(inner)
    tracker = WorkTracker(n)
    engine = Engine(
        processes, tracker=tracker, adversary=probe, seed=seed,
        strict_invariants=True,
    )
    result = engine.run()
    return result, probe


def test_new_active_is_most_knowledgeable_failure_free():
    result, probe = _run_with_probe(24, 8, None, seed=1)
    assert result.completed
    assert probe.violations == []


def test_new_active_is_most_knowledgeable_under_kills():
    for seed in range(4):
        result, probe = _run_with_probe(
            24, 8, KillActive(7, actions_before_kill=3), seed=seed
        )
        assert result.completed
        assert probe.violations == [], probe.violations


def test_new_active_is_most_knowledgeable_random():
    for seed in range(6):
        result, probe = _run_with_probe(
            16, 8, RandomCrashes(6, max_action_index=12), seed=seed
        )
        assert result.completed
        assert probe.violations == [], (seed, probe.violations)


def test_reduced_view_monotone_per_process():
    """A process's reduced view never decreases (views only merge up)."""

    class MonotoneProbe(Adversary):
        def __init__(self):
            self.last: Dict[int, int] = {}
            self.violations: List[str] = []

        def decide(self, round_number, actions, engine):
            for process in engine.processes:
                if not isinstance(process, ProtocolCProcess) or process.retired:
                    continue
                current = process.reduced_view()
                previous = self.last.get(process.pid, -1)
                if current < previous:
                    self.violations.append(
                        f"r{round_number}: p{process.pid} {previous}->{current}"
                    )
                self.last[process.pid] = current
            return []

    processes = build_processes("C", 16, 8)
    probe = MonotoneProbe()
    engine = Engine(
        processes, tracker=WorkTracker(16), adversary=probe, seed=3,
        strict_invariants=True,
    )
    result = engine.run()
    assert result.completed
    assert probe.violations == []


def test_self_never_in_own_faulty_set():
    processes = build_processes("C", 16, 8)
    engine = Engine(processes, tracker=WorkTracker(16), seed=4)
    engine.run()
    for process in processes:
        assert process.pid not in process.view.faulty
