"""Property-based tests of the engine's delivery semantics.

The invariants the protocols rely on:
* a message is never visible to decisions at or before its stamp round;
* every message sent to a recipient that is alive at delivery time is
  delivered exactly once;
* fast-forward is transparent: a process that declared a wake round is
  stepped at exactly that round (or earlier, by mail);
* metrics account every send exactly once.
"""

from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.actions import Action, Envelope, MessageKind, Send
from repro.sim.engine import Engine
from repro.sim.process import Process


class Chatter(Process):
    """Sends a scripted series of (round, dst) messages; logs receipts."""

    def __init__(self, pid, t, sends, stop_round):
        super().__init__(pid, t)
        self.sends = sorted(sends)  # list of (round, dst)
        self.stop_round = stop_round
        self.received: List[Envelope] = []
        self.acted_rounds: List[int] = []

    def wake_round(self) -> Optional[int]:
        if self.retired:
            return None
        if self.sends:
            return min(self.sends[0][0], self.stop_round)
        return self.stop_round

    def on_round(self, round_number, inbox):
        self.acted_rounds.append(round_number)
        self.received.extend(inbox)
        outgoing = []
        while self.sends and self.sends[0][0] <= round_number:
            _, dst = self.sends.pop(0)
            outgoing.append(
                Send(dst, ("msg", self.pid, round_number), MessageKind.CONTROL)
            )
        return Action(
            sends=outgoing, halt=(round_number >= self.stop_round and not self.sends)
        )


@st.composite
def chatter_configs(draw):
    t = draw(st.integers(min_value=2, max_value=6))
    stop = draw(st.integers(min_value=5, max_value=40))
    plans = []
    for pid in range(t):
        count = draw(st.integers(min_value=0, max_value=6))
        plan = [
            (
                draw(st.integers(min_value=0, max_value=stop - 1)),
                draw(st.integers(min_value=0, max_value=t - 1)),
            )
            for _ in range(count)
        ]
        plans.append(plan)
    return t, stop, plans


@settings(max_examples=40, deadline=None)
@given(chatter_configs())
def test_messages_never_arrive_early_and_count_once(config):
    t, stop, plans = config
    processes = [Chatter(pid, t, plans[pid], stop) for pid in range(t)]
    engine = Engine(processes)
    result = engine.run()
    total_sent = sum(len(plan) for plan in plans)
    assert result.metrics.messages_total == total_sent
    received_total = 0
    for process in processes:
        for envelope in process.received:
            # Visibility rule: processed strictly after the stamp round.
            assert envelope.sent_round < max(process.acted_rounds)
        received_total += len(process.received)
    # Everyone halts at `stop` >= every send round, so nothing is lost.
    assert received_total == total_sent


@settings(max_examples=40, deadline=None)
@given(chatter_configs())
def test_acted_rounds_are_strictly_increasing(config):
    t, stop, plans = config
    processes = [Chatter(pid, t, plans[pid], stop) for pid in range(t)]
    Engine(processes).run()
    for process in processes:
        rounds = process.acted_rounds
        assert rounds == sorted(set(rounds))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=1, max_value=10**5),
)
def test_wake_round_is_honoured_exactly(first_wake, gap):
    class Sleeper(Process):
        def __init__(self):
            super().__init__(0, 1)
            self.wakes = [first_wake, first_wake + gap]
            self.seen = []

        def wake_round(self):
            if self.retired or not self.wakes:
                return None
            return self.wakes[0]

        def on_round(self, round_number, inbox):
            self.seen.append(round_number)
            self.wakes.pop(0)
            return Action(halt=not self.wakes)

    sleeper = Sleeper()
    Engine([sleeper]).run()
    assert sleeper.seen == [first_wake, first_wake + gap]


def test_message_to_self_is_delivered_next_round():
    class SelfSender(Process):
        def __init__(self):
            super().__init__(0, 1)
            self.got = []

        def wake_round(self):
            return None if (self.retired or self.got) else 0

        def on_round(self, round_number, inbox):
            self.got.extend(inbox)
            if round_number == 0:
                return Action(sends=[Send(0, ("loop",), MessageKind.CONTROL)])
            return Action(halt=True)

    process = SelfSender()
    Engine([process]).run()
    assert len(process.got) == 1
    assert process.got[0].sent_round == 0
