"""Engine-level takeover scenarios for Protocol A: crash the active
process at each distinct phase of its checkpointing cycle and verify the
successor resumes correctly (the DoWork dispatch of Section 2.1)."""


from repro.core.chunks import SubchunkPlan
from repro.core.groups import SqrtGroups
from repro.core.protocol_a import build_protocol_a
from repro.sim.actions import MessageKind
from repro.sim.adversary import FixedSchedule
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

N, T = 160, 16  # 16 subchunks of 10 units; chunks of 4 subchunks
GROUPS = SqrtGroups(T)
PLAN = SubchunkPlan(N, T, GROUPS.group_size)


def _run(directives, seed=0):
    trace = Trace(enabled=True)
    processes = build_protocol_a(N, T)
    tracker = WorkTracker(N)
    engine = Engine(
        processes,
        tracker=tracker,
        adversary=FixedSchedule(directives),
        seed=seed,
        strict_invariants=True,
        trace=trace,
    )
    result = engine.run()
    return result, trace, tracker


def _work_rounds_of(trace, pid):
    return [event for event in trace.of_kind("work") if event.pid == pid]


def test_crash_mid_subchunk_redoes_at_most_one_subchunk():
    # Process 0's round 0 is the fictitious-echo broadcast; it works
    # units 1..10 in rounds 1..10.  Crash at round 4 = after unit 4,
    # nothing checkpointed yet.
    result, trace, tracker = _run(
        [CrashDirective(pid=0, at_round=4, phase=CrashPhase.AFTER_WORK)]
    )
    assert result.completed
    # Units 1..4 are executed twice (0 died unreported), the rest once.
    for unit in range(1, 5):
        assert tracker.times_done(unit) == 2
    for unit in range(5, N + 1):
        assert tracker.times_done(unit) == 1


def test_crash_right_after_partial_checkpoint_redoes_nothing():
    # Round 11 is the partial checkpoint of subchunk 1; let it complete
    # (AFTER_ACTION), so the successor resumes from subchunk 2 exactly.
    result, trace, tracker = _run(
        [CrashDirective(pid=0, at_round=11, phase=CrashPhase.AFTER_ACTION)]
    )
    assert result.completed
    assert tracker.redundant_executions() == 0
    # Successor is process 1, and its first work unit is 11.
    p1_work = _work_rounds_of(trace, 1)
    assert p1_work[0].detail == 11


def test_crash_during_partial_checkpoint_subset():
    # The partial checkpoint of subchunk 1 reaches only process 3; 1 and
    # 2 miss it.  Process 1 takes over with the *fictitious* knowledge
    # and redoes subchunk 1; the bound of one redone subchunk holds.
    result, trace, tracker = _run(
        [
            CrashDirective(
                pid=0,
                at_round=11,
                phase=CrashPhase.DURING_SEND,
                keep=frozenset({3}),
            )
        ]
    )
    assert result.completed
    assert tracker.redundant_executions() <= PLAN.subchunk_size_bound()


def test_crash_during_full_checkpoint_sweep_resumes_sweep():
    # Let process 0 finish chunk 1 (subchunks 1..4 = rounds 0..43
    # including partial checkpoints), then crash it mid full-checkpoint
    # sweep after informing group 2 but not groups 3 and 4.
    # Work: 40 rounds; partials: 4; full cp starts after round 43.
    # Full cp order: grp2, echo, grp3, echo, grp4, echo.
    result, trace, tracker = _run(
        [CrashDirective(pid=0, at_round=45, phase=CrashPhase.BEFORE_ACTION)]
    )
    assert result.completed
    # Successor completes the sweep: groups 3 and 4 eventually receive a
    # full checkpoint for subchunk 4.
    full_cp_to_g3 = [
        event
        for event in trace.of_kind("send")
        if event.detail[0] == MessageKind.FULL_CHECKPOINT.value
        and event.detail[2] == ("full", 4, 3)
    ]
    assert full_cp_to_g3, "the interrupted sweep was resumed"
    assert tracker.redundant_executions() <= 2 * PLAN.subchunk_size_bound()


def test_double_takeover_within_one_group():
    # Kill 0 and then 1 immediately after activation; 2 must take over
    # third, in order, and the invariant work <= 3n' still holds.
    result, trace, tracker = _run(
        [
            CrashDirective(pid=0, at_round=15, phase=CrashPhase.AFTER_WORK),
            CrashDirective(pid=1, at_round=200, phase=CrashPhase.AFTER_WORK),
        ]
    )
    assert result.completed
    pids = [pid for _, pid in trace.activations()]
    assert pids[:3] == [0, 1, 2]
    assert result.metrics.work_total <= 3 * N


def test_cross_group_takeover_gets_full_checkpoint_knowledge():
    # Kill everyone in group 1 after chunk 1's full checkpoint went out;
    # process 4 (group 2) takes over knowing subchunk 4 is complete, so
    # units 1..40 are never redone.
    directives = [
        CrashDirective(pid=0, at_round=60, phase=CrashPhase.BEFORE_ACTION),
        CrashDirective(pid=1, at_round=60, phase=CrashPhase.BEFORE_ACTION),
        CrashDirective(pid=2, at_round=60, phase=CrashPhase.BEFORE_ACTION),
        CrashDirective(pid=3, at_round=60, phase=CrashPhase.BEFORE_ACTION),
    ]
    result, trace, tracker = _run(directives)
    assert result.completed
    for unit in range(1, 41):
        assert tracker.times_done(unit) == 1, unit
    pids = [pid for _, pid in trace.activations()]
    assert pids == [0, 4]


def test_terminal_checkpoint_crash_still_terminates_everyone():
    # Crash process 0 during the very last full checkpoint: some group
    # never hears (t); its first member takes over, finishes the sweep,
    # and every process still retires.
    # Find the terminal sweep empirically: run clean first.
    clean_trace = Trace(enabled=True)
    processes = build_protocol_a(N, T)
    Engine(processes, tracker=WorkTracker(N), trace=clean_trace).run()
    terminal_sends = [
        event
        for event in clean_trace.of_kind("send")
        if event.detail[2][1] == PLAN.num_subchunks
    ]
    crash_round = terminal_sends[0].round
    result, trace, tracker = _run(
        [
            CrashDirective(
                pid=0,
                at_round=crash_round,
                phase=CrashPhase.DURING_SEND,
                keep=frozenset(),
            )
        ]
    )
    assert result.completed
    assert result.halted == T - 1
    assert result.metrics.work_total <= 3 * N
