"""Byzantine agreement via work protocols (Section 5)."""

import pytest

from repro.agreement.byzantine import ByzantineAgreement
from repro.analysis import bounds
from repro.errors import ConfigurationError
from repro.sim.adversary import (
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    RandomCrashes,
    compose,
)
from repro.sim.crashes import CrashDirective, CrashPhase

N_SYS, T = 20, 5


@pytest.mark.parametrize("protocol", ["A", "B", "C"])
def test_validity_failure_free(protocol):
    outcome = ByzantineAgreement(N_SYS, T, protocol=protocol).run(99, seed=1)
    assert outcome.agreement
    assert outcome.decided_value == 99
    assert len(outcome.decisions) == N_SYS
    assert outcome.valid_for(99)


@pytest.mark.parametrize("protocol", ["A", "B", "C"])
def test_agreement_when_general_crashes_mid_broadcast(protocol):
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0, phase=CrashPhase.DURING_SEND)]
    )
    outcome = ByzantineAgreement(N_SYS, T, protocol=protocol).run(
        99, adversary=adversary, seed=2
    )
    assert outcome.general_crashed
    assert outcome.agreement  # everyone decides the same (possibly default)
    assert outcome.valid_for(99)  # vacuously: the general crashed


@pytest.mark.parametrize("protocol", ["A", "B", "C"])
@pytest.mark.parametrize("seed", range(5))
def test_agreement_under_random_sender_crashes(protocol, seed):
    adversary = RandomCrashes(T, max_action_index=10, victims=list(range(T + 1)))
    outcome = ByzantineAgreement(N_SYS, T, protocol=protocol).run(
        7, adversary=adversary, seed=seed
    )
    assert outcome.agreement, outcome.decisions
    assert outcome.valid_for(7)


@pytest.mark.parametrize("protocol", ["A", "B", "C"])
def test_agreement_under_kill_active_sender(protocol):
    outcome = ByzantineAgreement(N_SYS, T, protocol=protocol).run(
        5, adversary=KillActive(T, actions_before_kill=2), seed=3
    )
    assert outcome.agreement
    assert outcome.valid_for(5)


def test_message_complexity_via_b_is_subquadratic():
    outcome = ByzantineAgreement(48, 7, protocol="B").run(1, seed=4)
    bound = bounds.byzantine_messages(48, 7, "B")
    assert outcome.metrics.messages_total <= bound.value


def test_message_complexity_via_c():
    outcome = ByzantineAgreement(48, 7, protocol="C").run(1, seed=4)
    bound = bounds.byzantine_messages(48, 7, "C")
    assert outcome.metrics.messages_total <= bound.value


def test_every_process_is_informed_failure_free():
    outcome = ByzantineAgreement(N_SYS, T, protocol="B").run(31, seed=5)
    assert set(outcome.decisions) == set(range(N_SYS))
    assert set(outcome.decisions.values()) == {31}


def test_uninformed_senders_spread_default_value():
    # The general informs nobody (crashes before its broadcast): the
    # senders still run the protocol and everyone decides the default 0.
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0, phase=CrashPhase.BEFORE_ACTION)]
    )
    outcome = ByzantineAgreement(N_SYS, T, protocol="B").run(
        88, adversary=adversary, seed=6
    )
    assert outcome.agreement
    assert outcome.decided_value == 0


def test_mixed_crashes_including_mid_checkpoint():
    adversary = compose(
        FixedSchedule([CrashDirective(pid=0, at_round=0, phase=CrashPhase.DURING_SEND)]),
        CrashMidBroadcast(list(range(1, T))),
    )
    for protocol in ("A", "B", "C"):
        outcome = ByzantineAgreement(N_SYS, T, protocol=protocol).run(
            12, adversary=adversary, seed=7
        )
        assert outcome.agreement, (protocol, outcome.decisions)


def test_rejects_too_small_system():
    with pytest.raises(ConfigurationError):
        ByzantineAgreement(4, 5, protocol="B")


def test_rejects_unknown_protocol():
    with pytest.raises(ConfigurationError):
        ByzantineAgreement(10, 3, protocol="D").run(1)


def test_decide_round_covers_protocol_bound():
    ba = ByzantineAgreement(N_SYS, T, protocol="B")
    assert ba.decide_round() > 3 * N_SYS  # at least the B round bound
