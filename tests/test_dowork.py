"""The shared DoWork script (Figure 1): dispatch cases and transcript shape."""

from repro.core.chunks import SubchunkPlan
from repro.core.dowork import (
    FULL,
    PARTIAL,
    dowork_script,
    fictitious_initial_message,
)
from repro.core.groups import SqrtGroups
from repro.sim.actions import MessageKind

T = 16
GROUPS = SqrtGroups(T)
PLAN = SubchunkPlan(160, T, GROUPS.group_size)


def _transcript(pid, payload, sender):
    return list(dowork_script(pid, GROUPS, PLAN, payload, sender))


def _work_units(steps):
    return [work for work, _ in steps if work is not None]


def _broadcast_payloads(steps):
    return [sends[0].payload for _, sends in steps if sends]


def test_fresh_start_performs_all_units_in_order():
    payload, sender, _ = fictitious_initial_message(0, GROUPS)
    steps = _transcript(0, payload, sender)
    assert _work_units(steps) == list(range(1, 161))


def test_partial_checkpoint_after_every_subchunk():
    payload, sender, _ = fictitious_initial_message(0, GROUPS)
    steps = _transcript(0, payload, sender)
    partials = [p for p in _broadcast_payloads(steps) if p[0] == PARTIAL]
    assert partials == [(PARTIAL, c) for c in range(1, 17)]


def test_full_checkpoint_at_chunk_boundaries():
    payload, sender, _ = fictitious_initial_message(0, GROUPS)
    steps = _transcript(0, payload, sender)
    fulls = {p for p in _broadcast_payloads(steps) if p[0] == FULL}
    boundaries = {c for c in PLAN.boundaries()}
    # c = 0 is the echo of the fictitious initial message; every other
    # full checkpoint happens exactly at the chunk boundaries.
    assert {c for _, c, _ in fulls} - {0} == boundaries
    # Every later group is told about every boundary.
    for c in boundaries:
        assert {g for kind, cc, g in fulls if cc == c} == {2, 3, 4}


def test_resume_from_partial_checkpoint():
    # Took over having last heard (c=5) from a same-group predecessor.
    steps = _transcript(5, (PARTIAL, 5), 4)
    assert _work_units(steps) == list(PLAN.units_of(6)) + [
        unit for c in range(7, 17) for unit in PLAN.units_of(c)
    ]
    # First action completes the interrupted partial checkpoint of 5.
    first_payloads = _broadcast_payloads(steps[:1])
    assert first_payloads == [(PARTIAL, 5)]


def test_resume_from_partial_checkpoint_at_boundary_redoes_full():
    steps = _transcript(5, (PARTIAL, 4), 4)
    payloads = _broadcast_payloads(steps)
    assert payloads[0] == (PARTIAL, 4)
    assert payloads[1] == (FULL, 4, 3)  # g_5 = 2, sweep starts at group 3


def test_resume_from_full_checkpoint_outside_group():
    # Process 9 (group 3) heard (c=4, g=3) from process 0 (group 1).
    steps = _transcript(9, (FULL, 4, 3), 0)
    payloads = _broadcast_payloads(steps)
    # Prose dispatch: partial checkpoint of 4 to own higher members, then
    # the full checkpoint resumes at group 4.
    assert payloads[0] == (PARTIAL, 4)
    assert payloads[1] == (FULL, 4, 4)
    assert _work_units(steps)[0] == PLAN.units_of(5)[0]


def test_resume_from_full_checkpoint_echo_within_group():
    # Process 1 (group 1) heard the echo (c=4, g=2) from process 0.
    steps = _transcript(1, (FULL, 4, 2), 0)
    payloads = _broadcast_payloads(steps)
    assert payloads[0] == (FULL, 4, 2)   # finish the echo to own group
    assert payloads[1] == (FULL, 4, 3)   # resume the sweep after group 2


def test_terminal_subchunk_checkpointed_even_for_last_group_member():
    # The very last process: no higher members, no later groups - the
    # script may be all work and no messages.
    steps = _transcript(15, (PARTIAL, 15), 14)
    assert _work_units(steps) == PLAN.units_of(16)
    assert all(not sends for _, sends in steps if sends == [])


def test_kinds_are_checkpoint_kinds():
    payload, sender, _ = fictitious_initial_message(4, GROUPS)
    steps = _transcript(4, payload, sender)
    kinds = {send.kind for _, sends in steps for send in sends}
    assert kinds <= {MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT}


def test_broadcast_recipients_partial_vs_full():
    steps = _transcript(0, (PARTIAL, 15), 1)
    for _, sends in steps:
        if not sends:
            continue
        payload = sends[0].payload
        recipients = [send.dst for send in sends]
        if payload[0] == PARTIAL:
            assert recipients == [1, 2, 3]  # own higher members
        else:
            _, _, g = payload
            members = GROUPS.members(g)
            assert recipients in (members, [1, 2, 3])  # group or own echo


def test_fictitious_message_forms():
    payload, sender, stamp = fictitious_initial_message(0, GROUPS)
    assert sender == 0 and stamp == 0
    assert payload == (FULL, 0, GROUPS.num_groups)  # group-1 members
    payload, _, _ = fictitious_initial_message(9, GROUPS)
    assert payload == (FULL, 0, GROUPS.group_of(9))
