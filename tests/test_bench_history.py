"""Bench history snapshots and the cross-commit timeline."""

import json

import pytest

from repro.bench_history import (
    BenchTimeline,
    current_commit,
    list_snapshots,
    snapshot,
    timeline,
)
from repro.errors import ConfigurationError


def _bench_payload(**measures):
    row = dict(
        name="A_small",
        completed=True,
        seconds_best=0.01,
        seconds_all=[0.01],
        work=100,
        messages=50,
        virtual_rounds=7,
    )
    row.update(measures)
    return {"suite": "engine", "repeat": 1, "scenarios": [row]}


def _write_bench(tmp_path, name="bench.json", **measures):
    path = tmp_path / name
    path.write_text(json.dumps(_bench_payload(**measures)))
    return path


def test_snapshot_stamps_sequence_and_commit(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "abc1234")
    bench = _write_bench(tmp_path)
    history = tmp_path / "history"
    path = snapshot(bench, history)
    assert path.name == "0001_abc1234.json"
    data = json.loads(path.read_text())
    assert data["format"] == 1
    assert data["sequence"] == 1
    assert data["commit"] == "abc1234"
    assert data["label"] == "abc1234"
    assert data["bench"]["scenarios"][0]["name"] == "A_small"
    # The next snapshot continues the sequence.
    second = snapshot(bench, history, label="tuned")
    assert second.name == "0002_abc1234.json"
    assert json.loads(second.read_text())["label"] == "tuned"
    assert [p.name for p, _ in list_snapshots(history)] == [
        "0001_abc1234.json",
        "0002_abc1234.json",
    ]


def test_current_commit_prefers_the_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "feedf00d")
    assert current_commit() == "feedf00d"


def test_snapshot_rejects_non_bench_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"not": "a bench"}))
    with pytest.raises(ConfigurationError, match="scenarios"):
        snapshot(bad, tmp_path / "history")
    with pytest.raises(ConfigurationError, match="cannot read"):
        snapshot(tmp_path / "absent.json", tmp_path / "history")


def test_timeline_pivots_measures_across_snapshots(tmp_path, monkeypatch):
    history = tmp_path / "history"
    monkeypatch.setenv("REPRO_COMMIT", "c1")
    snapshot(_write_bench(tmp_path, "one.json", work=100), history)
    monkeypatch.setenv("REPRO_COMMIT", "c2")
    snapshot(_write_bench(tmp_path, "two.json", work=90), history)
    line = timeline(history)
    assert [c["commit"] for c in line.columns] == ["c1", "c2"]
    assert line.series("A_small", "work") == [100, 90]
    assert line.series("A_small", "seconds_best") == [0.01, 0.01]
    data = line.as_dict(measure="work")
    assert data["scenarios"]["A_small"] == [100, 90]
    table = line.table(measure="work")
    assert "A_small" in table and "c1" in table and "c2" in table
    assert "-10.0%" in table  # trend column vs the previous snapshot


def test_timeline_handles_scenarios_that_come_and_go(tmp_path, monkeypatch):
    history = tmp_path / "history"
    monkeypatch.setenv("REPRO_COMMIT", "c1")
    snapshot(_write_bench(tmp_path, "one.json"), history)
    payload = _bench_payload()
    payload["scenarios"].append(
        dict(payload["scenarios"][0], name="B_new", work=70)
    )
    later = tmp_path / "two.json"
    later.write_text(json.dumps(payload))
    monkeypatch.setenv("REPRO_COMMIT", "c2")
    snapshot(later, history)
    line = timeline(history)
    assert line.series("B_new", "work") == [None, 70]
    assert line.series("A_small", "work") == [100, 100]


def test_timeline_validates_measures(tmp_path):
    empty = BenchTimeline(columns=[], rows={})
    with pytest.raises(ConfigurationError, match="measure"):
        empty.as_dict(measure="seconds")
    assert "no bench snapshots" in empty.table()
    assert timeline(tmp_path / "nowhere").columns == []


def test_shipped_history_snapshot_loads():
    snapshots = list_snapshots("benchmarks/history")
    assert snapshots, "the repo ships at least one bench snapshot"
    line = timeline("benchmarks/history")
    assert "D_n4096_t64" in line.scenarios
