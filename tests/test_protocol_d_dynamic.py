"""Dynamic-workload Protocol D (Section 4 remark / patent [9]).

Guarantee tested: every unit that arrives at a site that never crashes
is eventually performed.  (A unit whose only knowing site crashes before
reporting it is unrecoverable in this model - no other process ever
learns it exists - exactly as a process crashing before any observable
action is unrecoverable in the static model.)
"""

import pytest

from repro.core.protocol_d_dynamic import (
    ArrivalSchedule,
    build_dynamic_protocol_d,
    uniform_arrivals,
)
from repro.errors import ConfigurationError
from repro.sim.adversary import RandomCrashes, StaggeredWorkKills
from repro.sim.engine import Engine
from repro.work.tracker import WorkTracker


def _run(n=48, t=8, every=2, cycle=12, adversary=None, seed=0):
    schedule = uniform_arrivals(n, t, every=every)
    processes = build_dynamic_protocol_d(t, schedule, cycle_length=cycle)
    tracker = WorkTracker(n)
    engine = Engine(processes, tracker=tracker, adversary=adversary, seed=seed)
    result = engine.run()
    return result, processes, tracker, schedule


def test_failure_free_completes_everything_exactly_once():
    result, _, tracker, _ = _run()
    assert result.completed
    assert tracker.redundant_executions() == 0


def test_nobody_knows_the_pool_initially():
    schedule = uniform_arrivals(10, 4, every=5)
    processes = build_dynamic_protocol_d(4, schedule)
    assert all(not p.known for p in processes)


def test_arrivals_propagate_through_agreement():
    result, processes, _, schedule = _run()
    assert result.completed
    for process in processes:
        assert process.known == set(schedule.units)


def test_late_arrivals_trigger_additional_cycles():
    # A single unit arriving long after the first pool drains.
    arrivals = [(0, 0, 1), (0, 1, 2), (200, 2, 3)]
    schedule = ArrivalSchedule(arrivals)
    processes = build_dynamic_protocol_d(4, schedule, cycle_length=8)
    tracker = WorkTracker(3)
    result = Engine(processes, tracker=tracker, seed=1).run()
    assert result.completed
    assert tracker.first_execution(3)[0] >= 200


def test_units_at_surviving_sites_always_complete():
    for seed in range(8):
        result, processes, tracker, schedule = _run(
            adversary=RandomCrashes(4, max_action_index=15), seed=seed
        )
        crashed = {p.pid for p in processes if p.crashed}
        recoverable = {
            unit for rnd, site, unit in schedule.arrivals if site not in crashed
        }
        missing = set(tracker.missing_units())
        assert not (recoverable & missing), (seed, sorted(recoverable & missing))


def test_share_of_crashed_worker_is_reassigned():
    # Site 2 crashes mid-work-phase; its assigned units must still finish
    # because its completion report never merged.
    result, processes, tracker, schedule = _run(
        adversary=StaggeredWorkKills.plan([(2, 1)]), seed=3
    )
    crashed = {p.pid for p in processes if p.crashed}
    assert crashed == {2}
    recoverable = {
        unit for rnd, site, unit in schedule.arrivals if site not in crashed
    }
    assert not (recoverable & set(tracker.missing_units()))


def test_all_live_processes_halt():
    result, processes, _, _ = _run(
        adversary=RandomCrashes(3, max_action_index=10), seed=5
    )
    assert all(p.halted for p in processes if not p.crashed)


def test_duplicate_unit_arrival_rejected():
    with pytest.raises(ConfigurationError):
        ArrivalSchedule([(0, 0, 1), (3, 1, 1)])


def test_cycle_length_validated():
    schedule = uniform_arrivals(4, 2)
    with pytest.raises(ConfigurationError):
        build_dynamic_protocol_d(2, schedule, cycle_length=2)


def test_empty_schedule_halts_immediately():
    schedule = ArrivalSchedule([])
    processes = build_dynamic_protocol_d(4, schedule)
    result = Engine(processes, tracker=WorkTracker(0), seed=1).run()
    assert result.completed
    assert all(p.halted for p in processes)


def test_work_conservation_no_unit_done_before_arrival():
    result, _, tracker, schedule = _run(every=4)
    assert result.completed
    arrival_round = {unit: rnd for rnd, _, unit in schedule.arrivals}
    for unit in schedule.units:
        first = tracker.first_execution(unit)
        assert first is not None and first[0] >= arrival_round[unit]
