"""Protocol D: phases, agreement, graceful degradation, reversion."""

import math

import pytest

from repro import run_protocol
from repro.analysis import bounds
from repro.core.protocol_d import ProtocolDProcess, build_protocol_d
from repro.sim.actions import MessageKind
from repro.sim.adversary import FixedSchedule, RandomCrashes, StaggeredWorkKills
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.work.tracker import WorkTracker

N, T = 128, 16


def _reverted(metrics):
    return (
        metrics.messages_of(MessageKind.PARTIAL_CHECKPOINT)
        + metrics.messages_of(MessageKind.FULL_CHECKPOINT)
    ) > 0


# ---- failure-free exact behaviour (Section 4 text) -------------------------


def test_failure_free_exact_work():
    result = run_protocol("D", N, T, seed=1)
    assert result.completed
    assert result.metrics.work_total == N
    assert result.metrics.redundant_work() == 0


def test_failure_free_exact_rounds():
    result = run_protocol("D", N, T, seed=1)
    assert result.metrics.retire_round + 1 == N // T + 2


def test_failure_free_message_bound():
    result = run_protocol("D", N, T, seed=1)
    assert result.metrics.messages_total == 2 * T * (T - 1)
    assert result.metrics.messages_total <= 2 * T * T


def test_each_process_does_its_own_share():
    result = run_protocol("D", N, T, seed=1)
    per_process = result.metrics.work_by_process
    assert all(per_process[pid] == N // T for pid in range(T))


# ---- one failure (Section 4 text) --------------------------------------------


def test_one_failure_claims():
    result = run_protocol(
        "D", N, T, adversary=StaggeredWorkKills.plan([(3, 2)]), seed=2
    )
    metrics = result.metrics
    assert result.completed
    assert metrics.work_total <= N + N // T
    assert metrics.retire_round + 1 <= N // T + math.ceil(N / (T * (T - 1))) + 6
    assert metrics.messages_total <= 5 * T * T


# ---- Theorem 4.1(1) -------------------------------------------------------------


@pytest.mark.parametrize("f", [1, 2, 4, 7])
def test_theorem_4_1_normal_path(f):
    adversary = StaggeredWorkKills.plan([(pid, 1 + pid % 3) for pid in range(1, f + 1)])
    result = run_protocol("D", N, T, adversary=adversary, seed=3)
    metrics = result.metrics
    assert result.completed
    assert not _reverted(metrics)
    assert metrics.work_total <= bounds.protocol_d_work(N, T, f).value
    assert metrics.messages_total <= bounds.protocol_d_messages(N, T, f).value


def test_crashed_processes_shares_are_redone():
    # Kill 2 after one unit of its share: the other units of its share
    # must be re-assigned and completed in phase 2.
    result = run_protocol(
        "D", N, T, adversary=StaggeredWorkKills.plan([(2, 1)]), seed=4
    )
    assert result.completed
    assert result.metrics.work_total > N - N // T  # some redo happened
    assert result.metrics.work_total <= 2 * N


# ---- Theorem 4.1(2): reversion ---------------------------------------------------


def test_reversion_triggers_when_more_than_half_die():
    f = T // 2 + 2
    adversary = StaggeredWorkKills.plan([(pid, 1) for pid in range(f)])
    result = run_protocol("D", N, T, adversary=adversary, seed=5)
    metrics = result.metrics
    assert result.completed
    assert _reverted(metrics)
    assert metrics.work_total <= bounds.protocol_d_reverted_work(N, T, f).value
    assert (
        metrics.messages_total
        <= bounds.protocol_d_reverted_messages(N, T, f).value
    )


def test_no_reversion_when_exactly_half_survive():
    f = T // 2  # exactly half remain: |T'| > 2|T| is false
    adversary = StaggeredWorkKills.plan([(pid, 1) for pid in range(f)])
    result = run_protocol("D", N, T, adversary=adversary, seed=6)
    assert result.completed
    assert not _reverted(result.metrics)


def test_reversion_threshold_configurable():
    f = T // 4 + 1  # kills a quarter
    adversary_plan = [(pid, 1) for pid in range(f)]
    eager = run_protocol(
        "D",
        N,
        T,
        adversary=StaggeredWorkKills.plan(adversary_plan),
        seed=7,
        revert_threshold=0.9,
    )
    relaxed = run_protocol(
        "D",
        N,
        T,
        adversary=StaggeredWorkKills.plan(adversary_plan),
        seed=7,
        revert_threshold=0.25,
    )
    assert eager.completed and relaxed.completed
    assert _reverted(eager.metrics)
    assert not _reverted(relaxed.metrics)


# ---- agreement machinery ----------------------------------------------------------


def test_final_views_agree_across_processes():
    """All deciders of each agreement phase hold identical (S, T)."""
    for seed in range(6):
        processes = build_protocol_d(N, T)
        adversary = RandomCrashes(T // 2, max_action_index=12)
        tracker = WorkTracker(N)
        engine = Engine(processes, tracker=tracker, adversary=adversary, seed=seed)
        result = engine.run()
        assert result.completed
        live = [p for p in processes if not p.crashed]
        # At termination every live process agreed the work is done
        # (or agreed on the same reversion inputs).
        final_S = {frozenset(p.S) for p in live}
        assert len(final_S) == 1, final_S


def test_grace_round_tolerates_one_round_skew():
    # Failures in phase 1 force phase 2 starts to differ by one round;
    # without the grace round live processes would be misdeclared faulty.
    adversary = StaggeredWorkKills.plan([(1, 1), (5, 2)])
    result = run_protocol("D", N, T, adversary=adversary, seed=8)
    assert result.completed
    assert result.survivors == T - 2
    assert result.halted == T - 2


def test_crash_during_agreement_broadcast():
    # Crash process 2 mid-agreement-broadcast: a subset of peers sees its
    # view, the rest learn of it transitively or remove it.
    work_rounds = N // T
    directives = [
        CrashDirective(
            pid=2, at_round=work_rounds + 1, phase=CrashPhase.DURING_SEND
        )
    ]
    for seed in range(5):
        result = run_protocol(
            "D", N, T, adversary=FixedSchedule(directives), seed=seed
        )
        assert result.completed


def test_random_battery_always_completes():
    for seed in range(10):
        result = run_protocol(
            "D", N, T, adversary=RandomCrashes(T - 1, max_action_index=10), seed=seed
        )
        assert result.completed
        assert result.metrics.work_total <= 4 * N


# ---- shapes and edges ------------------------------------------------------------------


def test_n_not_divisible_by_t():
    result = run_protocol("D", 100, 12, seed=1)
    assert result.completed
    assert result.metrics.work_total == 100


def test_n_smaller_than_t():
    result = run_protocol("D", 5, 16, seed=1)
    assert result.completed


def test_t_one():
    result = run_protocol("D", 10, 1, seed=1)
    assert result.completed
    assert result.metrics.messages_total == 0


def test_invalid_threshold_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ProtocolDProcess(0, 4, 10, revert_threshold=0.0)
    with pytest.raises(ConfigurationError):
        ProtocolDProcess(0, 4, 10, revert_threshold=1.5)
