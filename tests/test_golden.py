"""Golden regression tests: exact failure-free numbers per protocol.

These pin the full observable behaviour of every protocol on fixed
configurations.  Any change to message layout, checkpoint cadence,
deadline constants or engine timing shows up here first - with exact
before/after numbers rather than a loosened bound.

(The adversarial counterparts are pinned too, exercising the adversary
RNG derivation path whose cross-process stability matters.)
"""

import pytest

from repro import run_protocol
from repro.sim.adversary import KillActive

FAILURE_FREE = [
    # (protocol, n, t, work, messages, retire_round)
    ("A", 64, 16, 64, 135, 105),
    ("A", 200, 25, 200, 284, 266),
    ("B", 64, 16, 64, 135, 105),
    ("B", 200, 25, 200, 284, 266),
    ("C", 32, 8, 35, 79, 141595),
    ("C-batched", 128, 8, 176, 57, 77611404840),
    ("C-naive", 32, 8, 53, 53, 5505183),
    ("D", 128, 16, 128, 480, 9),
    ("replicate", 40, 5, 200, 0, 39),
    ("naive", 40, 5, 40, 160, 80),
]


@pytest.mark.parametrize(
    "protocol,n,t,work,messages,retire", FAILURE_FREE,
    ids=[f"{p}-n{n}-t{t}" for p, n, t, *_ in FAILURE_FREE],
)
def test_failure_free_golden(protocol, n, t, work, messages, retire):
    result = run_protocol(protocol, n, t, seed=0)
    metrics = result.metrics
    assert result.completed
    assert metrics.work_total == work
    assert metrics.messages_total == messages
    assert metrics.retire_round == retire


def test_golden_is_seed_independent_without_adversary():
    # Failure-free executions are fully deterministic: the seed only
    # feeds the adversary and crash-subset draws.
    for seed in (0, 1, 99):
        result = run_protocol("B", 64, 16, seed=seed)
        assert (
            result.metrics.work_total,
            result.metrics.messages_total,
            result.metrics.retire_round,
        ) == (64, 135, 105)


def test_adversarial_golden_stable_across_runs():
    # Same seed, same adversary: byte-identical accounting, twice.
    def run():
        result = run_protocol(
            "A", 64, 16, adversary=KillActive(15, actions_before_kill=2), seed=5
        )
        return result.metrics.as_dict()

    assert run() == run()
