"""Weighted effort models (Conclusions remark)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.effort import EffortModel, cheapest, crossover_message_weight
from repro.sim.metrics import Metrics


def _metrics(work, messages):
    metrics = Metrics()
    metrics.work_total = work
    metrics.messages_total = messages
    return metrics


def test_unit_weights_match_paper_effort():
    metrics = _metrics(10, 7)
    assert EffortModel().effort(metrics) == metrics.effort == 17


def test_weighted_effort():
    model = EffortModel(work_weight=2.0, message_weight=0.5)
    assert model.effort(_metrics(10, 8)) == 24.0


def test_crossover_weight_basic():
    # A: (100 work, 50 msgs); B: (130 work, 20 msgs).
    # Tie at weight w: 100 + 50w = 130 + 20w -> w = 1.
    assert crossover_message_weight(100, 50, 130, 20) == 1.0


def test_crossover_none_when_dominated():
    # A dominates B on both axes: no non-negative crossover.
    assert crossover_message_weight(100, 10, 120, 20) is None


def test_crossover_none_when_equal_messages():
    assert crossover_message_weight(100, 10, 120, 10) is None


def test_cheapest_picks_minimum():
    profiles = {"A": (100, 50), "R": (400, 0)}
    assert cheapest(profiles, EffortModel(message_weight=1.0)) == "A"
    assert cheapest(profiles, EffortModel(message_weight=100.0)) == "R"


@given(
    st.integers(0, 1000),
    st.integers(0, 1000),
    st.integers(0, 1000),
    st.integers(0, 1000),
)
def test_crossover_really_ties(wa, ma, wb, mb):
    weight = crossover_message_weight(wa, ma, wb, mb)
    if weight is not None:
        model = EffortModel(message_weight=weight)
        assert abs(model.effort_of(wa, ma) - model.effort_of(wb, mb)) < 1e-6
