"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.sim.adversary import (
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    RandomCrashes,
)
from repro.sim.crashes import CrashDirective


def adversary_battery(t: int):
    """Factories for the standard adversary battery used across protocol
    tests (mirrors the experiment registry's)."""
    return [
        lambda: None,
        lambda: RandomCrashes(max(1, t // 2), max_action_index=20),
        lambda: KillActive(t - 1, actions_before_kill=2),
        lambda: KillActive(t - 1, actions_before_kill=1),
        lambda: CrashMidBroadcast(list(range(min(6, t)))),
    ]


def all_but_one_dead(t: int) -> FixedSchedule:
    """Every process except the last crashes before doing anything."""
    return FixedSchedule([CrashDirective(pid=pid, at_round=0) for pid in range(t - 1)])


@pytest.fixture
def seeds():
    return range(5)
