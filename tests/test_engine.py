"""Tests of the synchronous engine: delivery semantics, fast-forward,
crash phases, stall detection and invariant checking."""

from typing import List, Optional

import pytest

from repro.errors import (
    AdversaryError,
    BudgetExceeded,
    InvariantViolation,
    SimulationStalled,
)
from repro.sim.actions import Action, Envelope, MessageKind, Send
from repro.sim.adversary import FixedSchedule
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker


class Script(Process):
    """Test helper: runs a fixed list of (wake, action) steps, records inbox."""

    def __init__(self, pid, t, steps, active=False):
        super().__init__(pid, t)
        self.steps = list(steps)
        self.inboxes = []
        self._active_flag = active

    @property
    def is_active(self):
        return self._active_flag and not self.retired

    def wake_round(self) -> Optional[int]:
        if self.retired or not self.steps:
            return None
        return self.steps[0][0]

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        self.inboxes.append((round_number, list(inbox)))
        if self.steps and self.steps[0][0] <= round_number:
            _, action = self.steps.pop(0)
            return action
        return Action.idle()


def ping(dst, tag="ping"):
    return Action(sends=[Send(dst, (tag,), MessageKind.CONTROL)])


def test_message_visible_only_after_send_round():
    sender = Script(0, 2, [(0, ping(1)), (1, Action.halting())])
    receiver = Script(1, 2, [(0, Action.idle()), (1, Action.halting())])
    engine = Engine([sender, receiver])
    engine.run()
    # Receiver acted at rounds 0 and 1; the round-0 send arrives at round 1.
    round0 = [env for r, inbox in receiver.inboxes if r == 0 for env in inbox]
    round1 = [env for r, inbox in receiver.inboxes if r == 1 for env in inbox]
    assert round0 == []
    assert len(round1) == 1 and round1[0].payload == ("ping",)


def test_mail_wakes_a_sleeping_process():
    sender = Script(0, 2, [(0, ping(1)), (0, Action.halting())])
    receiver = Script(1, 2, [(100, Action.halting())])  # nominally asleep
    engine = Engine([sender, receiver])
    engine.run()
    rounds_acted = [r for r, _ in receiver.inboxes]
    assert 1 in rounds_acted  # woken by the message well before round 100


def test_fast_forward_skips_quiescent_rounds():
    late = Script(0, 1, [(10**9, Action.halting())])
    engine = Engine([late])
    engine.run()
    assert engine.round == 10**9
    assert late.inboxes[0][0] == 10**9
    assert len(late.inboxes) == 1  # exactly one processed round


def test_work_is_tracked():
    worker = Script(0, 1, [(0, Action(work=1)), (1, Action(work=2, halt=True))])
    tracker = WorkTracker(2)
    result = Engine([worker], tracker=tracker).run()
    assert result.completed
    assert tracker.times_done(1) == 1 and tracker.times_done(2) == 1
    assert result.metrics.work_total == 2


def test_stall_raises():
    waiter = Script(0, 1, [])  # waits for mail that never comes
    with pytest.raises(SimulationStalled):
        Engine([waiter]).run()


def test_max_rounds_budget():
    late = Script(0, 1, [(10**9, Action.halting())])
    with pytest.raises(BudgetExceeded):
        Engine([late], max_rounds=1000).run()


def test_crash_before_action_suppresses_everything():
    victim = Script(0, 2, [(0, ping(1))])
    peer = Script(1, 2, [(5, Action.halting())])
    adversary = FixedSchedule([CrashDirective(pid=0, at_round=0)])
    result = Engine([victim, peer], adversary=adversary).run()
    assert victim.crashed
    assert result.metrics.messages_total == 0
    assert result.survivors == 1


def test_crash_after_work_keeps_work_drops_sends():
    victim = Script(
        0, 2, [(0, Action(work=1, sends=[Send(1, ("x",), MessageKind.CONTROL)]))]
    )
    peer = Script(1, 2, [(5, Action.halting())])
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0, phase=CrashPhase.AFTER_WORK)]
    )
    tracker = WorkTracker(1)
    result = Engine([victim, peer], tracker=tracker, adversary=adversary).run()
    assert tracker.times_done(1) == 1
    assert result.metrics.messages_total == 0


def test_crash_during_send_delivers_chosen_subset():
    sends = [Send(dst, ("bcast",), MessageKind.CONTROL) for dst in (1, 2, 3)]
    victim = Script(0, 4, [(0, Action(sends=sends))])
    peers = [Script(pid, 4, [(5, Action.halting())]) for pid in (1, 2, 3)]
    adversary = FixedSchedule(
        [
            CrashDirective(
                pid=0, at_round=0, phase=CrashPhase.DURING_SEND, keep=frozenset({2})
            )
        ]
    )
    result = Engine([victim] + peers, adversary=adversary).run()
    assert result.metrics.messages_total == 1
    got = [p for p in peers if any(inbox for _, inbox in p.inboxes)]
    assert [p.pid for p in got] == [2]


def test_crash_after_action_counts_everything():
    victim = Script(0, 2, [(0, Action(work=1, sends=[Send(1, ("x",), MessageKind.CONTROL)]))])
    peer = Script(1, 2, [(5, Action.halting())])
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0, phase=CrashPhase.AFTER_ACTION)]
    )
    tracker = WorkTracker(1)
    result = Engine([victim, peer], tracker=tracker, adversary=adversary).run()
    assert victim.crashed
    assert tracker.times_done(1) == 1
    assert result.metrics.messages_total == 1


def test_crash_of_idle_process_applies_lazily():
    sleeper = Script(0, 2, [(50, ping(1)), (51, Action.halting())])
    peer = Script(1, 2, [(60, Action.halting())])
    adversary = FixedSchedule([CrashDirective(pid=0, at_round=10)])
    result = Engine([sleeper, peer], adversary=adversary).run()
    assert sleeper.crashed
    # The wake at 50 must have been suppressed: no message ever arrived.
    assert result.metrics.messages_total == 0
    assert sleeper.crash_round == 10  # accounted at the scheduled round


def test_total_failure_guard():
    procs = [Script(pid, 2, [(0, Action.idle()), (1, Action.idle())]) for pid in (0, 1)]
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0), CrashDirective(pid=1, at_round=0)]
    )
    with pytest.raises(AdversaryError):
        Engine(procs, adversary=adversary).run()


def test_total_failure_allowed_when_opted_in():
    procs = [Script(pid, 2, [(0, Action.idle())]) for pid in (0, 1)]
    adversary = FixedSchedule(
        [CrashDirective(pid=0, at_round=0), CrashDirective(pid=1, at_round=0)]
    )
    tracker = WorkTracker(3)
    result = Engine(
        procs, tracker=tracker, adversary=adversary, allow_total_failure=True
    ).run()
    assert result.survivors == 0
    assert not result.completed


def test_strict_invariant_catches_two_actives():
    a = Script(0, 2, [(0, Action.idle()), (1, Action.idle())], active=True)
    b = Script(1, 2, [(0, Action.idle()), (1, Action.idle())], active=True)
    with pytest.raises(InvariantViolation):
        Engine([a, b], strict_invariants=True).run()


def test_sends_to_retired_processes_count_but_do_not_deliver():
    sender = Script(0, 2, [(2, ping(1)), (3, Action.halting())])
    early = Script(1, 2, [(0, Action.halting())])
    result = Engine([sender, early]).run()
    assert result.metrics.messages_total == 1
    assert all(not inbox for _, inbox in early.inboxes)


def test_trace_records_events():
    trace = Trace(enabled=True)
    worker = Script(0, 1, [(0, Action(work=1, halt=True))])
    Engine([worker], tracker=WorkTracker(1), trace=trace).run()
    kinds = {event.kind for event in trace}
    assert "work" in kinds and "halt" in kinds
    assert trace.first("work").pid == 0
