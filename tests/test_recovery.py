"""Crash-recover faults: engine lifecycle, recovery-aware Protocol D,
and the correlated-failure adversaries (rack kills, neighbour cascades)."""

import json
import random

import pytest

from repro import run_protocol
from repro.api import Scenario
from repro.errors import AdversaryError, ConfigurationError
from repro.sim.adversary import (
    FixedSchedule,
    NeighbourCascade,
    RackFailures,
    RecoveringCrashes,
    adversary_from_spec,
)
from repro.sim.crashes import (
    CrashDirective,
    draw_repair_delay,
    normalize_repair_spec,
)
from repro.sim.trace import Trace


# ---- engine lifecycle ------------------------------------------------


def test_fixed_schedule_recovery_crashes_then_rejoins():
    trace = Trace(enabled=True)
    schedule = FixedSchedule([CrashDirective(pid=1, at_round=4, recover_after=3)])
    result = run_protocol(
        "D-recovery", 24, 4, adversary=schedule, seed=0, trace=trace
    )
    assert result.completed
    assert result.metrics.crashes == 1
    assert result.metrics.recoveries == 1
    crash = trace.first("crash")
    recover = trace.first("recover")
    assert crash.pid == 1 and crash.round == 4
    assert recover.pid == 1 and recover.round == 7
    # The rejoiner acted again after coming back.
    assert any(
        e.round >= 7 for e in trace.for_pid(1) if e.kind in ("work", "send")
    )


def test_recovered_process_counts_as_survivor():
    schedule = FixedSchedule([CrashDirective(pid=0, at_round=2, recover_after=2)])
    result = run_protocol("D-recovery", 24, 4, adversary=schedule, seed=1)
    assert result.completed
    assert result.survivors == 4  # nobody is down at the end


def test_recovery_rejected_for_non_recovery_protocols():
    schedule = FixedSchedule([CrashDirective(pid=0, at_round=2, recover_after=2)])
    with pytest.raises(AdversaryError, match="supports_recovery"):
        run_protocol("A", 24, 4, adversary=schedule, seed=0)


def test_recover_after_must_be_positive():
    schedule = FixedSchedule([CrashDirective(pid=0, at_round=2, recover_after=0)])
    with pytest.raises(AdversaryError, match="got 0"):
        run_protocol("D-recovery", 24, 4, adversary=schedule, seed=0)


def test_repeated_crash_recover_cycles_still_terminate():
    schedule = FixedSchedule(
        [
            CrashDirective(pid=2, at_round=3, recover_after=2),
            CrashDirective(pid=2, at_round=9, recover_after=2),
            CrashDirective(pid=2, at_round=15, recover_after=2),
        ]
    )
    result = run_protocol("D-recovery", 24, 4, adversary=schedule, seed=0)
    assert result.completed
    assert result.metrics.crashes == 3
    assert result.metrics.recoveries == 3


# ---- adversaries -----------------------------------------------------


def test_recovering_crashes_every_crash_recovers():
    for seed in range(4):
        result = run_protocol(
            "D-recovery",
            40,
            8,
            adversary=RecoveringCrashes(3, repair_delay=5, max_action_index=15),
            seed=seed,
        )
        assert result.completed
        assert result.metrics.recoveries == result.metrics.crashes
        assert result.survivors == 8


def test_recovering_crashes_repeat_mode_rearms():
    # Repeat mode can legitimately livelock a victim (crash cadence
    # shorter than a phase replay), so bound the run and read the trace
    # instead of demanding termination.
    from repro.errors import BudgetExceeded

    trace = Trace(enabled=True)
    try:
        run_protocol(
            "D-recovery",
            40,
            8,
            adversary=RecoveringCrashes(
                2, repair_delay=4, max_action_index=10, repeat=True
            ),
            seed=3,
            max_rounds=300,
            trace=trace,
        )
    except BudgetExceeded:
        pass
    crashes = trace.of_kind("crash")
    recoveries = trace.of_kind("recover")
    # Re-arming means more crashes than the victim budget, and every
    # completed repair interval produced a rejoin.
    assert len(crashes) > 2
    assert recoveries
    assert {e.pid for e in recoveries} <= {e.pid for e in crashes}


def test_rack_failures_kill_whole_groups():
    trace = Trace(enabled=True)
    result = run_protocol(
        "D",
        40,
        8,
        adversary=RackFailures(1, group_size=4),
        seed=2,
        trace=trace,
    )
    crashed = {e.pid for e in trace.of_kind("crash")}
    # The victims form one consecutive-pid rack (possibly truncated by
    # the never-kill-everyone guard).
    assert crashed
    assert max(crashed) - min(crashed) < 4
    assert result.completed


def test_rack_failures_with_recovery_rejoin():
    result = run_protocol(
        "D-recovery",
        40,
        8,
        adversary=RackFailures(1, group_size=3, recover_after=6),
        seed=2,
    )
    assert result.completed
    # The chosen rack may be the short leftover group (8 pids in 3s).
    assert result.metrics.crashes >= 2
    assert result.metrics.recoveries == result.metrics.crashes
    assert result.survivors == 8


def test_neighbour_cascade_spreads_from_origin():
    trace = Trace(enabled=True)
    result = run_protocol(
        "D",
        40,
        8,
        adversary=NeighbourCascade([3], p=1.0, budget=4),
        seed=0,
        trace=trace,
    )
    crashes = trace.of_kind("crash")
    assert len(crashes) >= 2  # p=1.0 always infects both neighbours
    # Each later victim neighbours an earlier one on the pid ring.
    infected = [crashes[0].pid]
    for event in crashes[1:]:
        assert any(
            event.pid in ((p - 1) % 8, (p + 1) % 8) for p in infected
        )
        infected.append(event.pid)
    assert result.completed


def test_neighbour_cascade_p_zero_stays_at_origins():
    result = run_protocol(
        "D", 40, 8, adversary=NeighbourCascade([2, 5], p=0.0), seed=5
    )
    assert result.metrics.crashes == 2


# ---- determinism and serialization -----------------------------------


@pytest.mark.parametrize(
    "spec",
    [
        "crash-recover:2,repair_delay=5,max_action_index=12",
        "rack:1,group_size=3,recover_after=6",
        "cascade-neighbours:1,p=0.7,hop_delay=2,recover_after=7",
    ],
)
def test_recovery_adversaries_deterministic_under_seed(spec):
    def run():
        return Scenario(
            protocol="D-recovery", n=48, t=6, seed=9, adversary=spec
        ).run()

    first, second = run(), run()
    assert first.metrics.as_dict() == second.metrics.as_dict()
    assert first.completed and second.completed


def test_recovery_scenario_json_round_trip_reproduces_metrics():
    scenario = Scenario(
        protocol="D-recovery",
        n=48,
        t=6,
        seed=11,
        adversary={
            "kind": "crash-recover",
            "count": 2,
            "repair_delay": 5,
            "max_action_index": 15,
        },
    )
    clone = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    first, second = scenario.run(), clone.run()
    assert first.metrics.as_dict() == second.metrics.as_dict()
    assert first.metrics.recoveries > 0


def test_recovery_metrics_exposed_in_as_dict():
    result = run_protocol(
        "D-recovery",
        24,
        4,
        adversary=FixedSchedule(
            [CrashDirective(pid=1, at_round=4, recover_after=3)]
        ),
        seed=0,
    )
    assert result.metrics.as_dict()["recoveries"] == 1


# ---- spec grammar ----------------------------------------------------


def test_crash_recover_spec_builds_adversary():
    adversary = adversary_from_spec(
        "crash-recover:3,repair_delay=6,max_action_index=20"
    )
    assert isinstance(adversary, RecoveringCrashes)
    assert adversary.repair_delay == 6


def test_rack_spec_group_forms():
    flat = adversary_from_spec("rack:1,groups=0+1+2")
    assert flat.explicit_groups == [[0, 1, 2]]
    explicit = adversary_from_spec(
        {"kind": "rack", "racks": 1, "groups": [[0, 1], [4, 5]]}
    )
    assert explicit.explicit_groups == [[0, 1], [4, 5]]


def test_cascade_neighbours_spec_builds_adversary():
    adversary = adversary_from_spec(
        {"kind": "cascade-neighbours", "origins": [2], "p": 0.25}
    )
    assert isinstance(adversary, NeighbourCascade)
    assert adversary.p == 0.25


@pytest.mark.parametrize(
    "spec, fragment",
    [
        # Malformed values must surface the offending value, not just a
        # parameter name.
        ("crash-recover:2,repair_delay=0", "0"),
        ("crash-recover:2,repair_delay=soon", "'soon'"),
        ("crash-recover:-1", "-1"),
        ({"kind": "crash-recover"}, "count"),
        ({"kind": "crash-recover", "count": 2, "phases": ["sideways"]}, "sideways"),
        ("rack:2,group_size=0", "0"),
        ({"kind": "rack", "racks": 1, "groups": "nope"}, "nope"),
        ({"kind": "rack", "racks": 1, "groups": []}, "[]"),
        ("cascade-neighbours:1,p=1.5", "1.5"),
        ("cascade-neighbours:1,p=high", "'high'"),
        ("cascade-neighbours:1,hop_delay=0", "0"),
        ({"kind": "cascade-neighbours"}, "origins"),
    ],
)
def test_malformed_recovery_specs_name_the_offending_value(spec, fragment):
    with pytest.raises(ConfigurationError) as excinfo:
        adversary_from_spec(spec)
    assert fragment in str(excinfo.value)


# ---- repair-time distributions ---------------------------------------


def test_repair_spec_spellings_canonicalise_identically():
    canonical = {"kind": "uniform", "low": 2, "high": 6}
    for spelling in (
        "uniform:2,6",
        "uniform:2-6",
        "uniform:2..6",
        {"kind": "uniform", "low": 2, "high": 6},
    ):
        assert normalize_repair_spec(spelling, what="x") == canonical
    assert (
        normalize_repair_spec("exp:mean=3", what="x")
        == normalize_repair_spec("exp:3", what="x")
        == {"kind": "exp", "mean": 3.0}
    )
    # Fixed delays stay plain ints (floats are coerced, not kept).
    assert normalize_repair_spec(8, what="x") == 8
    assert normalize_repair_spec(8.0, what="x") == 8
    assert normalize_repair_spec("8", what="x") == 8


def test_repair_spec_spellings_share_a_cache_key():
    def key(repair_delay):
        return Scenario(
            protocol="D-recovery",
            n=48,
            t=6,
            seed=3,
            adversary={
                "kind": "crash-recover",
                "count": 2,
                "repair_delay": repair_delay,
            },
        ).cache_key()

    assert (
        key("uniform:2,6")
        == key("uniform:2-6")
        == key({"kind": "uniform", "low": 2, "high": 6})
    )
    assert key("exp:mean=3") == key({"kind": "exp", "mean": 3})


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("uniform:6,2", "[6, 2]"),
        ("uniform:0-4", "got 0"),
        ("uniform:2", "'uniform:LO,HI'"),
        ("exp:mean=0", "0.0"),
        ("exp:mean=fast", "'fast'"),
        ("soon", "'soon'"),
        ({"kind": "weibull", "shape": 2}, "'weibull'"),
        ({"kind": "uniform", "low": 2}, "['high']"),
        ({"kind": "uniform", "low": 2, "high": 6, "step": 2}, "['step']"),
        ({"kind": "exp"}, "['mean']"),
        (True, "True"),
    ],
)
def test_malformed_repair_specs_name_the_offending_value(spec, fragment):
    with pytest.raises(ConfigurationError) as excinfo:
        normalize_repair_spec(spec, what="'repair_delay'")
    assert fragment in str(excinfo.value)


def test_draw_repair_delay_is_a_pure_function_of_the_rng():
    uniform = normalize_repair_spec("uniform:2,6", what="x")
    exp = normalize_repair_spec("exp:mean=3", what="x")
    assert [
        draw_repair_delay(uniform, random.Random(1234)) for _ in range(3)
    ] == [5, 5, 5]
    rng = random.Random(1234)
    assert [draw_repair_delay(uniform, rng) for _ in range(5)] == [5, 2, 2, 2, 6]
    rng = random.Random(1234)
    assert [draw_repair_delay(exp, rng) for _ in range(5)] == [10, 2, 1, 7, 8]
    # Every uniform draw respects the bounds; exp floors at one round.
    rng = random.Random(99)
    assert all(2 <= draw_repair_delay(uniform, rng) <= 6 for _ in range(200))
    tiny = normalize_repair_spec("exp:mean=0.01", what="x")
    assert all(draw_repair_delay(tiny, rng) >= 1 for _ in range(50))


def test_fixed_repair_delay_never_touches_the_rng():
    # Integer specs bypass the RNG entirely, so pre-distribution
    # scenarios keep their historical draw order (and pinned metrics).
    rng = random.Random(7)
    before = rng.getstate()
    assert draw_repair_delay(8, rng) == 8
    assert rng.getstate() == before


@pytest.mark.parametrize(
    "adversary",
    [
        {
            "kind": "crash-recover",
            "count": 2,
            "repair_delay": "uniform:2,6",
            "max_action_index": 12,
        },
        {
            "kind": "crash-recover",
            "count": 2,
            "repair_delay": "exp:mean=3",
            "max_action_index": 12,
        },
        {"kind": "rack", "racks": 1, "group_size": 3, "recover_after": "uniform:3,9"},
        {
            "kind": "cascade-neighbours",
            "origins": [0],
            "p": 0.5,
            "recover_after": "exp:mean=3",
        },
    ],
)
def test_distribution_repairs_recover_deterministically(adversary):
    def run():
        return Scenario(
            protocol="D-recovery", n=48, t=6, seed=5, adversary=adversary
        ).run()

    first, second = run(), run()
    assert first.completed and second.completed
    assert first.metrics.recoveries > 0
    assert first.metrics.as_dict() == second.metrics.as_dict()


def test_distribution_repair_scenario_survives_json_round_trip():
    scenario = Scenario(
        protocol="D-recovery",
        n=48,
        t=6,
        seed=5,
        adversary={
            "kind": "crash-recover",
            "count": 2,
            "repair_delay": "uniform:2,6",
            "max_action_index": 12,
        },
    )
    clone = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    first, second = scenario.run(), clone.run()
    assert first.metrics.as_dict() == second.metrics.as_dict()
    assert first.metrics.recoveries > 0


def test_rack_repair_distribution_rejoins_whole_racks_together():
    # One draw per rack: every member of a rack rejoins in the same
    # round, whatever the distribution said for that rack.
    trace = Trace(enabled=True)
    result = run_protocol(
        "D-recovery",
        40,
        8,
        adversary=adversary_from_spec(
            {"kind": "rack", "racks": 1, "group_size": 3, "recover_after": "uniform:3,9"}
        ),
        seed=2,
        trace=trace,
    )
    assert result.completed
    recoveries = [e for e in trace.events if e.kind == "recover"]
    assert len(recoveries) == result.metrics.crashes >= 2
    assert len({e.round for e in recoveries}) == 1
