"""Public API surface: registry, run_protocol, package exports."""

import pytest

import repro
from repro import available_protocols, build_processes, run_protocol
from repro.errors import ConfigurationError


def test_all_protocols_registered():
    names = available_protocols()
    for expected in ("a", "b", "c", "c-batched", "d", "replicate", "naive"):
        assert expected in names


def test_names_case_insensitive():
    assert run_protocol("a", 10, 4, seed=0).completed
    assert run_protocol("A", 10, 4, seed=0).completed


def test_unknown_protocol_raises_with_listing():
    with pytest.raises(ConfigurationError) as excinfo:
        run_protocol("Z", 10, 4)
    assert "available" in str(excinfo.value)


def test_build_processes_returns_t_processes():
    processes = build_processes("B", 20, 7)
    assert len(processes) == 7
    assert [p.pid for p in processes] == list(range(7))


def test_run_result_summary_contains_key_measures():
    result = run_protocol("A", 12, 4, seed=1)
    summary = result.summary()
    for key in ("work", "messages", "effort", "rounds", "completed", "survivors"):
        assert key in summary


def test_strict_invariants_default_per_protocol():
    # Protocol D runs many workers at once; the registry must not apply
    # the single-active invariant to it.
    assert run_protocol("D", 16, 4, seed=0).completed


def test_options_forwarded_to_builder():
    result = run_protocol("naive", 20, 4, interval=10, seed=0)
    assert result.completed


def test_seed_determinism():
    first = run_protocol("B", 40, 9, seed=123)
    second = run_protocol("B", 40, 9, seed=123)
    assert first.metrics.as_dict() == second.metrics.as_dict()


def test_package_exports():
    assert repro.__version__
    assert callable(repro.run_protocol)
    assert repro.Engine is not None
    assert repro.WorkTracker is not None


def test_deprecated_duplicate_registration_overwrites():
    from repro.core.registry import register
    from repro.core.protocol_a import build_protocol_a

    register("custom-a", build_protocol_a)
    assert "custom-a" in available_protocols()
    result = run_protocol("custom-a", 8, 4, strict_invariants=True, seed=0)
    assert result.completed
