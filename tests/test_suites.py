"""The suite subsystem: loader validation, regression pins, parallel runs.

Three guarantees are pinned here:

* malformed suite files fail with *named* ``ConfigurationError``s that
  say which file/entry/field is wrong;
* ``suite check`` fails (API and CLI) the moment an observed worst-case
  metric drifts from its pin, and ``--update-pins`` rebaselines;
* parallel execution is **bit-identical** to serial execution for every
  registered protocol - the multiprocessing executor is pure fan-out.
"""

import json
import sys

import pytest

from repro.api import Scenario, Sweep, run_scenarios
from repro.core.registry import available_protocols, get_entry
from repro.errors import ConfigurationError
from repro.sim.adversary import RandomCrashes
from repro.suites import (
    PIN_MEASURES,
    SUITE_FORMAT_VERSION,
    Suite,
    discover_suites,
    load_suite,
)
from repro.__main__ import main as cli_main

SHIPPED_SUITES = sorted(p.name for p in discover_suites("scenarios"))


def _suite_dict(**overrides):
    data = {
        "suite": "test-suite",
        "version": SUITE_FORMAT_VERSION,
        "entries": [
            {
                "name": "one",
                "scenario": {"protocol": "A", "n": 16, "t": 4, "seed": 1},
            }
        ],
    }
    data.update(overrides)
    return data


# ---------------------------------------------------------------------
# Loader validation
# ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.pop("suite"), "requires field(s) ['suite']"),
        (lambda d: d.pop("entries"), "requires field(s) ['entries']"),
        (lambda d: d.update(version=99), "format version 99"),
        (lambda d: d.update(version="1"), "must be an integer"),
        (lambda d: d.update(entries=[]), "non-empty list"),
        (lambda d: d.update(extra=1), "unknown field(s) ['extra']"),
        (lambda d: d["entries"][0].pop("name"), "non-empty 'name'"),
        (lambda d: d["entries"][0].pop("scenario"), "exactly one of 'scenario' or 'sweep'"),
        (
            lambda d: d["entries"][0].update(sweep={"base": {}}),
            "exactly one of 'scenario' or 'sweep'",
        ),
        (lambda d: d["entries"][0].update(typo=1), "unknown field(s) ['typo']"),
        (lambda d: d["entries"][0].update(pins=[1]), "'pins' of entry 0"),
        (
            lambda d: d["entries"][0].update(pins={"latency": 3}),
            "unknown pin measure(s) ['latency']",
        ),
        (
            lambda d: d["entries"][0].update(pins={"work": "fast"}),
            "must be a number",
        ),
        (
            lambda d: d["entries"][0]["scenario"].pop("protocol"),
            "requires field(s) ['protocol']",
        ),
        (
            lambda d: d["entries"].append(dict(d["entries"][0])),
            "duplicate entry name 'one'",
        ),
    ],
)
def test_malformed_suites_raise_named_errors(mutate, fragment):
    data = _suite_dict()
    mutate(data)
    with pytest.raises(ConfigurationError) as excinfo:
        Suite.from_dict(data)
    assert fragment in str(excinfo.value)


def test_unparseable_json_file_names_the_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        load_suite(path)


def test_unknown_extension_rejected(tmp_path):
    path = tmp_path / "suite.yaml"
    path.write_text("{}")
    with pytest.raises(ConfigurationError, match=".json or .toml"):
        load_suite(path)


@pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib needs 3.11+")
def test_toml_suites_load(tmp_path):
    path = tmp_path / "suite.toml"
    path.write_text(
        "\n".join(
            [
                'suite = "toml-suite"',
                "version = 1",
                "[[entries]]",
                'name = "one"',
                "[entries.scenario]",
                'protocol = "A"',
                "n = 16",
                "t = 4",
                "seed = 1",
                "[entries.pins]",
                "work = 16",
            ]
        )
    )
    suite = load_suite(path)
    assert suite.name == "toml-suite"
    assert suite.entries[0].pins == {"work": 16}


def test_round_trip_through_to_dict():
    suite = Suite.from_dict(_suite_dict())
    assert Suite.from_dict(suite.to_dict()).to_dict() == suite.to_dict()


# ---------------------------------------------------------------------
# Pins
# ---------------------------------------------------------------------


def test_correct_pins_pass_and_wrong_pins_fail():
    data = _suite_dict()
    baseline = Suite.from_dict(data).run()
    observed = baseline.entries[0].observed

    data["entries"][0]["pins"] = {
        "work": observed["work"],
        "messages": observed["messages"],
    }
    assert Suite.from_dict(data).run().passed

    data["entries"][0]["pins"] = {"work": observed["work"] + 1}
    report = Suite.from_dict(data).run()
    assert not report.passed
    (message,) = report.failures()
    assert message.startswith("test-suite/one: work: observed")


def test_suite_check_cli_fails_on_broken_pin(tmp_path, capsys):
    data = _suite_dict()
    data["entries"][0]["pins"] = {"effort": 1}  # deliberately broken
    path = tmp_path / "broken_pin.json"
    path.write_text(json.dumps(data))

    assert cli_main(["suite", "check", str(path)]) == 1
    captured = capsys.readouterr()
    assert "effort: observed" in captured.err

    # ``suite run`` reports but does not enforce pins.
    assert cli_main(["suite", "run", str(path)]) == 0


def test_update_pins_rebaselines_the_file(tmp_path, capsys):
    path = tmp_path / "suite.json"
    data = _suite_dict()
    # Entry 'one' deliberately pins only effort (with a broken value);
    # a second, unpinned entry must gain the full measure set.
    data["entries"][0]["pins"] = {"effort": 1}
    data["entries"].append(
        {"name": "two", "scenario": {"protocol": "B", "n": 16, "t": 4, "seed": 2}}
    )
    path.write_text(json.dumps(data))

    assert cli_main(["suite", "check", str(path), "--update-pins"]) == 0
    rewritten = load_suite(path)
    # The explicit pin selection survives rebaselining ...
    assert set(rewritten.entries[0].pins) == {"effort"}
    # ... while unpinned entries are baselined on every measure.
    assert set(rewritten.entries[1].pins) == set(PIN_MEASURES)
    assert cli_main(["suite", "check", str(path)]) == 0
    capsys.readouterr()


def test_update_pins_report_artifact_reflects_new_pins(tmp_path, capsys):
    suite_path = tmp_path / "suite.json"
    data = _suite_dict()
    data["entries"][0]["pins"] = {"work": 999999}  # stale pin being replaced
    suite_path.write_text(json.dumps(data))
    out_path = tmp_path / "report.json"

    rc = cli_main(
        ["suite", "check", str(suite_path), "--update-pins", "--out", str(out_path)]
    )
    capsys.readouterr()
    assert rc == 0
    (report,) = json.loads(out_path.read_text())
    # The artifact must diff against the rewritten pins, not the stale ones.
    assert report["passed"] is True
    assert report["entries"][0]["failures"] == []
    assert report["entries"][0]["pins"] == {
        "work": report["entries"][0]["observed"]["work"]
    }


def test_update_pins_refuses_incomplete_runs(tmp_path, capsys):
    data = _suite_dict()
    data["entries"][0]["scenario"].update(
        adversary={"kind": "fixed-schedule", "directives": [
            {"pid": pid, "at_round": 0} for pid in range(4)
        ]},
        allow_total_failure=True,
    )
    path = tmp_path / "suite.json"
    original = json.dumps(data)
    path.write_text(original)

    assert cli_main(["suite", "check", str(path), "--update-pins"]) == 2
    assert "refusing to rebaseline" in capsys.readouterr().err
    assert path.read_text() == original  # file untouched


def test_suite_list_fails_on_invalid_files(tmp_path, capsys):
    (tmp_path / "good.json").write_text(json.dumps(_suite_dict()))
    (tmp_path / "bad.json").write_text("{broken")
    assert cli_main(["suite", "list", str(tmp_path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_update_pins_rejects_non_json_suites_before_running(capsys):
    # The early check needs no file on disk: it must fire before any run.
    rc = cli_main(["suite", "check", "nonexistent.toml", "--update-pins"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "convert the suite to .json" in err


def test_incomplete_runs_fail_even_without_pins():
    data = _suite_dict()
    # Every process dies: the run cannot complete its work units.
    data["entries"][0]["scenario"].update(
        adversary={"kind": "fixed-schedule", "directives": [
            {"pid": 0, "at_round": 0}, {"pid": 1, "at_round": 0},
            {"pid": 2, "at_round": 0}, {"pid": 3, "at_round": 0},
        ]},
        allow_total_failure=True,
    )
    report = Suite.from_dict(data).run()
    assert not report.passed
    assert "not every run completed" in report.failures()[0]


# ---------------------------------------------------------------------
# Shipped suites: the regression-pin catalog must hold
# ---------------------------------------------------------------------


def test_shipped_suite_files_are_discovered():
    assert SHIPPED_SUITES == [
        "adversary_grid.json",
        "adversary_recovery.json",
        "async_delay.json",
        "paper_battery.json",
    ]


@pytest.mark.parametrize("name", SHIPPED_SUITES)
def test_shipped_suites_pass_their_pins(name):
    suite = load_suite(f"scenarios/{name}")
    assert all(entry.pins for entry in suite.entries), "shipped entries must be pinned"
    report = suite.run()
    assert report.passed, report.failures()


def test_suite_cli_list_shows_shipped_suites(capsys):
    assert cli_main(["suite", "list"]) == 0
    out = capsys.readouterr().out
    for name in SHIPPED_SUITES:
        assert name in out


# ---------------------------------------------------------------------
# Parallel execution is bit-identical to serial
# ---------------------------------------------------------------------


def _small_scenario(name: str) -> Scenario:
    entry = get_entry(name)
    if entry.engine == "async":
        return Scenario(
            protocol=name,
            n=24,
            t=4,
            seed=3,
            delay="uniform:0.5,2.0",
            crash_times={0: 3.0},
            failure_detector={"min_delay": 1.0, "max_delay": 4.0},
        )
    options = {}
    if name == "d-dynamic":
        options = {"schedule": "arrivals:0x24", "cycle_length": 8}
    return Scenario(
        protocol=name,
        n=24,
        t=4,
        seed=3,
        adversary="random:2,max_action_index=8",
        options=options,
    )


@pytest.mark.parametrize("name", available_protocols())
def test_parallel_sweep_metrics_equal_serial_for(name):
    sweep = Sweep(base=_small_scenario(name), seeds=[0, 1, 2])
    serial = sweep.run()
    parallel = sweep.run(workers=2)
    assert [r.to_dict() for r in parallel.results] == [
        r.to_dict() for r in serial.results
    ]
    assert parallel.worst() == serial.worst()
    assert parallel.mean() == serial.mean()


def _strip_timing(report: dict) -> dict:
    """Drop the wall-clock fields: only they may differ across runs."""
    report.pop("workers", None)
    for entry in report["entries"]:
        entry.pop("seconds", None)
    return report


@pytest.mark.parametrize(
    "name", ["paper_battery.json", "adversary_recovery.json"]
)
def test_parallel_suite_report_equals_serial_report(name):
    suite = load_suite(f"scenarios/{name}")
    serial = _strip_timing(suite.run().as_dict())
    parallel = _strip_timing(suite.run(workers=4).as_dict())
    assert parallel == serial


def test_live_adversary_instances_cannot_ship_to_workers():
    scenarios = [
        Scenario(protocol="A", n=16, t=4, adversary=RandomCrashes(2), seed=s)
        for s in range(2)
    ]
    # Serial execution is fine ...
    assert all(result.completed for result in run_scenarios(scenarios))
    # ... but parallel execution requires serializable scenarios.
    with pytest.raises(ConfigurationError, match="does not serialize"):
        run_scenarios(scenarios, workers=2)


# ---------------------------------------------------------------------
# Per-entry workers hints + the wall-clock seconds column
# ---------------------------------------------------------------------


@pytest.mark.parametrize("bad", ["2", 0, -1, True, 1.5])
def test_workers_hint_is_validated(bad):
    data = _suite_dict()
    data["entries"][0]["workers"] = bad
    with pytest.raises(ConfigurationError, match="'workers' of entry 0"):
        Suite.from_dict(data)


def test_workers_hint_round_trips_and_is_honored(monkeypatch):
    data = _suite_dict()
    data["entries"][0]["workers"] = 2
    data["entries"].append(
        {"name": "two", "scenario": {"protocol": "A", "n": 16, "t": 4, "seed": 2}}
    )
    suite = Suite.from_dict(data)
    assert suite.entries[0].workers == 2
    assert suite.entries[1].workers is None
    assert Suite.from_dict(suite.to_dict()).to_dict() == suite.to_dict()

    # The executor must pass each entry's effective worker count through.
    import repro.suites as suites_module

    seen = []

    def spy_run_scenarios(scenarios, *, workers=None, cache=None):
        seen.append(workers)
        return [scenario.run() for scenario in scenarios]

    monkeypatch.setattr(suites_module, "run_scenarios", spy_run_scenarios)
    report = suite.run(workers=3)
    assert seen == [2, 3]  # entry hint wins; suite-level value is the default
    assert report.passed


def test_entry_reports_carry_wall_clock_seconds():
    report = Suite.from_dict(_suite_dict()).run()
    entry = report.entries[0]
    assert entry.seconds >= 0.0
    payload = entry.as_dict()
    assert isinstance(payload["seconds"], float)
    assert "seconds" in report.table()


# ---------------------------------------------------------------------
# suite diff: per-entry metric deltas across two report artifacts
# ---------------------------------------------------------------------


from repro.suites import diff_reports  # noqa: E402


def _report_payload(**tweaks):
    entry = {
        "name": "one",
        "kind": "scenario",
        "runs": 1,
        "observed": {
            "work": 16, "messages": 6, "effort": 22,
            "rounds": 20, "redundant_work": 0, "crashes": 0,
        },
        "pins": {},
        "all_completed": True,
        "seconds": 0.05,
        "failures": [],
        "passed": True,
    }
    entry.update(tweaks.pop("entry", {}))
    report = {
        "suite": "test-suite",
        "version": 1,
        "workers": 1,
        "total_runs": 1,
        "passed": True,
        "entries": [entry],
    }
    report.update(tweaks)
    return [report]


def test_diff_equal_reports_passes():
    diff = diff_reports(_report_payload(), _report_payload())
    assert diff.passed
    assert diff.regressions() == []
    assert "no metric changes" in diff.table()


def test_diff_flags_metric_regressions_and_improvements():
    new = _report_payload(
        entry={"observed": {
            "work": 20, "messages": 5, "effort": 25,
            "rounds": 20, "redundant_work": 0, "crashes": 0,
        }}
    )
    diff = diff_reports(_report_payload(), new)
    assert not diff.passed
    regressed = {d.measure for d in diff.deltas if d.regressed}
    improved = {d.measure for d in diff.deltas if not d.regressed}
    assert regressed == {"work", "effort"}
    assert improved == {"messages"}
    assert any("work 16 -> 20" in msg for msg in diff.regressions())


def test_diff_seconds_never_regress():
    new = _report_payload(entry={"seconds": 99.0})
    diff = diff_reports(_report_payload(), new)
    assert diff.passed
    assert [d.measure for d in diff.seconds] == ["seconds"]


def test_diff_flags_structural_regressions():
    # Entry disappeared.
    new = _report_payload()
    new[0]["entries"] = []
    diff = diff_reports(_report_payload(), new)
    assert not diff.passed
    assert any("missing" in msg for msg in diff.regressions())
    # Completion flipped.
    new = _report_payload(entry={"all_completed": False})
    diff = diff_reports(_report_payload(), new)
    assert any("completed" in msg for msg in diff.regressions())
    # New entries are informational, not regressions.
    old = _report_payload()
    new = _report_payload()
    new[0]["entries"].append(dict(new[0]["entries"][0], name="fresh"))
    diff = diff_reports(old, new)
    assert diff.passed
    assert any("fresh" in note for note in diff.informational)


def test_diff_rejects_malformed_artifacts():
    with pytest.raises(ConfigurationError, match="suite-report list"):
        diff_reports("nonsense", _report_payload())
    with pytest.raises(ConfigurationError, match="missing the 'suite'"):
        diff_reports([{"entries": []}], _report_payload())


def test_suite_diff_cli_round_trip(tmp_path, capsys):
    """End to end: run a suite twice with --out, then diff the artifacts."""
    suite_path = tmp_path / "suite.json"
    suite_path.write_text(json.dumps(_suite_dict()))
    old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
    assert cli_main(["suite", "run", str(suite_path), "--out", str(old_path)]) == 0
    assert cli_main(["suite", "run", str(suite_path), "--out", str(new_path)]) == 0
    capsys.readouterr()

    # Identical commits: no regressions, exit 0.
    assert cli_main(["suite", "diff", str(old_path), str(new_path)]) == 0
    assert "no metric changes" in capsys.readouterr().out

    # Tamper with the new artifact to simulate a work regression.
    payload = json.loads(new_path.read_text())
    payload[0]["entries"][0]["observed"]["work"] += 5
    new_path.write_text(json.dumps(payload))
    assert cli_main(["suite", "diff", str(old_path), str(new_path), "--json"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err
    machine = json.loads(captured.out)
    assert machine["passed"] is False
    assert machine["deltas"][0]["measure"] == "work"


def test_suite_diff_cli_names_unreadable_artifacts(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    rc = cli_main(["suite", "diff", str(missing), str(missing)])
    assert rc == 2
    assert "cannot read report artifact" in capsys.readouterr().err
