"""The one-call bound-verification API."""

import pytest

from repro import run_protocol
from repro.analysis.verify import verify_run
from repro.errors import ConfigurationError
from repro.sim.adversary import KillActive, StaggeredWorkKills


@pytest.mark.parametrize("protocol", ["A", "B", "C", "C-batched"])
def test_sequential_protocols_verify_clean(protocol):
    n, t = 64, 16
    result = run_protocol(protocol, n, t, seed=1)
    report = verify_run(result, protocol, n, t)
    assert report.ok, report.failures()
    names = {check.name for check in report.checks}
    assert {"completion", "work", "messages"} <= names


@pytest.mark.parametrize("protocol", ["A", "B", "C"])
def test_sequential_protocols_verify_under_attack(protocol):
    n, t = 64, 16
    result = run_protocol(
        protocol, n, t, adversary=KillActive(t - 1, actions_before_kill=2), seed=2
    )
    report = verify_run(result, protocol, n, t)
    assert report.ok, report.failures()


def test_protocol_d_requires_failure_count():
    result = run_protocol("D", 64, 16, seed=1)
    with pytest.raises(ConfigurationError):
        verify_run(result, "D", 64, 16)
    report = verify_run(result, "D", 64, 16, failures=0)
    assert report.ok, report.failures()


def test_protocol_d_with_failures():
    result = run_protocol(
        "D", 64, 16, adversary=StaggeredWorkKills.plan([(1, 1), (3, 2)]), seed=2
    )
    report = verify_run(result, "D", 64, 16, failures=2)
    assert report.ok, report.failures()


def test_protocol_d_reversion_uses_reverted_bounds():
    f = 10
    result = run_protocol(
        "D",
        64,
        16,
        adversary=StaggeredWorkKills.plan([(pid, 1) for pid in range(f)]),
        seed=3,
    )
    report = verify_run(result, "D", 64, 16, failures=f)
    assert report.ok, report.failures()
    formulas = {check.formula for check in report.checks}
    assert any("4n" in formula for formula in formulas)


def test_report_flags_violations():
    # Verify a replicate run against Protocol C's (much tighter) bounds:
    # the report must flag work > n + 2t rather than raise.
    result = run_protocol("replicate", 64, 16, seed=1)
    report = verify_run(result, "C", 64, 16)
    assert not report.ok
    assert any(check.name == "work" for check in report.failures())


def test_rows_rendering():
    result = run_protocol("A", 32, 9, seed=1)
    report = verify_run(result, "A", 32, 9)
    rows = report.as_rows()
    assert all({"check", "bound", "measured", "ok"} <= set(row) for row in rows)


def test_unknown_protocol_raises():
    result = run_protocol("A", 16, 4, seed=0)
    with pytest.raises(ConfigurationError):
        verify_run(result, "Z", 16, 4)


def test_incomplete_total_failure_flagged():
    from repro.sim.adversary import FixedSchedule
    from repro.sim.crashes import CrashDirective

    schedule = FixedSchedule([CrashDirective(pid=p, at_round=0) for p in range(4)])
    result = run_protocol(
        "A", 16, 4, adversary=schedule, seed=0, allow_total_failure=True
    )
    report = verify_run(result, "A", 16, 4)
    # No survivor: the completion check is skipped (the paper's guarantee
    # is conditional on a survivor), and effort bounds trivially hold.
    assert all(check.name != "completion" for check in report.checks)
