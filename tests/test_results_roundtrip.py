"""Result rehydration: `RunResult.from_dict` / `Metrics.from_dict`
rebuild exactly the object an in-process run produced, for every
registered protocol, plus `ResultSet.merge`."""

import json

import pytest

from repro.api import ResultSet, Scenario, Sweep
from repro.core.registry import available_protocols
from repro.errors import ConfigurationError
from repro.sim.metrics import Metrics, RunResult


def _scenario_for(protocol: str) -> Scenario:
    if protocol in available_protocols("async"):
        return Scenario(
            protocol=protocol,
            n=48,
            t=6,
            crash_times={1: 5.0},
            delay="uniform:0.5,3.0",
            failure_detector={"min_delay": 1.0, "max_delay": 4.0},
            seed=2,
        )
    options = {"interval": 4} if protocol == "naive" else {}
    n, t = (24, 6) if protocol.startswith("c") else (32, 8)
    return Scenario(
        protocol=protocol,
        n=n,
        t=t,
        adversary="random:2,max_action_index=8",
        seed=3,
        options=options,
    )


@pytest.mark.parametrize("protocol", available_protocols())
def test_full_round_trip_rebuilds_an_equal_result(protocol):
    direct = _scenario_for(protocol).run()
    # Through actual JSON text: every key stringifies and must come back.
    wire = json.loads(json.dumps(direct.to_dict(full=True)))
    revived = RunResult.from_dict(wire)
    assert revived == direct  # dataclass equality: metrics, config, all of it
    assert revived.metrics.as_dict() == direct.metrics.as_dict()
    assert revived.metrics.redundant_work() == direct.metrics.redundant_work()
    # And the rehydrated object re-serializes identically.
    assert revived.to_dict(full=True) == direct.to_dict(full=True)


def test_summary_form_is_rejected_with_a_pointer():
    direct = _scenario_for("a").run()
    with pytest.raises(ConfigurationError, match="full=True"):
        RunResult.from_dict(direct.to_dict())


def test_default_to_dict_shape_is_unchanged():
    payload = _scenario_for("a").run().to_dict()
    assert "work_by_unit" not in payload["metrics"]
    assert "last_event_round" not in payload["metrics"]


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.pop("completed"), "completed"),
        (lambda d: d.update(completed="yes"), "'yes'"),
        (lambda d: d.update(survivors="three"), "'three'"),
        (lambda d: d.update(extra=1), "extra"),
        (lambda d: d["metrics"].pop("work_by_unit"), "work_by_unit"),
        (lambda d: d["metrics"].update(work="lots"), "'lots'"),
        (
            lambda d: d["metrics"]["messages_by_kind"].update(bogus=1),
            "bogus",
        ),
        (
            lambda d: d["metrics"]["work_by_unit"].update({"not-an-int": 1}),
            "not-an-int",
        ),
    ],
)
def test_malformed_payloads_name_field_and_value(mutate, match):
    payload = _scenario_for("a").run().to_dict(full=True)
    mutate(payload)
    with pytest.raises(ConfigurationError, match=match):
        RunResult.from_dict(payload)


def test_corrupted_breakdown_totals_are_detected():
    payload = _scenario_for("a").run().to_dict(full=True)
    unit, count = next(iter(payload["metrics"]["work_by_unit"].items()))
    payload["metrics"]["work_by_unit"][unit] = count + 1
    with pytest.raises(ConfigurationError, match="corrupt"):
        RunResult.from_dict(payload)


def test_metrics_from_dict_requires_a_dict():
    with pytest.raises(ConfigurationError, match="dict"):
        Metrics.from_dict([1, 2, 3])
    with pytest.raises(ConfigurationError, match="dict"):
        RunResult.from_dict("nope")


# ---- ResultSet.merge --------------------------------------------------------


def test_merge_recombines_in_order():
    base = Scenario(protocol="A", n=32, t=8, adversary="random:2", seed=0)
    first = Sweep(base=base, seeds=[0, 1]).run()
    second = Sweep(base=base, seeds=[2]).run()
    merged = ResultSet.merge(first, second)
    assert len(merged) == 3
    assert [s.seed for s, _ in merged] == [0, 1, 2]
    everything = Sweep(base=base, seeds=[0, 1, 2]).run()
    assert merged.worst() == everything.worst()
    assert merged.mean() == everything.mean()
    assert merged.table() == everything.table()


def test_merge_rejects_non_result_sets():
    with pytest.raises(ConfigurationError, match="ResultSet"):
        ResultSet.merge(ResultSet([]), [("scenario", "result")])


def test_merge_of_nothing_is_empty():
    assert len(ResultSet.merge()) == 0
