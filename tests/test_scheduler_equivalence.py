"""Equivalence of the event-indexed scheduler and a naive reference.

The engine's event index (heap + cached due rounds + live sets) must be
*observationally identical* to the seed engine's per-round rescan of all
processes: same metrics, same trace event sequence, same RNG draws.
``_ReferenceScheduler`` below re-implements exactly the seed behaviour -
it derives every round's due set and the next due round from scratch by
scanning all processes and all mailboxes - while inheriting the rest of
the engine (crashes, commits, accounting) unchanged.  Running both over
randomized seeds x protocols x adversaries and diffing the observable
outputs pins the scheduler rewrite down.
"""

from typing import List, Optional

import pytest

from repro.core.registry import build_processes
from repro.sim.adversary import (
    Cascade,
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    KillBeforeCheckpoint,
    RandomCrashes,
)
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker


class _ReferenceScheduler(Engine):
    """The seed engine's O(rounds * t) schedule computation, kept as an
    oracle: every query scans all processes and all mailbox stamps.

    Only the three schedule-computation hooks are overridden; crash
    handling, action commits and accounting are shared with the real
    engine, so any divergence is attributable to scheduling.
    """

    def __init__(self, *args, **kwargs):
        # The reference scans self._mailboxes directly, so it must run
        # the pure-python store; the indexed engine under test keeps its
        # default fastpath, making this a cross-path oracle as well.
        kwargs["fastpath"] = "off"
        super().__init__(*args, **kwargs)

    def _reference_due(self, process) -> Optional[int]:
        if process.retired:
            return None
        floor = self.round + 1
        due: Optional[int] = None
        mailbox = self._mailboxes[process.pid]
        if mailbox:
            earliest = min(env.sent_round for env in mailbox) + 1
            due = max(earliest, floor)
        wake = process.wake_round()
        if wake is not None:
            wake = max(wake, floor)
            due = wake if due is None else min(due, wake)
        return due

    def _next_due_round(self) -> Optional[int]:
        dues = [self._reference_due(p) for p in self.processes]
        dues = [due for due in dues if due is not None]
        return min(dues) if dues else None

    def _collect_due_pids(self, round_number: int) -> List[int]:
        due_pids = []
        for process in self.processes:
            if process.retired:
                continue
            mailbox = self._mailboxes[process.pid]
            if any(env.sent_round < round_number for env in mailbox):
                due_pids.append(process.pid)
                continue
            wake = process.wake_round()
            if wake is not None and wake <= round_number:
                due_pids.append(process.pid)
        return due_pids

    def _drain_mailbox(self, pid: int, round_number: int):
        # Seed behaviour: filter rather than prefix-split, so the oracle
        # does not depend on the stamp-sortedness invariant either.
        mailbox = self._mailboxes[pid]
        ready = [env for env in mailbox if env.sent_round < round_number]
        if ready:
            self._mailboxes[pid] = [
                env for env in mailbox if env.sent_round >= round_number
            ]
        return ready


def _run(engine_cls, protocol, n, t, adversary_factory, seed, **options):
    processes = build_processes(protocol, n, t, **options)
    trace = Trace(enabled=True)
    engine = engine_cls(
        processes,
        tracker=WorkTracker(n),
        adversary=adversary_factory() if adversary_factory else None,
        seed=seed,
        strict_invariants=protocol.lower() in {"a", "b", "c", "naive"},
        trace=trace,
    )
    result = engine.run()
    events = [(e.round, e.kind, e.pid, e.detail) for e in trace]
    return result, events


# 7 protocol/adversary shapes x 3 seeds = 21 randomized combinations.
COMBOS = [
    ("A", 40, 8, None),
    ("A", 48, 8, lambda: RandomCrashes(4, max_action_index=12)),
    ("A", 40, 6, lambda: CrashMidBroadcast(victims=(0, 2), min_batch=2)),
    ("B", 40, 8, lambda: KillActive(5, actions_before_kill=2)),
    ("C", 24, 6, lambda: KillActive(4, actions_before_kill=3)),
    ("C-naive", 18, 6, lambda: Cascade(lead_units=6, redo_units=2)),
    ("D", 60, 8, lambda: RandomCrashes(4, max_action_index=10)),
]
SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "protocol,n,t,adversary_factory",
    COMBOS,
    ids=[f"{c[0]}-n{c[1]}-t{c[2]}-{'adv' if c[3] else 'noadv'}" for c in COMBOS],
)
def test_scheduler_matches_reference(protocol, n, t, adversary_factory, seed):
    fast, fast_events = _run(Engine, protocol, n, t, adversary_factory, seed)
    ref, ref_events = _run(_ReferenceScheduler, protocol, n, t, adversary_factory, seed)
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert fast_events == ref_events
    assert (fast.completed, fast.survivors, fast.halted) == (
        ref.completed,
        ref.survivors,
        ref.halted,
    )


def test_reference_matches_on_scripted_partial_broadcast():
    """Directive-driven crash phases (incl. mid-broadcast subsets) agree."""
    directives = [
        CrashDirective(pid=1, at_round=3, phase=CrashPhase.AFTER_WORK),
        CrashDirective(pid=2, at_round=7, phase=CrashPhase.DURING_SEND),
        CrashDirective(pid=4, at_round=11, phase=CrashPhase.BEFORE_ACTION),
    ]
    for seed in range(4):
        fast, fe = _run(Engine, "A", 30, 6, lambda: FixedSchedule(directives), seed)
        ref, re_ = _run(
            _ReferenceScheduler, "A", 30, 6, lambda: FixedSchedule(directives), seed
        )
        assert fast.metrics.as_dict() == ref.metrics.as_dict()
        assert fe == re_


def test_retire_round_single_source_of_truth():
    """Regression for the seed engine's _result double-charging: retire
    rounds recorded at halt/crash time must already equal what the old
    re-recording loop would have produced."""
    for protocol, n, t, factory in [
        ("A", 40, 8, lambda: RandomCrashes(4, max_action_index=12)),
        ("B", 40, 8, lambda: KillActive(5, actions_before_kill=2)),
        ("D", 60, 8, lambda: RandomCrashes(4, max_action_index=10)),
        ("naive", 30, 6, lambda: KillBeforeCheckpoint(3)),
    ]:
        processes = build_processes(protocol, n, t)
        engine = Engine(
            processes, tracker=WorkTracker(n), adversary=factory(), seed=3
        )
        result = engine.run()
        before = result.metrics.retire_round
        # Re-apply the old loop: it must be a no-op.
        for process in engine.processes:
            if process.halt_round is not None:
                result.metrics.record_retire(process.pid, process.halt_round)
            if process.crash_round is not None:
                result.metrics.record_retire(process.pid, process.crash_round)
        assert result.metrics.retire_round == before
