"""Analysis layer: bounds, tables, sweeps and the experiment registry."""


from repro.analysis import bounds
from repro.analysis.experiments import REGISTRY, experiment_e7, run_experiment
from repro.analysis.sweep import worst_case
from repro.analysis.tables import format_number, render_dict_rows, render_table
from repro.sim.adversary import RandomCrashes

# ---- bounds ----------------------------------------------------------------


def test_bound_holds_for():
    bound = bounds.protocol_a_work(100, 16)
    assert bound.value == 300
    assert bound.holds_for(300)
    assert not bound.holds_for(301)


def test_bounds_match_paper_formulas():
    assert bounds.protocol_a_messages(100, 16).value == 9 * 16 * 4
    assert bounds.protocol_b_messages(100, 16).value == 10 * 16 * 4
    assert bounds.protocol_b_rounds(100, 16).value == 300 + 128
    assert bounds.protocol_c_work(100, 16).value == 132
    assert bounds.protocol_d_rounds(128, 16, 0).value == 8 + 2
    assert bounds.protocol_d_messages(128, 16, 2).value == 10 * 256


def test_n_prime_in_work_bounds():
    # n' = max(n, t): the work bound never drops below 3t.
    assert bounds.protocol_a_work(4, 16).value == 48


def test_c_round_bound_is_astronomical():
    assert bounds.protocol_c_rounds(32, 8).value > 2.0 ** 40


# ---- tables ------------------------------------------------------------------


def test_format_number_cases():
    assert format_number(1234567) == "1,234,567"
    assert format_number(10**16) == "1.000e+16"
    assert format_number(True) == "yes"
    assert format_number(None) == "-"
    assert format_number(3.14159) == "3.14"
    assert format_number("text") == "text"


def test_render_table_is_markdown():
    table = render_table(["a", "b"], [[1, 2], [3, 4]], title="T")
    lines = table.splitlines()
    assert lines[0] == "### T"
    assert lines[2].startswith("| a")
    assert set(lines[3]) <= {"|", "-"}
    assert "| 1" in lines[4]


def test_render_dict_rows_missing_values():
    out = render_dict_rows(["x", "y"], [{"x": 1}])
    assert "| 1" in out and "| -" in out


# ---- sweeps --------------------------------------------------------------------


def test_worst_case_aggregates_maxima():
    aggregate = worst_case(
        "A",
        32,
        8,
        [lambda: None, lambda: RandomCrashes(4, max_action_index=10)],
        range(2),
    )
    assert aggregate.executions == 4
    assert aggregate.all_completed
    assert aggregate.work >= 32
    row = aggregate.as_row()
    assert row["protocol"] == "A" and row["runs"] == 4


# ---- experiment registry -----------------------------------------------------------


def test_registry_covers_all_design_experiments():
    assert set(REGISTRY) == {f"E{i}" for i in range(1, 18)}


def test_run_single_experiment_quick():
    result = run_experiment("E7", quick=True)
    assert result.exp_id == "E7"
    assert result.rows
    assert result.all_ok


def test_experiment_rows_have_declared_columns():
    result = experiment_e7(quick=True)
    for row in result.rows:
        for column in result.columns:
            assert column in row
