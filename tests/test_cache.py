"""Content addressing (`Scenario.cache_key`) and the `ResultCache`:
exact hits, LRU bounds, journal persistence, and the cache-aware
`run_scenarios` / `Suite.run` paths."""

import json

import pytest

from repro.api import Scenario, Sweep, run_scenarios
from repro.cache import ResultCache
from repro.errors import ConfigurationError
from repro.sim.adversary import KillActive
from repro.suites import Suite

# ---- Scenario.canonical_dict / cache_key ------------------------------------


def _scenario(**overrides) -> Scenario:
    base = dict(protocol="B", n=64, t=8, adversary="random:3", seed=7)
    base.update(overrides)
    return Scenario(**base)


def test_cache_key_is_stable_and_hex():
    key = _scenario().cache_key()
    assert key == _scenario().cache_key()
    assert len(key) == 64
    int(key, 16)  # sha-256 hex digest


def test_cache_key_ignores_spelling_variants():
    as_string = _scenario(adversary="random:3")
    as_dict = _scenario(adversary={"kind": "random", "count": 3})
    assert as_string.cache_key() == as_dict.cache_key()


def test_cache_key_ignores_the_name_label():
    assert _scenario().cache_key() == _scenario(name="labelled").cache_key()
    assert "name" not in _scenario(name="labelled").canonical_dict()


def test_cache_key_resolves_auto_engine():
    auto = _scenario(engine="auto")
    explicit = _scenario(engine="sync")
    assert auto.cache_key() == explicit.cache_key()
    assert auto.canonical_dict()["engine"] == "sync"


@pytest.mark.parametrize(
    "changes",
    [
        {"seed": 8},
        {"n": 65},
        {"protocol": "A"},
        {"adversary": "random:4"},
        {"adversary": None},
    ],
)
def test_cache_key_tracks_semantic_changes(changes):
    assert _scenario().cache_key() != _scenario(**changes).cache_key()


def test_cache_key_ignores_the_fastpath_knob():
    # fastpath swaps the delivery *implementation*, never the observable
    # result (the differential fuzz harness pins that equivalence), so
    # it must not fragment the content address.
    assert _scenario().cache_key() == _scenario(fastpath="off").cache_key()
    assert _scenario().cache_key() == _scenario(fastpath="on").cache_key()
    assert "fastpath" not in _scenario(fastpath="off").canonical_dict()


def test_live_adversary_has_no_cache_key():
    scenario = Scenario(protocol="A", n=16, t=4, adversary=KillActive(2))
    with pytest.raises(ConfigurationError):
        scenario.cache_key()


# ---- ResultCache ------------------------------------------------------------


def test_cache_round_trip_is_exact():
    cache = ResultCache()
    scenario = _scenario()
    direct = scenario.run()
    key = scenario.cache_key()
    assert cache.get(key) is None  # miss
    cache.put(key, direct)
    cached = cache.get(key)
    assert cached.config is None  # config is attached by the caller
    assert cached.metrics.as_dict() == direct.metrics.as_dict()
    assert cached.metrics == direct.metrics
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["stores"] == 1


def test_cache_peek_does_not_touch_counters():
    cache = ResultCache()
    scenario = _scenario()
    cache.put(scenario.cache_key(), scenario.run())
    assert cache.peek(scenario.cache_key()) is not None
    assert cache.peek("missing") is None
    assert cache.stats()["hits"] == 0
    assert cache.stats()["misses"] == 0


def test_cache_lru_eviction_counts():
    cache = ResultCache(max_entries=2)
    results = {}
    for seed in range(3):
        scenario = _scenario(seed=seed)
        results[seed] = (scenario.cache_key(), scenario.run())
        cache.put(*results[seed])
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    assert results[0][0] not in cache  # oldest went first
    assert results[2][0] in cache


def test_cache_get_refreshes_lru_order():
    cache = ResultCache(max_entries=2)
    first, second, third = (_scenario(seed=seed) for seed in range(3))
    cache.put(first.cache_key(), first.run())
    cache.put(second.cache_key(), second.run())
    assert cache.get(first.cache_key()) is not None  # first becomes MRU
    cache.put(third.cache_key(), third.run())
    assert first.cache_key() in cache
    assert second.cache_key() not in cache


def test_cache_rejects_bad_configuration():
    with pytest.raises(ConfigurationError, match="max_entries"):
        ResultCache(max_entries=0)
    with pytest.raises(ConfigurationError, match="cache key"):
        ResultCache().put(123, _scenario().run())


# ---- JSONL persistence ------------------------------------------------------


def test_cache_journal_survives_restart(tmp_path):
    path = tmp_path / "cache.jsonl"
    scenario = _scenario()
    direct = scenario.run()
    ResultCache(path=path).put(scenario.cache_key(), direct)
    revived = ResultCache(path=path)
    assert len(revived) == 1
    cached = revived.get(scenario.cache_key())
    assert cached.metrics == direct.metrics
    assert revived.stats()["path"] == str(path)


def test_cache_journal_last_write_wins(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path=path)
    scenario = _scenario()
    cache.put(scenario.cache_key(), scenario.run())
    cache.put(scenario.cache_key(), scenario.run())  # re-store appends
    assert len(path.read_text().splitlines()) == 2
    assert len(ResultCache(path=path)) == 1  # replay dedups by key


def test_cache_journal_skips_and_counts_broken_lines(tmp_path):
    # The degradation contract (docs/chaos.md): corrupt lines - torn
    # writes, bit rot, wrong shapes - are skipped and counted on replay,
    # never fatal.  Valid lines around them still load.
    path = tmp_path / "cache.jsonl"
    scenario = _scenario()
    ResultCache(path=path).put(scenario.cache_key(), scenario.run())
    good = path.read_text()
    path.write_text(
        "not json\n"
        + json.dumps({"key": 1, "result": {}}) + "\n"
        + good
        + '{"key": "torn-mid-wri'
    )
    revived = ResultCache(path=path)
    assert len(revived) == 1
    assert revived.get(scenario.cache_key()) is not None
    assert revived.stats()["journal_corrupt"] == 3


def test_cache_journal_checksums_detect_bit_rot(tmp_path):
    path = tmp_path / "cache.jsonl"
    scenario = _scenario()
    ResultCache(path=path).put(scenario.cache_key(), scenario.run())
    line = path.read_text()
    assert '"crc":' in line
    # Flip one payload byte: the line still parses, the CRC catches it.
    rotted = line.replace('"work":', '"wonk":', 1)
    assert rotted != line
    path.write_text(rotted)
    revived = ResultCache(path=path)
    assert len(revived) == 0
    assert revived.stats()["journal_corrupt"] == 1


def test_cache_journal_reads_pre_crc_lines(tmp_path):
    # Journals written before CRC32 checksums (no "crc" field) replay
    # fine and are counted as unchecksummed.
    path = tmp_path / "cache.jsonl"
    scenario = _scenario()
    ResultCache(path=path).put(scenario.cache_key(), scenario.run())
    record = json.loads(path.read_text())
    del record["crc"]
    path.write_text(json.dumps(record, sort_keys=True) + "\n")
    revived = ResultCache(path=path)
    assert len(revived) == 1
    assert revived.get(scenario.cache_key()).metrics == scenario.run().metrics
    stats = revived.stats()
    assert stats["journal_unchecksummed"] == 1
    assert stats["journal_corrupt"] == 0


def test_cache_journal_append_failure_degrades_not_breaks(tmp_path):
    # A sick disk degrades persistence, never correctness: the entry
    # stays live in memory and the failure is counted.
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path=path)
    scenario = _scenario()
    cache.path = tmp_path / "no-such-dir" / "cache.jsonl"  # appends fail
    cache.put(scenario.cache_key(), scenario.run())
    assert cache.get(scenario.cache_key()) is not None
    assert cache.stats()["journal_errors"] == 1


def test_verify_journal_reports_line_classes(tmp_path):
    from repro.cache import verify_journal

    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path=path)
    a, b = _scenario(), _scenario(seed=8)
    cache.put(a.cache_key(), a.run())
    cache.put(b.cache_key(), b.run())
    cache.put(a.cache_key(), a.run())  # stale first write of a
    record = json.loads(path.read_text().splitlines()[0])
    del record["crc"]
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")  # pre-CRC
        handle.write("garbage line\n")
    audit = verify_journal(path)
    assert audit["lines"] == 5
    assert audit["live"] == 2
    assert audit["stale"] == 2
    assert audit["corrupt"] == 1
    assert audit["unchecksummed"] == 1
    assert audit["ok"] is False
    with pytest.raises(ConfigurationError, match="does not exist"):
        verify_journal(tmp_path / "missing.jsonl")


# ---- run_scenarios with a cache ---------------------------------------------


def test_run_scenarios_deduplicates_within_a_batch():
    cache = ResultCache()
    scenario = _scenario()
    results = run_scenarios([scenario, scenario, scenario], cache=cache)
    assert cache.stats()["misses"] == 1
    assert cache.stats()["stores"] == 1
    direct = scenario.run()
    for result in results:
        assert result == direct  # config echo included


def test_run_scenarios_cache_hits_are_bit_identical():
    cache = ResultCache()
    scenarios = [_scenario(seed=seed) for seed in range(4)]
    cold = run_scenarios(scenarios, cache=cache)
    warm = run_scenarios(scenarios, cache=cache)
    assert cold == warm == run_scenarios(scenarios)
    stats = cache.stats()
    assert stats["misses"] == 4 and stats["hits"] == 4


def test_run_scenarios_cache_echoes_the_requesting_scenario():
    cache = ResultCache()
    anonymous = _scenario()
    named = _scenario(name="labelled")  # same key, different echo
    run_scenarios([anonymous], cache=cache)
    (result,) = run_scenarios([named], cache=cache)
    assert cache.stats()["hits"] == 1
    assert result.config == named.to_dict()
    assert result.metrics == anonymous.run().metrics


def test_fastpath_on_run_hits_a_fastpath_off_cache_entry():
    # The cache key excludes fastpath, so a columnar run must reuse the
    # result a pure-python run stored - and vice versa.  This only means
    # something when numpy is importable (fastpath="on" refuses to run
    # otherwise).
    pytest.importorskip("numpy")
    cache = ResultCache()
    off = _scenario(fastpath="off")
    on = _scenario(fastpath="on")
    (cold,) = run_scenarios([off], cache=cache)
    (warm,) = run_scenarios([on], cache=cache)
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["stores"] == 1
    assert stats["hits"] == 1
    assert warm.metrics == cold.metrics
    assert warm.config == on.to_dict()  # echo keeps the requested knob


def test_run_scenarios_live_adversary_bypasses_the_cache():
    cache = ResultCache()
    scenario = Scenario(protocol="A", n=32, t=8, adversary=KillActive(3))
    first = run_scenarios([scenario], cache=cache)
    second = run_scenarios([scenario], cache=cache)
    assert len(cache) == 0
    assert first[0].metrics.as_dict() == second[0].metrics.as_dict()


def test_run_scenarios_parallel_with_cache_matches_serial():
    cache = ResultCache()
    scenarios = list(
        Sweep(base=_scenario(), seeds=range(4)).scenarios()
    )
    parallel = run_scenarios(scenarios, workers=2, cache=cache)
    assert [r.to_dict() for r in parallel] == [
        r.to_dict() for r in run_scenarios(scenarios)
    ]
    assert cache.stats()["stores"] == 4


# ---- suite layer reuse ------------------------------------------------------


def test_suite_run_reuses_the_cache():
    suite = Suite.from_dict(
        {
            "suite": "cache-reuse",
            "version": 1,
            "entries": [
                {"name": "one", "scenario": _scenario().to_dict()},
                {
                    "name": "grid",
                    "sweep": Sweep(base=_scenario(), seeds=[7, 8]).to_dict(),
                },
            ],
        }
    )
    cache = ResultCache()
    cold = suite.run(cache=cache)
    misses_after_cold = cache.stats()["misses"]
    warm = suite.run(cache=cache)
    stats = cache.stats()
    # seed 7 appears in both entries: 2 distinct runs total, all hits on rerun.
    assert misses_after_cold == 2
    assert stats["misses"] == 2
    assert stats["hits"] >= 3
    assert [entry.observed for entry in warm.entries] == [
        entry.observed for entry in cold.entries
    ]


# ---- journal compaction -----------------------------------------------------


def test_compact_rewrites_dead_journal_lines(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path=path)
    result = _scenario().run()
    key = _scenario().cache_key()
    for _ in range(5):  # re-stores accumulate dead lines
        cache.put(key, result)
    other = _scenario(seed=8)
    cache.put(other.cache_key(), other.run())
    assert len(path.read_text().splitlines()) == 6
    stats = cache.compact()
    assert stats == {
        "entries": 2,
        "lines_before": 6,
        "lines_after": 2,
        "bytes_before": stats["bytes_before"],
        "bytes_after": stats["bytes_after"],
    }
    assert stats["bytes_after"] < stats["bytes_before"]
    assert len(path.read_text().splitlines()) == 2


def test_compacted_journal_replays_to_an_equal_cache(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path=path)
    scenarios = [_scenario(seed=seed) for seed in range(4)]
    for scenario in scenarios:
        cache.put(scenario.cache_key(), scenario.run())
        cache.put(scenario.cache_key(), scenario.run())  # dead duplicate
    cache.compact()
    reborn = ResultCache(path=path)
    assert len(reborn) == 4
    for scenario in scenarios:
        assert reborn.get(scenario.cache_key()) == cache.get(
            scenario.cache_key()
        )


def test_compact_through_an_lru_drops_evicted_entries(tmp_path):
    path = tmp_path / "cache.jsonl"
    unbounded = ResultCache(path=path)
    for seed in range(5):
        scenario = _scenario(seed=seed)
        unbounded.put(scenario.cache_key(), scenario.run())
    # Replay through a 2-entry LRU: only the 2 most recent survive.
    bounded = ResultCache(max_entries=2, path=path)
    stats = bounded.compact()
    assert stats["lines_before"] == 5
    assert stats["lines_after"] == 2
    assert _scenario(seed=4).cache_key() in bounded
    assert _scenario(seed=0).cache_key() not in bounded


def test_compact_requires_a_journal():
    with pytest.raises(ConfigurationError, match="journal"):
        ResultCache().compact()
