"""Structural tests for the Section 5 value-piggybacking rules.

The proof of the agreement construction depends on two asymmetric rules:
Protocols A and B must NOT include the value in their (broadcast)
checkpoint messages, while Protocol C MUST include it in its ordinary
messages.  These tests inspect the actual wire payloads.
"""

from repro.agreement.byzantine import ByzantineAgreement
from repro.sim.actions import MessageKind
from repro.sim.adversary import RandomCrashes
from repro.sim.trace import Trace

VALUE = 1234987


def _trace_for(protocol, seed=1, adversary=None):
    trace = Trace(enabled=True)
    ba = ByzantineAgreement(20, 5, protocol=protocol)
    outcome = ba.run(VALUE, seed=seed, adversary=adversary, trace=trace)
    return outcome, trace


def _payloads_of_kind(trace, kinds):
    return [
        event.detail[2]
        for event in trace.of_kind("send")
        if event.detail[0] in kinds
    ]


def test_a_and_b_checkpoints_never_carry_the_value():
    kinds = (
        MessageKind.PARTIAL_CHECKPOINT.value,
        MessageKind.FULL_CHECKPOINT.value,
    )
    for protocol in ("A", "B"):
        outcome, trace = _trace_for(protocol)
        payloads = _payloads_of_kind(trace, kinds)
        assert payloads, "checkpoints were sent"
        for payload in payloads:
            assert VALUE not in payload, (protocol, payload)
        assert outcome.agreement and outcome.decided_value == VALUE


def test_c_ordinary_messages_carry_the_value():
    outcome, trace = _trace_for("C")
    ordinaries = _payloads_of_kind(trace, (MessageKind.ORDINARY.value,))
    assert ordinaries, "ordinary messages were sent"
    informed = [payload for payload in ordinaries if payload[2] == VALUE]
    # Once the general's value has reached the active process, every
    # later ordinary message carries it.
    assert informed, "no ordinary message ever carried the value"
    assert outcome.agreement and outcome.decided_value == VALUE


def test_value_messages_target_each_unit_once_failure_free():
    outcome, trace = _trace_for("B")
    value_sends = [
        event.detail[1]
        for event in trace.of_kind("send")
        if event.detail[0] == MessageKind.VALUE.value and event.round > 0
    ]
    # Unit p informs process p (self-sends are skipped by the runner).
    assert sorted(set(value_sends)) == value_sends or len(value_sends) >= 19


def test_piggybacking_survives_crashes():
    outcome, trace = _trace_for(
        "C",
        seed=3,
        adversary=RandomCrashes(4, max_action_index=10, victims=list(range(6))),
    )
    assert outcome.agreement
