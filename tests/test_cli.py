"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.api import Scenario


def test_list_protocols(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "a" in out.split()
    assert "d" in out.split()


def test_run_failure_free(capsys):
    assert main(["run", "b", "--n", "32", "--t", "4"]) == 0
    out = capsys.readouterr().out
    assert "work" in out and "32" in out


def test_run_with_random_crashes(capsys):
    assert main(["run", "a", "--n", "32", "--t", "8", "--crashes", "4"]) == 0
    out = capsys.readouterr().out
    assert "completed" in out


def test_run_with_kill_active(capsys):
    assert main(
        ["run", "b", "--n", "32", "--t", "8", "--kill-active", "7", "--seed", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "crashes" in out


def test_compare_table(capsys):
    assert main(
        ["compare", "--n", "32", "--t", "4", "--protocols", "a", "d"]
    ) == 0
    out = capsys.readouterr().out
    assert "| a" in out and "| d" in out
    assert "effort" in out


def test_report_quick(tmp_path, capsys, monkeypatch):
    # Patch the experiment registry to keep the CLI test fast.
    import repro.analysis.report as report_module
    from repro.analysis.experiments import ExperimentResult

    fake = ExperimentResult(
        exp_id="EX", title="Fake", claim="c", columns=["ok"], rows=[{"ok": True}]
    )
    monkeypatch.setattr(report_module, "run_all", lambda quick: [fake])
    out_file = tmp_path / "OUT.md"
    assert main(["report", "--quick", "--out", str(out_file)]) == 0
    assert "Fake" in out_file.read_text()


def test_unknown_protocol_is_rejected():
    with pytest.raises(SystemExit):
        main(["run", "zz", "--n", "8", "--t", "2"])


def test_protocol_names_accepted_case_insensitively(capsys):
    assert main(["run", "B", "--n", "32", "--t", "4"]) == 0
    assert "work" in capsys.readouterr().out


def test_list_shows_engine_kinds(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "a-async" in out
    assert "[async]" in out and "[sync]" in out


def test_run_json_output(capsys):
    assert main(["run", "b", "--n", "32", "--t", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] is True
    assert payload["metrics"]["work"] >= 32
    assert payload["config"]["protocol"] == "b"


def test_run_adversary_spec_flag(capsys):
    assert (
        main(
            [
                "run", "b", "--n", "32", "--t", "8", "--json",
                "--adversary", "kill-active:3,actions_before_kill=4",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["adversary"] == {
        "kind": "kill-active", "budget": 3, "actions_before_kill": 4,
    }
    assert payload["metrics"]["crashes"] == 3


def test_crashes_and_kill_active_compose(capsys):
    # The seed CLI silently dropped --crashes when --kill-active was set;
    # now both shorthands apply side by side.
    assert (
        main(
            [
                "run", "a", "--n", "32", "--t", "8", "--seed", "3", "--json",
                "--crashes", "2", "--kill-active", "1",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    kinds = [part["kind"] for part in payload["config"]["adversary"]["parts"]]
    assert sorted(kinds) == ["kill-active", "random"]
    # More crashes than either shorthand alone could cause (budget 1 / count 2
    # victims may overlap, but both parts demonstrably fire).
    assert payload["metrics"]["crashes"] >= 2


def test_adversary_knobs_are_exposed(capsys):
    assert (
        main(
            [
                "run", "a", "--n", "32", "--t", "8", "--json",
                "--crashes", "2", "--max-action-index", "7",
                "--kill-active", "1", "--actions-before-kill", "5",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    parts = {part["kind"]: part for part in payload["config"]["adversary"]["parts"]}
    assert parts["random"]["max_action_index"] == 7
    assert parts["kill-active"]["actions_before_kill"] == 5


def test_run_async_protocol(capsys):
    assert main(["run", "a-async", "--n", "32", "--t", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] is True
    assert payload["config"]["protocol"] == "a-async"


def test_run_scenario_file_matches_in_memory(tmp_path, capsys):
    scenario = Scenario(
        protocol="b", n=48, t=6, adversary="random:2,max_action_index=9", seed=7
    )
    path = scenario.save(tmp_path / "scenario.json")
    assert main(["run", "--scenario", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"] == scenario.run().to_dict()["metrics"]


def test_run_scenario_conflicts_with_protocol(tmp_path, capsys):
    path = Scenario(protocol="a", n=8, t=2).save(tmp_path / "s.json")
    assert main(["run", "a", "--scenario", str(path)]) == 2
    assert main(["run"]) == 2


def test_compare_json(capsys):
    assert (
        main(["compare", "--n", "32", "--t", "4", "--protocols", "a", "d", "--json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert [entry["config"]["protocol"] for entry in payload] == ["a", "d"]
    assert all(entry["completed"] for entry in payload)


def test_adversaries_listing(capsys):
    assert main(["adversaries"]) == 0
    out = capsys.readouterr().out
    for kind in ("crash-recover", "rack", "cascade-neighbours", "random", "none"):
        assert kind in out
    assert "repair_delay" in out  # optional params are listed


def test_adversaries_json_listing(capsys):
    assert main(["adversaries", "--json"]) == 0
    rows = {row["kind"]: row for row in json.loads(capsys.readouterr().out)}
    assert rows["crash-recover"]["required"] == ["count"]
    assert "repair_delay" in rows["crash-recover"]["optional"]
    assert rows["none"]["required"] == []


def test_run_congestion_flag(capsys):
    assert (
        main(
            [
                "run", "d", "--n", "32", "--t", "4",
                "--congestion", "budget:send=2,receive=4", "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["congestion"] == {
        "kind": "budget", "send": 2, "receive": 4,
    }
    assert payload["completed"]


def test_run_bad_congestion_spec_is_a_clean_error(capsys):
    assert (
        main(["run", "d", "--n", "32", "--t", "4", "--congestion", "budget:send=0"])
        == 2
    )
    err = capsys.readouterr().err
    assert "error:" in err and "0" in err


def test_run_d_recovery_with_crash_recover_spec(capsys):
    assert (
        main(
            [
                "run", "d-recovery", "--n", "32", "--t", "4",
                "--adversary", "crash-recover:1,repair_delay=4",
                "--seed", "2", "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["recoveries"] == payload["metrics"]["crashes"]
    assert payload["completed"]


# ---- campaign / cache / bench verbs -----------------------------------------


def _campaign_file(tmp_path, **overrides):
    data = {
        "campaign": "cli-grid",
        "version": 1,
        "base": {"protocol": "A", "n": 8, "t": 2, "seed": 0},
        "axes": {
            "protocols": ["A", "D"],
            "seeds": {"start": 0, "count": 5},
        },
        "chunk_size": 4,
    }
    data.update(overrides)
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(data))
    return path


def test_campaign_plan(tmp_path, capsys):
    path = _campaign_file(tmp_path)
    assert main(["campaign", "plan", str(path)]) == 0
    out = capsys.readouterr().out
    assert "cli-grid" in out and "10 runs" in out and "3 chunks" in out
    assert main(["campaign", "plan", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"] == 10 and payload["chunks"] == 3


def test_campaign_run_interrupt_resume_status_report(tmp_path, capsys):
    path = _campaign_file(tmp_path)
    ledger = tmp_path / "grid.ledger"

    # Interrupted run: exit 1, status shows partial progress.
    assert main(
        ["campaign", "run", str(path), "--ledger", str(ledger),
         "--max-chunks", "1"]
    ) == 1
    capsys.readouterr()
    assert main(["campaign", "status", str(path), "--ledger", str(ledger)]) == 1
    assert "1/3 chunks" in capsys.readouterr().out

    # Resume completes and prints the per-cell table.
    assert main(["campaign", "resume", str(path), "--ledger", str(ledger)]) == 0
    out = capsys.readouterr().out
    assert "cli-grid" in out and "adversary" in out
    assert main(["campaign", "status", str(path), "--ledger", str(ledger)]) == 0
    assert "COMPLETE" in capsys.readouterr().out

    # Report artifact round-trips and carries the results section.
    artifact = tmp_path / "report.json"
    assert main(
        ["campaign", "report", str(path), "--ledger", str(ledger),
         "--out", str(artifact)]
    ) == 0
    capsys.readouterr()
    payload = json.loads(artifact.read_text())
    assert payload["complete"] is True
    assert payload["results"]["runs"] == 10


def test_campaign_resume_requires_an_existing_ledger(tmp_path, capsys):
    path = _campaign_file(tmp_path)
    code = main(
        ["campaign", "resume", str(path), "--ledger", str(tmp_path / "no.ledger")]
    )
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


def test_campaign_pin_failure_exits_one(tmp_path, capsys):
    path = _campaign_file(tmp_path, pins={"work": 1})
    ledger = tmp_path / "grid.ledger"
    assert main(["campaign", "run", str(path), "--ledger", str(ledger)]) == 1
    assert "pinned" in capsys.readouterr().err


def test_cache_compact_verb(tmp_path, capsys):
    journal = tmp_path / "cache.jsonl"
    from repro.cache import ResultCache

    cache = ResultCache(path=journal)
    scenario = Scenario(protocol="A", n=8, t=2, seed=0)
    cache.put(scenario.cache_key(), scenario.run())
    cache.put(scenario.cache_key(), scenario.run())
    assert main(["cache", "compact", str(journal)]) == 0
    assert "2 -> 1 lines" in capsys.readouterr().out
    assert main(["cache", "compact", str(tmp_path / "absent.jsonl")]) == 2


def test_cache_verify_verb(tmp_path, capsys):
    journal = tmp_path / "cache.jsonl"
    from repro.cache import ResultCache

    cache = ResultCache(path=journal)
    scenario = Scenario(protocol="A", n=8, t=2, seed=0)
    cache.put(scenario.cache_key(), scenario.run())
    assert main(["cache", "verify", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "1 live" in out and "0 corrupt" in out

    with journal.open("a") as handle:
        handle.write("{torn\n")
    assert main(["cache", "verify", str(journal)]) == 1
    captured = capsys.readouterr()
    assert "1 corrupt" in captured.out
    assert "cache compact" in captured.err

    assert main(["cache", "verify", str(journal), "--json"]) == 1
    audit = json.loads(capsys.readouterr().out)
    assert audit["corrupt"] == 1 and audit["live"] == 1
    assert audit["ok"] is False

    assert main(["cache", "verify", str(tmp_path / "absent.jsonl")]) == 2


def test_bench_snapshot_and_timeline_verbs(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "cli01")
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({
        "suite": "engine",
        "scenarios": [{
            "name": "A_small", "completed": True,
            "seconds_best": 0.5, "work": 10, "messages": 5,
            "virtual_rounds": 3,
        }],
    }))
    history = tmp_path / "history"
    assert main(
        ["bench", "snapshot", "--bench", str(bench), "--dir", str(history)]
    ) == 0
    assert "0001_cli01.json" in capsys.readouterr().out
    assert main(["bench", "timeline", "--dir", str(history)]) == 0
    assert "A_small" in capsys.readouterr().out
    assert main(
        ["bench", "timeline", "--dir", str(history), "--measure", "work",
         "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenarios"]["A_small"] == [10]
    assert main(
        ["bench", "timeline", "--dir", str(history), "--measure", "bogus"]
    ) == 2
