"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list_protocols(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "a" in out.split()
    assert "d" in out.split()


def test_run_failure_free(capsys):
    assert main(["run", "b", "--n", "32", "--t", "4"]) == 0
    out = capsys.readouterr().out
    assert "work" in out and "32" in out


def test_run_with_random_crashes(capsys):
    assert main(["run", "a", "--n", "32", "--t", "8", "--crashes", "4"]) == 0
    out = capsys.readouterr().out
    assert "completed" in out


def test_run_with_kill_active(capsys):
    assert main(
        ["run", "b", "--n", "32", "--t", "8", "--kill-active", "7", "--seed", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "crashes" in out


def test_compare_table(capsys):
    assert main(
        ["compare", "--n", "32", "--t", "4", "--protocols", "a", "d"]
    ) == 0
    out = capsys.readouterr().out
    assert "| a" in out and "| d" in out
    assert "effort" in out


def test_report_quick(tmp_path, capsys, monkeypatch):
    # Patch the experiment registry to keep the CLI test fast.
    import repro.analysis.report as report_module
    from repro.analysis.experiments import ExperimentResult

    fake = ExperimentResult(
        exp_id="EX", title="Fake", claim="c", columns=["ok"], rows=[{"ok": True}]
    )
    monkeypatch.setattr(report_module, "run_all", lambda quick: [fake])
    out_file = tmp_path / "OUT.md"
    assert main(["report", "--quick", "--out", str(out_file)]) == 0
    assert "Fake" in out_file.read_text()


def test_unknown_protocol_is_rejected():
    with pytest.raises(SystemExit):
        main(["run", "zz", "--n", "8", "--t", "2"])
