"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.api import Scenario


def test_list_protocols(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "a" in out.split()
    assert "d" in out.split()


def test_run_failure_free(capsys):
    assert main(["run", "b", "--n", "32", "--t", "4"]) == 0
    out = capsys.readouterr().out
    assert "work" in out and "32" in out


def test_run_with_random_crashes(capsys):
    assert main(["run", "a", "--n", "32", "--t", "8", "--crashes", "4"]) == 0
    out = capsys.readouterr().out
    assert "completed" in out


def test_run_with_kill_active(capsys):
    assert main(
        ["run", "b", "--n", "32", "--t", "8", "--kill-active", "7", "--seed", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "crashes" in out


def test_compare_table(capsys):
    assert main(
        ["compare", "--n", "32", "--t", "4", "--protocols", "a", "d"]
    ) == 0
    out = capsys.readouterr().out
    assert "| a" in out and "| d" in out
    assert "effort" in out


def test_report_quick(tmp_path, capsys, monkeypatch):
    # Patch the experiment registry to keep the CLI test fast.
    import repro.analysis.report as report_module
    from repro.analysis.experiments import ExperimentResult

    fake = ExperimentResult(
        exp_id="EX", title="Fake", claim="c", columns=["ok"], rows=[{"ok": True}]
    )
    monkeypatch.setattr(report_module, "run_all", lambda quick: [fake])
    out_file = tmp_path / "OUT.md"
    assert main(["report", "--quick", "--out", str(out_file)]) == 0
    assert "Fake" in out_file.read_text()


def test_unknown_protocol_is_rejected():
    with pytest.raises(SystemExit):
        main(["run", "zz", "--n", "8", "--t", "2"])


def test_protocol_names_accepted_case_insensitively(capsys):
    assert main(["run", "B", "--n", "32", "--t", "4"]) == 0
    assert "work" in capsys.readouterr().out


def test_list_shows_engine_kinds(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "a-async" in out
    assert "[async]" in out and "[sync]" in out


def test_run_json_output(capsys):
    assert main(["run", "b", "--n", "32", "--t", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] is True
    assert payload["metrics"]["work"] >= 32
    assert payload["config"]["protocol"] == "b"


def test_run_adversary_spec_flag(capsys):
    assert (
        main(
            [
                "run", "b", "--n", "32", "--t", "8", "--json",
                "--adversary", "kill-active:3,actions_before_kill=4",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["adversary"] == {
        "kind": "kill-active", "budget": 3, "actions_before_kill": 4,
    }
    assert payload["metrics"]["crashes"] == 3


def test_crashes_and_kill_active_compose(capsys):
    # The seed CLI silently dropped --crashes when --kill-active was set;
    # now both shorthands apply side by side.
    assert (
        main(
            [
                "run", "a", "--n", "32", "--t", "8", "--seed", "3", "--json",
                "--crashes", "2", "--kill-active", "1",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    kinds = [part["kind"] for part in payload["config"]["adversary"]["parts"]]
    assert sorted(kinds) == ["kill-active", "random"]
    # More crashes than either shorthand alone could cause (budget 1 / count 2
    # victims may overlap, but both parts demonstrably fire).
    assert payload["metrics"]["crashes"] >= 2


def test_adversary_knobs_are_exposed(capsys):
    assert (
        main(
            [
                "run", "a", "--n", "32", "--t", "8", "--json",
                "--crashes", "2", "--max-action-index", "7",
                "--kill-active", "1", "--actions-before-kill", "5",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    parts = {part["kind"]: part for part in payload["config"]["adversary"]["parts"]}
    assert parts["random"]["max_action_index"] == 7
    assert parts["kill-active"]["actions_before_kill"] == 5


def test_run_async_protocol(capsys):
    assert main(["run", "a-async", "--n", "32", "--t", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] is True
    assert payload["config"]["protocol"] == "a-async"


def test_run_scenario_file_matches_in_memory(tmp_path, capsys):
    scenario = Scenario(
        protocol="b", n=48, t=6, adversary="random:2,max_action_index=9", seed=7
    )
    path = scenario.save(tmp_path / "scenario.json")
    assert main(["run", "--scenario", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"] == scenario.run().to_dict()["metrics"]


def test_run_scenario_conflicts_with_protocol(tmp_path, capsys):
    path = Scenario(protocol="a", n=8, t=2).save(tmp_path / "s.json")
    assert main(["run", "a", "--scenario", str(path)]) == 2
    assert main(["run"]) == 2


def test_compare_json(capsys):
    assert (
        main(["compare", "--n", "32", "--t", "4", "--protocols", "a", "d", "--json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert [entry["config"]["protocol"] for entry in payload] == ["a", "d"]
    assert all(entry["completed"] for entry in payload)


def test_adversaries_listing(capsys):
    assert main(["adversaries"]) == 0
    out = capsys.readouterr().out
    for kind in ("crash-recover", "rack", "cascade-neighbours", "random", "none"):
        assert kind in out
    assert "repair_delay" in out  # optional params are listed


def test_adversaries_json_listing(capsys):
    assert main(["adversaries", "--json"]) == 0
    rows = {row["kind"]: row for row in json.loads(capsys.readouterr().out)}
    assert rows["crash-recover"]["required"] == ["count"]
    assert "repair_delay" in rows["crash-recover"]["optional"]
    assert rows["none"]["required"] == []


def test_run_congestion_flag(capsys):
    assert (
        main(
            [
                "run", "d", "--n", "32", "--t", "4",
                "--congestion", "budget:send=2,receive=4", "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["congestion"] == {
        "kind": "budget", "send": 2, "receive": 4,
    }
    assert payload["completed"]


def test_run_bad_congestion_spec_is_a_clean_error(capsys):
    assert (
        main(["run", "d", "--n", "32", "--t", "4", "--congestion", "budget:send=0"])
        == 2
    )
    err = capsys.readouterr().err
    assert "error:" in err and "0" in err


def test_run_d_recovery_with_crash_recover_spec(capsys):
    assert (
        main(
            [
                "run", "d-recovery", "--n", "32", "--t", "4",
                "--adversary", "crash-recover:1,repair_delay=4",
                "--seed", "2", "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["recoveries"] == payload["metrics"]["crashes"]
    assert payload["completed"]
