"""Unit tests for the chunk/subchunk partition of the work pool."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.chunks import SubchunkPlan
from repro.errors import ConfigurationError


def test_paper_shape_exact_division():
    # n = 160, t = 16: 16 subchunks of 10 units; chunks of 4 subchunks.
    plan = SubchunkPlan(160, 16, 4)
    assert plan.units_of(1) == list(range(1, 11))
    assert plan.units_of(16) == list(range(151, 161))
    assert plan.boundaries() == [4, 8, 12, 16]


def test_last_unit_of():
    plan = SubchunkPlan(160, 16, 4)
    assert plan.last_unit_of(0) == 0
    assert plan.last_unit_of(4) == 40
    assert plan.last_unit_of(16) == 160


def test_uneven_division():
    plan = SubchunkPlan(10, 4, 2)
    sizes = [len(plan.units_of(c)) for c in range(1, 5)]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_n_smaller_than_t_has_empty_subchunks():
    plan = SubchunkPlan(3, 8, 3)
    sizes = [len(plan.units_of(c)) for c in range(1, 9)]
    assert sum(sizes) == 3
    assert 0 in sizes  # some subchunks are empty


def test_final_subchunk_is_always_boundary():
    # t = 10, group size 4: boundaries at 4, 8 and the final subchunk 10.
    plan = SubchunkPlan(100, 10, 4)
    assert plan.boundaries() == [4, 8, 10]


def test_zero_work():
    plan = SubchunkPlan(0, 4, 2)
    assert all(plan.units_of(c) == [] for c in range(1, 5))


def test_invalid_inputs_raise():
    with pytest.raises(ConfigurationError):
        SubchunkPlan(-1, 4, 2)
    with pytest.raises(ConfigurationError):
        SubchunkPlan(10, 0, 2)
    plan = SubchunkPlan(10, 4, 2)
    with pytest.raises(ConfigurationError):
        plan.units_of(0)
    with pytest.raises(ConfigurationError):
        plan.units_of(5)


@given(
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=1, max_value=80),
)
def test_subchunks_partition_units_exactly(n, t):
    group_size = max(1, int(t ** 0.5))
    plan = SubchunkPlan(n, t, group_size)
    units = []
    for c in range(1, t + 1):
        chunk_units = plan.units_of(c)
        assert len(chunk_units) <= plan.subchunk_size_bound()
        units.extend(chunk_units)
    assert units == list(range(1, n + 1))


@given(
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=1, max_value=80),
)
def test_last_unit_monotone_and_consistent(n, t):
    plan = SubchunkPlan(n, t, max(1, int(t ** 0.5)))
    previous = 0
    for c in range(1, t + 1):
        last = plan.last_unit_of(c)
        assert last >= previous
        chunk_units = plan.units_of(c)
        if chunk_units:
            assert chunk_units[-1] == last
        previous = last
    assert previous == n
