"""The available-processor-steps measure (Section 1.1)."""

from repro import run_protocol
from repro.sim.adversary import FixedSchedule
from repro.sim.crashes import CrashDirective


def test_aps_counts_every_process_to_retirement():
    # replicate: every process works n rounds (0..n-1) then halts,
    # so APS = t * n exactly.
    result = run_protocol("replicate", 20, 4, seed=0)
    assert result.metrics.available_processor_steps == 4 * 20


def test_aps_charges_idle_rounds():
    # Protocol A failure-free: process 0 retires after ~n + checkpoints
    # rounds, but every other process sits idle until it learns the work
    # is done - APS far exceeds effort.
    result = run_protocol("A", 64, 16, seed=0)
    metrics = result.metrics
    assert metrics.available_processor_steps > metrics.effort
    assert metrics.available_processor_steps > 16 * 64  # t idle processes


def test_aps_crashed_processes_charged_until_crash():
    schedule = FixedSchedule([CrashDirective(pid=1, at_round=0)])
    result = run_protocol("replicate", 10, 2, adversary=schedule, seed=0)
    # p0: rounds 0..9 (10 steps); p1: charged round 0 only (1 step).
    assert result.metrics.available_processor_steps == 10 + 1


def test_protocol_d_aps_near_optimal():
    n, t = 128, 16
    result = run_protocol("D", n, t, seed=0)
    metrics = result.metrics
    # Everyone retires by n/t + 2 rounds: APS <= t * (n/t + 2).
    assert metrics.available_processor_steps <= t * (n // t + 2)


def test_protocol_c_aps_astronomical_under_crashes():
    # Failure-free, knowledge spreads and deadlines stay short; but when
    # the knowledgeable processes keep dying, the survivors' low reduced
    # views mean exponentially long waits - APS explodes while effort
    # stays tiny (the Section 1.1 contrast).
    from repro.sim.adversary import KillActive

    result = run_protocol(
        "C", 32, 8, adversary=KillActive(7, actions_before_kill=3), seed=0
    )
    metrics = result.metrics
    assert metrics.available_processor_steps > 10 ** 6
    assert metrics.effort < 10 ** 3


def test_aps_appears_in_summary():
    result = run_protocol("D", 16, 4, seed=0)
    assert "available_processor_steps" in result.metrics.as_dict()
