"""Client retry-with-backoff: transient connection errors retry on a
bounded deterministic schedule; HTTP answers never retry."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.client import Client
from repro.errors import ConfigurationError, ServerError


class _Transport:
    """Scripted stand-in for ``urllib.request.urlopen``: pops one
    outcome per call (an exception instance to raise, or a payload
    dict to serve)."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, request, timeout=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        body = json.dumps(outcome).encode("utf-8")

        class _Response(io.BytesIO):
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.close()

        return _Response(body)


def _client(monkeypatch, outcomes, **kwargs):
    transport = _Transport(outcomes)
    monkeypatch.setattr(urllib.request, "urlopen", transport)
    client = Client("http://127.0.0.1:9", **kwargs)
    sleeps = []
    client._sleep = sleeps.append
    return client, transport, sleeps


def _refused():
    return urllib.error.URLError(ConnectionRefusedError(111, "refused"))


def test_transient_failure_retries_then_succeeds(monkeypatch):
    client, transport, sleeps = _client(
        monkeypatch, [_refused(), _refused(), {"ok": True}]
    )
    assert client.about() == {"ok": True}
    assert transport.calls == 3
    # Deterministic exponential schedule: backoff * 2**i.
    assert sleeps == [0.05, 0.1]


def test_exhausted_attempts_raise_server_error_naming_the_count(monkeypatch):
    client, transport, sleeps = _client(
        monkeypatch, [_refused()] * 4, attempts=4, backoff=0.01
    )
    with pytest.raises(ServerError, match="after 4 attempts"):
        client.about()
    assert transport.calls == 4
    assert sleeps == [0.01, 0.02, 0.04]


def test_single_attempt_never_sleeps(monkeypatch):
    client, transport, sleeps = _client(monkeypatch, [_refused()], attempts=1)
    with pytest.raises(ServerError, match="after 1 attempt:"):
        client.about()
    assert transport.calls == 1
    assert sleeps == []


def test_http_errors_are_answers_not_retried(monkeypatch):
    body = json.dumps(
        {"error": {"type": "ConfigurationError", "message": "bad n"}}
    ).encode("utf-8")
    error = urllib.error.HTTPError(
        "http://127.0.0.1:9/jobs", 400, "Bad Request", {}, io.BytesIO(body)
    )
    client, transport, sleeps = _client(monkeypatch, [error])
    with pytest.raises(ConfigurationError, match="bad n"):
        client.submit({"scenario": {"protocol": "A", "n": 4, "t": 2}})
    assert transport.calls == 1  # no second attempt for an HTTP answer
    assert sleeps == []


def test_recovery_mid_schedule_stops_retrying(monkeypatch):
    client, transport, sleeps = _client(
        monkeypatch, [_refused(), {"ok": 1}, _refused()]
    )
    assert client.about() == {"ok": 1}
    assert transport.calls == 2
    assert sleeps == [0.05]
    assert len(transport.outcomes) == 1  # the third outcome never consumed


def test_retry_delays_are_a_pure_function_of_the_settings():
    client = Client("http://127.0.0.1:9", attempts=5, backoff=0.2)
    assert client._retry_delays() == [0.2, 0.4, 0.8, 1.6]
    assert Client("http://127.0.0.1:9", attempts=1)._retry_delays() == []


@pytest.mark.parametrize(
    "kwargs, message",
    [
        ({"attempts": 0}, "attempts"),
        ({"attempts": True}, "attempts"),
        ({"attempts": 1.5}, "attempts"),
        ({"backoff": -0.1}, "backoff"),
        ({"backoff": "fast"}, "backoff"),
    ],
)
def test_retry_settings_validate(kwargs, message):
    with pytest.raises(ConfigurationError, match=message):
        Client("http://127.0.0.1:9", **kwargs)
